//! Last-writer-wins register store (Lamport clocks).
//!
//! A write-propagating store implementing read/write registers
//! (Figure 1(a)) by totally ordering writes with Lamport timestamps, ties
//! broken by replica id. Unlike the dot-based stores it performs **no
//! causal buffering**: a received write applies immediately. It is
//! eventually consistent (timestamp order is arbitration-stable), but *not*
//! causally consistent — the classic trade-off; the tests and the E8
//! experiments demonstrate the causality violation concretely.
//!
//! Each `do` outcome carries the operation's Lamport timestamp so witness
//! builders can order `H` consistently with the store's arbitration (the
//! LWW spec resolves conflicts by `H` order).

use crate::wire::{gamma_len, width_for, BitReader, BitWriter};
use haec_model::{
    DoOutcome, Dot, ObjectId, Op, Payload, ReplicaId, ReplicaMachine, ReturnValue, StoreConfig,
    StoreFactory, Value,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

/// Factory for the LWW register store.
///
/// ```
/// use haec_stores::LwwStore;
/// use haec_model::{StoreFactory, StoreConfig, ReplicaId, ObjectId, Op, Value, ReturnValue};
///
/// let mut replica = LwwStore.spawn(ReplicaId::new(0), StoreConfig::new(2, 1));
/// replica.do_op(ObjectId::new(0), &Op::Write(Value::new(4)));
/// let out = replica.do_op(ObjectId::new(0), &Op::Read);
/// assert_eq!(out.rval, ReturnValue::values([Value::new(4)]));
/// assert!(out.timestamp.is_some());
/// ```
#[derive(Copy, Clone, Default, Debug)]
pub struct LwwStore;

impl StoreFactory for LwwStore {
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine> {
        Box::new(LwwReplica {
            replica,
            config,
            clock: 0,
            next_seq: 0,
            objects: BTreeMap::new(),
            applied: BTreeSet::new(),
            outbox: Vec::new(),
        })
    }

    fn name(&self) -> &str {
        "lww"
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct LwwWrite {
    dot: Dot,
    obj: ObjectId,
    ts: u64,
    value: Value,
}

/// One replica of the LWW store.
#[derive(Clone, Debug)]
pub struct LwwReplica {
    replica: ReplicaId,
    config: StoreConfig,
    clock: u64,
    next_seq: u32,
    /// Winning write per object: (timestamp, origin, value).
    objects: BTreeMap<ObjectId, (u64, ReplicaId, Value)>,
    /// Witness: dots of all writes applied at this replica.
    applied: BTreeSet<Dot>,
    outbox: Vec<LwwWrite>,
}

impl LwwReplica {
    fn apply(&mut self, w: &LwwWrite) {
        self.clock = self.clock.max(w.ts);
        self.applied.insert(w.dot);
        let better = match self.objects.get(&w.obj) {
            Some(&(ts, origin, _)) => (w.ts, w.dot.replica) > (ts, origin),
            None => true,
        };
        if better {
            self.objects.insert(w.obj, (w.ts, w.dot.replica, w.value));
        }
    }
}

impl ReplicaMachine for LwwReplica {
    fn boxed_clone(&self) -> Box<dyn ReplicaMachine> {
        Box::new(self.clone())
    }

    /// # Panics
    ///
    /// Panics if the operation is not a register operation (write/read).
    fn do_op(&mut self, obj: ObjectId, op: &Op) -> DoOutcome {
        match op {
            Op::Read => {
                let rval = match self.objects.get(&obj) {
                    Some(&(_, _, v)) => ReturnValue::values([v]),
                    None => ReturnValue::empty(),
                };
                DoOutcome::new(rval, self.applied.iter().copied().collect())
                    .with_timestamp(self.clock)
            }
            Op::Write(v) => {
                let visible: Vec<Dot> = self.applied.iter().copied().collect();
                self.clock += 1;
                self.next_seq += 1;
                let w = LwwWrite {
                    dot: Dot::new(self.replica, self.next_seq),
                    obj,
                    ts: self.clock,
                    value: *v,
                };
                self.apply(&w);
                self.outbox.push(w);
                DoOutcome::new(ReturnValue::Ok, visible).with_timestamp(self.clock)
            }
            other => panic!("LWW store does not support {other}"),
        }
    }

    fn pending_message(&self) -> Option<Payload> {
        if self.outbox.is_empty() {
            return None;
        }
        let mut bw = BitWriter::new();
        bw.write_gamma0(self.outbox.len() as u64);
        for w in &self.outbox {
            bw.write_bits(
                w.dot.replica.as_u32() as u64,
                width_for(self.config.n_replicas),
            );
            bw.write_gamma(w.dot.seq as u64);
            bw.write_bits(w.obj.as_u32() as u64, width_for(self.config.n_objects));
            bw.write_gamma(w.ts);
            bw.write_gamma0(w.value.as_u64());
        }
        Some(bw.finish())
    }

    fn on_send(&mut self) {
        assert!(
            !self.outbox.is_empty(),
            "send scheduled with no pending message"
        );
        self.outbox.clear();
    }

    fn on_receive(&mut self, payload: &Payload) {
        let mut r = BitReader::new(payload);
        let Ok(count) = r.read_gamma0() else { return };
        for _ in 0..count {
            let Ok(origin) = r.read_bits(width_for(self.config.n_replicas)) else {
                return;
            };
            let Ok(seq) = r.read_gamma() else { return };
            let Ok(obj) = r.read_bits(width_for(self.config.n_objects)) else {
                return;
            };
            let Ok(ts) = r.read_gamma() else { return };
            let Ok(value) = r.read_gamma0() else { return };
            let w = LwwWrite {
                dot: Dot::new(ReplicaId::new(origin as u32), seq as u32),
                obj: ObjectId::new(obj as u32),
                ts,
                value: Value::new(value),
            };
            if !self.applied.contains(&w.dot) {
                self.apply(&w);
            }
        }
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.clock.hash(&mut h);
        self.next_seq.hash(&mut h);
        self.objects.hash(&mut h);
        self.applied.hash(&mut h);
        self.outbox.hash(&mut h);
        h.finish()
    }

    fn converged_fingerprint(&self) -> u64 {
        // `next_seq` counts updates *originated here* and so differs
        // across replicas even at quiescence; `clock` converges to the
        // global maximum timestamp once every write is delivered.
        let mut h = DefaultHasher::new();
        self.clock.hash(&mut h);
        self.objects.hash(&mut h);
        self.applied.hash(&mut h);
        self.outbox.hash(&mut h);
        h.finish()
    }

    fn state_bits(&self) -> usize {
        let per_obj: usize = self
            .objects
            .values()
            .map(|&(ts, _, v)| {
                gamma_len(ts + 1)
                    + width_for(self.config.n_replicas) as usize
                    + gamma_len(v.as_u64() + 1)
            })
            .sum();
        let applied_bits: usize = self
            .applied
            .iter()
            .map(|d| width_for(self.config.n_replicas) as usize + gamma_len(d.seq as u64))
            .sum();
        gamma_len(self.clock + 1) + per_obj + applied_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StoreConfig {
        StoreConfig::new(3, 2)
    }
    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }
    fn spawn(i: u32) -> Box<dyn ReplicaMachine> {
        LwwStore.spawn(r(i), cfg())
    }
    fn relay(from: &mut Box<dyn ReplicaMachine>, to: &mut Box<dyn ReplicaMachine>) {
        let msg = from.pending_message().expect("message pending");
        from.on_send();
        to.on_receive(&msg);
    }

    #[test]
    fn read_own_write_single_value() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Write(v(1)));
        a.do_op(x(0), &Op::Write(v(2)));
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(2)]));
    }

    #[test]
    fn later_timestamp_wins() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        relay(&mut a, &mut b);
        b.do_op(x(0), &Op::Write(v(2))); // ts 2 > ts 1
        relay(&mut b, &mut a);
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(2)]));
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(2)]));
    }

    #[test]
    fn concurrent_writes_converge_by_replica_tiebreak() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1))); // (ts 1, R0)
        b.do_op(x(0), &Op::Write(v(2))); // (ts 1, R1) — wins the tie
        relay(&mut a, &mut b);
        relay(&mut b, &mut a);
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(2)]));
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(2)]));
    }

    #[test]
    fn timestamps_reported() {
        let mut a = spawn(0);
        let out1 = a.do_op(x(0), &Op::Write(v(1)));
        assert_eq!(out1.timestamp, Some(1));
        let out2 = a.do_op(x(0), &Op::Read);
        assert_eq!(out2.timestamp, Some(1));
        let out3 = a.do_op(x(0), &Op::Write(v(2)));
        assert_eq!(out3.timestamp, Some(2));
    }

    #[test]
    fn reads_invisible() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Write(v(1)));
        let fp = a.state_fingerprint();
        a.do_op(x(0), &Op::Read);
        a.do_op(x(1), &Op::Read);
        assert_eq!(a.state_fingerprint(), fp);
    }

    #[test]
    fn no_causal_buffering() {
        // b's write (made after seeing a's) reaches c before a's: c exposes
        // it immediately — the causality violation LWW permits.
        let mut a = spawn(0);
        let mut b = spawn(1);
        let mut c = spawn(2);
        a.do_op(x(0), &Op::Write(v(1)));
        let ma = a.pending_message().unwrap();
        a.on_send();
        b.on_receive(&ma);
        b.do_op(x(1), &Op::Write(v(2)));
        let mb = b.pending_message().unwrap();
        b.on_send();
        c.on_receive(&mb);
        assert_eq!(
            c.do_op(x(1), &Op::Read).rval,
            ReturnValue::values([v(2)]),
            "dependent write exposed before its dependency"
        );
        assert_eq!(c.do_op(x(0), &Op::Read).rval, ReturnValue::empty());
    }

    #[test]
    fn duplicate_delivery_idempotent() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        let m = a.pending_message().unwrap();
        a.on_send();
        b.on_receive(&m);
        let fp = b.state_fingerprint();
        b.on_receive(&m);
        assert_eq!(b.state_fingerprint(), fp);
    }

    #[test]
    fn lamport_clock_advances_on_receive() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        a.do_op(x(0), &Op::Write(v(2)));
        relay(&mut a, &mut b);
        // b's next write must be timestamped above everything it has seen.
        let out = b.do_op(x(0), &Op::Write(v(3)));
        assert_eq!(out.timestamp, Some(3));
    }

    #[test]
    fn witness_contains_applied_dots() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        relay(&mut a, &mut b);
        let out = b.do_op(x(0), &Op::Read);
        assert_eq!(out.visible, vec![Dot::new(r(0), 1)]);
    }

    #[test]
    fn op_driven_messages() {
        let mut a = spawn(0);
        assert!(a.pending_message().is_none());
        let mut b = spawn(1);
        b.do_op(x(0), &Op::Write(v(1)));
        let m = b.pending_message().unwrap();
        b.on_send();
        a.on_receive(&m);
        assert!(a.pending_message().is_none());
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn inc_panics() {
        spawn(0).do_op(x(0), &Op::Inc);
    }
}
