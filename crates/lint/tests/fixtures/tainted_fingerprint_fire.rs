//! Firing: a wall-clock read two calls away from a state fingerprint.
//! The clock itself also fires the token-level wall-clock lint; the
//! taint pass additionally reports the flow at the sink with its path.

fn sample_ns() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

fn mix(seed: u64) -> u64 {
    seed ^ sample_ns()
}

pub fn fingerprint(state: &[u64]) -> u64 {
    let mut acc = mix(0);
    for w in state {
        acc = acc.wrapping_mul(31).wrapping_add(*w);
    }
    acc
}
