//! The service driver: open-loop workloads against a sharded, batched
//! [`ServiceCluster`] under a faulty simulated network.
//!
//! This is where the production-shaped pieces of
//! [`haec_stores::service`] meet the simulator's discipline. A
//! [`ServiceRunConfig`] names a deployment (replicas × shards ×
//! reconciliation strategy), a workload (open-loop clients over a key
//! distribution) and a fault regime (drop / duplicate / delay /
//! partition); [`run_service`] plays it out tick by tick — one client
//! operation per tick of virtual time — and distills a
//! [`ServiceReport`]: throughput counters, exact wire-bit accounting,
//! visibility-lag and read-staleness histograms (per-shard
//! [`LagObserver`]s, merged in canonical shard order), optional online
//! consistency verdicts (a per-shard [`StreamChecker`]), and a
//! quiescent-convergence check.
//!
//! ## Determinism
//!
//! Everything is a pure function of the config. Two independent rng
//! streams keep the *workload* decoupled from the *network*: client
//! operations draw from a stream seeded with `seed`, fault decisions
//! from one seeded with `seed ⊕ NET_STREAM`. Changing how many fault
//! draws a delivery mode makes (one envelope per destination vs one
//! message per shard) therefore cannot perturb which operations clients
//! issue — which is what makes batched and unbatched runs of the same
//! config directly comparable, and is how the batched-vs-unbatched
//! equivalence differential works. [`run_service_sweep`] distributes
//! whole configs over worker threads with results placed by index, so
//! its output is byte-identical for any thread count.
//!
//! ## Exact accounting
//!
//! Every enqueued wire copy is measured in bits and attributed: a
//! shard's payload bits land on that shard's [`ShardReport`], and the
//! envelope framing (group count, shard tags, length prefixes) lands in
//! [`ServiceReport::envelope_overhead_bits`]. The invariant
//!
//! ```text
//! message_bits == Σ per_shard payload_bits + envelope_overhead_bits
//! ```
//!
//! holds exactly, in both delivery modes (unbatched runs have zero
//! overhead), mirroring the codec-level identity
//! `batch bits == header bits + Σ update bits`.
//!
//! [`LagObserver`]: crate::obs::lag::LagObserver
//! [`StreamChecker`]: haec_core::stream::StreamChecker

use crate::obs::hist::Histogram;
use crate::obs::json::Json;
use crate::obs::lag::LagObserver;
use crate::obs::{DoEvent, Observer};
use crate::workload::{ClientOp, KeyDistribution, OpenLoop, Workload};
use haec_core::stream::{StreamChecker, StreamConfig};
use haec_core::SpecKind;
use haec_model::{Dot, ObjectId, Op, Payload, ReplicaId, StoreFactory};
use haec_stores::service::{encode_envelope, Reconciliation, ServiceCluster, ServiceConfig};
use haec_testkit::Rng;
use std::collections::BTreeMap;

/// Seed perturbation separating the network-fault rng stream from the
/// workload stream (an arbitrary odd constant, frozen).
const NET_STREAM: u64 = 0xA5EE_D0F1_3577_ACE5;

/// A network partition regime: while `from_op <= tick < to_op`, messages
/// crossing the cut between `group` and its complement are held back
/// until the partition heals (the scheduler treats partitions as delays,
/// matching the paper's fair-delivery model — no message is lost to a
/// partition).
#[derive(Clone, PartialEq, Debug)]
pub struct ServicePartition {
    /// First tick of the partition.
    pub from_op: usize,
    /// First tick after the partition heals.
    pub to_op: usize,
    /// One side of the cut; the complement is the other side.
    pub group: Vec<ReplicaId>,
}

impl ServicePartition {
    /// Does a message between `a` and `b` cross the cut?
    pub fn crosses(&self, a: ReplicaId, b: ReplicaId) -> bool {
        self.group.contains(&a) != self.group.contains(&b)
    }
}

/// Full configuration of one service run: deployment, workload, faults.
#[derive(Clone, PartialEq, Debug)]
pub struct ServiceRunConfig {
    /// The deployment: replicas, shards, objects, reconciliation.
    pub service: ServiceConfig,
    /// Object type driving the workload's operation mix.
    pub spec: SpecKind,
    /// Client operations to run (one per tick of virtual time).
    pub ops: usize,
    /// Open-loop client population (each pinned to `client mod replicas`).
    pub n_clients: u32,
    /// Fraction of operations that are reads.
    pub read_ratio: f64,
    /// Key popularity distribution.
    pub keys: KeyDistribution,
    /// Wire mode: `true` coalesces all pending shards into one envelope
    /// per destination; `false` sends one message per shard.
    pub batched: bool,
    /// Delivery delay is uniform in `1..=delay_max` ticks (must be ≥ 1).
    pub delay_max: usize,
    /// Per-copy drop probability.
    pub drop_prob: f64,
    /// Per-copy duplication probability.
    pub dup_prob: f64,
    /// Optional partition window.
    pub partition: Option<ServicePartition>,
    /// `Some(window)` attaches a per-shard online consistency checker
    /// (causal / eventual-within-window / session guarantees).
    pub stream_window: Option<usize>,
    /// Seed for both rng streams.
    pub seed: u64,
}

impl Default for ServiceRunConfig {
    fn default() -> Self {
        ServiceRunConfig {
            service: ServiceConfig::default(),
            spec: SpecKind::Mvr,
            ops: 4096,
            n_clients: 64,
            read_ratio: 0.5,
            keys: KeyDistribution::Uniform,
            batched: true,
            delay_max: 4,
            drop_prob: 0.0,
            dup_prob: 0.0,
            partition: None,
            stream_window: None,
            seed: 0,
        }
    }
}

/// Per-shard slice of a [`ServiceReport`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Global objects the ring assigned to this shard.
    pub objects: usize,
    /// Client operations routed here.
    pub ops: u64,
    /// Updates among them.
    pub updates: u64,
    /// Wire copies enqueued carrying this shard's payload.
    pub messages: u64,
    /// Exact payload bits attributed to this shard across those copies.
    pub payload_bits: u64,
}

/// Online consistency verdicts, ANDed across shards (each shard is its
/// own store instance, so each gets its own checker; cross-shard
/// causality is intentionally not promised).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StreamVerdicts {
    /// Causal consistency held in every shard.
    pub causal: bool,
    /// Windowed eventual consistency held in every shard.
    pub eventual: bool,
    /// Session guarantees held in every shard.
    pub sessions: bool,
}

/// Everything one service run measured. Contains no wall-clock values:
/// [`to_json_string`](Self::to_json_string) is byte-identical for equal
/// configs, whatever machine or thread ran it.
#[derive(Clone, PartialEq, Debug)]
pub struct ServiceReport {
    /// Store factory name.
    pub store: String,
    /// Reconciliation strategy name.
    pub reconciliation: &'static str,
    /// Wire mode of the run.
    pub batched: bool,
    /// Replica count.
    pub n_replicas: usize,
    /// Shard count.
    pub n_shards: usize,
    /// Global object count.
    pub n_objects: usize,
    /// Open-loop client population.
    pub n_clients: u32,
    /// Client operations executed.
    pub ops: u64,
    /// Updates among them.
    pub updates: u64,
    /// Reads among them.
    pub reads: u64,
    /// Wire copies enqueued (per destination; duplicates count twice).
    pub messages: u64,
    /// Total wire bits across those copies — exactly
    /// `Σ shard payload_bits + envelope_overhead_bits`.
    pub message_bits: u64,
    /// Envelope framing bits (zero in unbatched mode).
    pub envelope_overhead_bits: u64,
    /// Copies dropped by the network.
    pub dropped: u64,
    /// Copies duplicated by the network.
    pub duplicated: u64,
    /// Copies held back by the partition.
    pub delayed_by_partition: u64,
    /// Wire-copy sizes in bits.
    pub message_size: Histogram,
    /// Delivery latency in ticks (includes partition hold-back).
    pub delivery_latency: Histogram,
    /// First-observation lag per (update, remote replica), merged over
    /// shards, including the post-run closing sweep.
    pub visibility_lag: Histogram,
    /// Read staleness per client read (closing sweep excluded).
    pub read_staleness: Histogram,
    /// `(update, remote replica)` pairs never observed (lost to drops).
    pub pending_observations: u64,
    /// Did every replica converge on every shard (state fingerprints and
    /// closing-sweep read values all agree) after quiescence?
    pub converged: bool,
    /// Total canonical state bits across all machines at the end.
    pub state_bits: u64,
    /// Per-shard breakdown, in shard order.
    pub per_shard: Vec<ShardReport>,
    /// Online consistency verdicts, when a stream window was configured.
    pub stream: Option<StreamVerdicts>,
    /// Stream-checker feed errors (0 unless a store reports witnesses
    /// that do not resolve to issued updates).
    pub stream_errors: u64,
}

fn hist_json(h: &Histogram) -> Json {
    let minmax = |v: Option<u64>| v.map_or(Json::Null, Json::uint);
    Json::Obj(vec![
        ("count".into(), Json::uint(h.count())),
        ("min".into(), minmax(h.min())),
        ("max".into(), minmax(h.max())),
        ("mean".into(), Json::Float(h.mean())),
        ("p50".into(), minmax(h.quantile(0.5))),
        ("p99".into(), minmax(h.quantile(0.99))),
        (
            "buckets".into(),
            Json::Arr(
                h.buckets()
                    .map(|(lo, hi, c)| {
                        Json::Arr(vec![Json::uint(lo), Json::uint(hi), Json::uint(c)])
                    })
                    .collect(),
            ),
        ),
    ])
}

impl ServiceReport {
    /// The report as a JSON tree with stable key order.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("store".into(), Json::str(self.store.clone())),
            ("reconciliation".into(), Json::str(self.reconciliation)),
            ("batched".into(), Json::Bool(self.batched)),
            ("n_replicas".into(), Json::uint(self.n_replicas as u64)),
            ("n_shards".into(), Json::uint(self.n_shards as u64)),
            ("n_objects".into(), Json::uint(self.n_objects as u64)),
            ("n_clients".into(), Json::uint(u64::from(self.n_clients))),
            ("ops".into(), Json::uint(self.ops)),
            ("updates".into(), Json::uint(self.updates)),
            ("reads".into(), Json::uint(self.reads)),
            ("messages".into(), Json::uint(self.messages)),
            ("message_bits".into(), Json::uint(self.message_bits)),
            (
                "envelope_overhead_bits".into(),
                Json::uint(self.envelope_overhead_bits),
            ),
            ("dropped".into(), Json::uint(self.dropped)),
            ("duplicated".into(), Json::uint(self.duplicated)),
            (
                "delayed_by_partition".into(),
                Json::uint(self.delayed_by_partition),
            ),
            ("message_size".into(), hist_json(&self.message_size)),
            ("delivery_latency".into(), hist_json(&self.delivery_latency)),
            ("visibility_lag".into(), hist_json(&self.visibility_lag)),
            ("read_staleness".into(), hist_json(&self.read_staleness)),
            (
                "pending_observations".into(),
                Json::uint(self.pending_observations),
            ),
            ("converged".into(), Json::Bool(self.converged)),
            ("state_bits".into(), Json::uint(self.state_bits)),
            (
                "per_shard".into(),
                Json::Arr(
                    self.per_shard
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("shard".into(), Json::uint(s.shard as u64)),
                                ("objects".into(), Json::uint(s.objects as u64)),
                                ("ops".into(), Json::uint(s.ops)),
                                ("updates".into(), Json::uint(s.updates)),
                                ("messages".into(), Json::uint(s.messages)),
                                ("payload_bits".into(), Json::uint(s.payload_bits)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "stream".into(),
                match &self.stream {
                    None => Json::Null,
                    Some(v) => Json::Obj(vec![
                        ("causal".into(), Json::Bool(v.causal)),
                        ("eventual".into(), Json::Bool(v.eventual)),
                        ("sessions".into(), Json::Bool(v.sessions)),
                    ]),
                },
            ),
            ("stream_errors".into(), Json::uint(self.stream_errors)),
        ])
    }

    /// Compact, byte-stable JSON rendering.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

/// Renders a slice of reports as one stable JSON array — the sweep-level
/// byte-identity artifact the determinism suite compares across thread
/// counts.
pub fn reports_json(reports: &[ServiceReport]) -> String {
    Json::Arr(reports.iter().map(ServiceReport::to_json).collect()).render()
}

enum MsgKind {
    Envelope(Payload),
    Shard(usize, Payload),
}

struct Msg {
    dst: ReplicaId,
    sent_at: u64,
    kind: MsgKind,
}

#[derive(Clone, Copy, Default)]
struct ShardTally {
    ops: u64,
    updates: u64,
    messages: u64,
    payload_bits: u64,
}

struct Driver<'a> {
    cfg: &'a ServiceRunConfig,
    cluster: ServiceCluster,
    net_rng: Rng,
    /// In-flight copies keyed `(deliver_at, enqueue seq)` — a BTreeMap so
    /// delivery order is a pure function of the keys.
    net: BTreeMap<(u64, u64), Msg>,
    net_seq: u64,
    tallies: Vec<ShardTally>,
    lag: Vec<LagObserver>,
    /// Per `(replica, shard, origin)`: highest witness seq already fed to
    /// the shard's lag observer. Store witnesses are full VV contexts
    /// that only ever grow, so feeding the observer just the *delta* of
    /// newly-witnessed dots yields identical first-observation samples
    /// while keeping observation O(new dots) per event instead of
    /// O(all dots) — the difference between quadratic and linear runs.
    witnessed: Vec<Vec<Vec<u32>>>,
    /// Read staleness, computed in the driver from the full witness
    /// length (same formula as [`LagObserver`], which cannot be used here
    /// because it only sees witness deltas).
    staleness: Histogram,
    stream: Option<Vec<StreamChecker>>,
    stream_errors: u64,
    /// 1-based update counts per `(replica, shard)`, for assigning dots —
    /// each shard is its own store instance with its own dot space.
    update_seq: Vec<Vec<u32>>,
    updates: u64,
    reads: u64,
    messages: u64,
    message_bits: u64,
    envelope_overhead_bits: u64,
    dropped: u64,
    duplicated: u64,
    delayed_by_partition: u64,
    message_size: Histogram,
    delivery_latency: Histogram,
}

impl Driver<'_> {
    fn n_replicas(&self) -> usize {
        self.cfg.service.n_replicas
    }

    fn n_shards(&self) -> usize {
        self.cfg.service.n_shards
    }

    /// Delivers every in-flight copy due at or before `now`.
    fn deliver_due(&mut self, now: u64) {
        while let Some((&(at, seq), _)) = self.net.first_key_value() {
            if at > now {
                break;
            }
            let msg = self.net.remove(&(at, seq)).expect("key just observed");
            self.delivery_latency.record(at - msg.sent_at);
            match &msg.kind {
                MsgKind::Envelope(p) => {
                    self.cluster
                        .deliver_envelope(msg.dst, p)
                        .expect("service envelopes are well-formed");
                }
                MsgKind::Shard(s, p) => self.cluster.deliver_shard(msg.dst, *s, p),
            }
        }
    }

    /// Enqueues one logical message to every other replica, applying the
    /// fault regime per copy when `faulty` (the final quiescence flush
    /// runs fault-free: Lemma 3's fairness — messages keep flowing).
    fn broadcast(
        &mut self,
        origin: ReplicaId,
        groups: Vec<(usize, Payload)>,
        t: u64,
        faulty: bool,
    ) {
        if groups.is_empty() {
            return;
        }
        let envelope = self
            .cfg
            .batched
            .then(|| encode_envelope(&groups, self.n_shards()));
        for dst in 0..self.n_replicas() {
            let dst = ReplicaId::new(dst as u32);
            if dst == origin {
                continue;
            }
            match &envelope {
                Some(env) => {
                    let overhead = env.bits() as u64
                        - groups.iter().map(|(_, p)| p.bits() as u64).sum::<u64>();
                    self.send_copy(
                        origin,
                        dst,
                        MsgKind::Envelope(env.clone()),
                        &groups,
                        overhead,
                        t,
                        faulty,
                    );
                }
                None => {
                    for (shard, payload) in &groups {
                        self.send_copy(
                            origin,
                            dst,
                            MsgKind::Shard(*shard, payload.clone()),
                            std::slice::from_ref(&(*shard, payload.clone())),
                            0,
                            t,
                            faulty,
                        );
                    }
                }
            }
        }
    }

    /// Sends one wire copy `origin → dst`, drawing drop / duplicate /
    /// delay faults, and attributes its bits exactly: payload bits to the
    /// carried shards, framing to the envelope overhead.
    #[allow(clippy::too_many_arguments)]
    fn send_copy(
        &mut self,
        origin: ReplicaId,
        dst: ReplicaId,
        kind: MsgKind,
        groups: &[(usize, Payload)],
        overhead_bits: u64,
        t: u64,
        faulty: bool,
    ) {
        if faulty && self.net_rng.gen_bool(self.cfg.drop_prob) {
            self.dropped += 1;
            return;
        }
        let copies = if faulty && self.net_rng.gen_bool(self.cfg.dup_prob) {
            self.duplicated += 1;
            2
        } else {
            1
        };
        let bits: u64 = overhead_bits + groups.iter().map(|(_, p)| p.bits() as u64).sum::<u64>();
        for copy in 0..copies {
            let delay = if faulty {
                1 + self.net_rng.bounded(self.cfg.delay_max as u64)
            } else {
                1
            };
            let mut deliver_at = t + delay;
            if faulty {
                if let Some(p) = &self.cfg.partition {
                    if (p.from_op as u64..p.to_op as u64).contains(&t) && p.crosses(origin, dst) {
                        deliver_at = deliver_at.max(p.to_op as u64);
                        self.delayed_by_partition += 1;
                    }
                }
            }
            self.messages += 1;
            self.message_bits += bits;
            self.envelope_overhead_bits += overhead_bits;
            self.message_size.record(bits);
            for (shard, payload) in groups {
                self.tallies[*shard].messages += 1;
                self.tallies[*shard].payload_bits += payload.bits() as u64;
            }
            let k = match (&kind, copy) {
                (MsgKind::Envelope(p), _) => MsgKind::Envelope(p.clone()),
                (MsgKind::Shard(s, p), _) => MsgKind::Shard(*s, p.clone()),
            };
            self.net.insert(
                (deliver_at, self.net_seq),
                Msg {
                    dst,
                    sent_at: t,
                    kind: k,
                },
            );
            self.net_seq += 1;
        }
    }

    /// Flushes the named shards of one replica and broadcasts whatever
    /// was pending.
    fn flush(&mut self, origin: ReplicaId, shards: &[usize], t: u64, faulty: bool) {
        let groups: Vec<(usize, Payload)> = shards
            .iter()
            .filter_map(|&s| self.cluster.flush_shard(origin, s).map(|p| (s, p)))
            .collect();
        self.broadcast(origin, groups, t, faulty);
    }

    /// Executes one client operation at tick `t`: routes it, assigns its
    /// dot, feeds the shard's observers, and runs the reconciliation
    /// strategy's flush schedule.
    fn exec_op(&mut self, t: u64, cop: &ClientOp) {
        let (shard, local) = self.cluster.map().route(cop.obj);
        let (_, out) = self.cluster.do_op(cop.replica, cop.obj, &cop.op);
        let dot = cop.op.is_update().then(|| {
            let seq = &mut self.update_seq[cop.replica.index()][shard];
            *seq += 1;
            Dot::new(cop.replica, *seq)
        });
        self.observe(shard, t as usize, cop.replica, local, &cop.op, dot, &out);
        self.tallies[shard].ops += 1;
        if cop.op.is_read() {
            self.reads += 1;
            // Staleness: updates issued in this shard the read's witness
            // context is missing (its distance from the shard frontier).
            self.staleness.record(
                self.tallies[shard]
                    .updates
                    .saturating_sub(out.visible.len() as u64),
            );
        } else {
            self.updates += 1;
            self.tallies[shard].updates += 1;
        }
        match self.cfg.service.reconciliation {
            Reconciliation::WriteRepair => {
                if cop.op.is_update() {
                    self.flush(cop.replica, &[shard], t, true);
                }
            }
            Reconciliation::ReadRepair => {
                if cop.op.is_read() {
                    for r in 0..self.n_replicas() {
                        self.flush(ReplicaId::new(r as u32), &[shard], t, true);
                    }
                }
            }
            Reconciliation::AntiEntropy { .. } => {}
        }
    }

    /// Feeds one do-event to the shard's lag observer (witness delta) and
    /// stream checker (full witness).
    #[allow(clippy::too_many_arguments)]
    fn observe(
        &mut self,
        shard: usize,
        step: usize,
        replica: ReplicaId,
        local: ObjectId,
        op: &Op,
        dot: Option<Dot>,
        out: &haec_model::DoOutcome,
    ) {
        let frontier = &mut self.witnessed[replica.index()][shard];
        let delta: Vec<Dot> = out
            .visible
            .iter()
            .copied()
            .filter(|d| {
                let seen = &mut frontier[d.replica.index()];
                if d.seq > *seen {
                    *seen = d.seq;
                    true
                } else {
                    false
                }
            })
            .collect();
        self.lag[shard].on_do(&DoEvent {
            step,
            replica,
            obj: local,
            op,
            rval: &out.rval,
            dot,
            visible: &delta,
        });
        if let Some(checkers) = &mut self.stream {
            if checkers[shard]
                .push(replica, local, op.is_update(), &out.visible)
                .is_err()
            {
                self.stream_errors += 1;
            }
        }
    }
}

/// Runs one service configuration to completion and reports.
///
/// The run is: `ops` ticks of (deliver due messages; anti-entropy flush
/// if scheduled; one open-loop client op; write/read-repair flush), then
/// quiescence (drain the network, fault-free flush of every replica,
/// drain again), then a closing read sweep over every `(replica, object)`
/// pair that both witnesses convergence for the observers and checks all
/// replicas return identical values.
///
/// # Panics
///
/// Panics if `delay_max == 0` or a probability is outside `[0, 1]`.
pub fn run_service(factory: &dyn StoreFactory, cfg: &ServiceRunConfig) -> ServiceReport {
    assert!(cfg.delay_max >= 1, "delay_max must be at least 1 tick");
    assert!(
        (0.0..=1.0).contains(&cfg.drop_prob) && (0.0..=1.0).contains(&cfg.dup_prob),
        "fault probabilities must be in [0, 1]"
    );
    let sc = &cfg.service;
    let mut driver = Driver {
        cfg,
        cluster: ServiceCluster::new(factory, sc),
        net_rng: Rng::seed_from_u64(cfg.seed ^ NET_STREAM),
        net: BTreeMap::new(),
        net_seq: 0,
        tallies: vec![ShardTally::default(); sc.n_shards],
        lag: (0..sc.n_shards)
            .map(|_| LagObserver::new(sc.n_replicas))
            .collect(),
        witnessed: vec![vec![vec![0u32; sc.n_replicas]; sc.n_shards]; sc.n_replicas],
        staleness: Histogram::new(),
        stream: cfg.stream_window.map(|window| {
            (0..sc.n_shards)
                .map(|_| {
                    StreamChecker::new(StreamConfig {
                        n_replicas: sc.n_replicas,
                        window,
                        gc_window: None,
                    })
                    .expect("stream config is valid")
                })
                .collect()
        }),
        stream_errors: 0,
        update_seq: vec![vec![0u32; sc.n_shards]; sc.n_replicas],
        updates: 0,
        reads: 0,
        messages: 0,
        message_bits: 0,
        envelope_overhead_bits: 0,
        dropped: 0,
        duplicated: 0,
        delayed_by_partition: 0,
        message_size: Histogram::new(),
        delivery_latency: Histogram::new(),
    };
    let mut open = OpenLoop::new(
        Workload::new(
            cfg.spec,
            sc.n_replicas,
            sc.n_objects,
            cfg.read_ratio,
            cfg.keys,
        ),
        cfg.n_clients,
    );
    let mut op_rng = Rng::seed_from_u64(cfg.seed);

    for t in 0..cfg.ops as u64 {
        driver.deliver_due(t);
        if let Reconciliation::AntiEntropy { period } = sc.reconciliation {
            if t > 0 && t % period as u64 == 0 {
                for r in 0..sc.n_replicas {
                    let all: Vec<usize> = (0..sc.n_shards).collect();
                    driver.flush(ReplicaId::new(r as u32), &all, t, true);
                }
            }
        }
        let cop = open.next_op(&mut op_rng);
        driver.exec_op(t, &cop);
    }

    // Quiescence: drain in-flight, final fault-free flush, drain again.
    let t_end = cfg.ops as u64;
    driver.deliver_due(u64::MAX);
    let all: Vec<usize> = (0..sc.n_shards).collect();
    for r in 0..sc.n_replicas {
        driver.flush(ReplicaId::new(r as u32), &all, t_end, false);
    }
    driver.deliver_due(u64::MAX);

    // Closing sweep: every replica reads every object. Witnesses the
    // quiesced state for the observers and checks value agreement.
    let map = driver.cluster.map().clone();
    let mut step = cfg.ops;
    let mut values_agree = true;
    for obj in 0..sc.n_objects {
        let obj = ObjectId::new(obj as u32);
        let (shard, local) = map.route(obj);
        let mut first = None;
        for r in 0..sc.n_replicas {
            let replica = ReplicaId::new(r as u32);
            let (_, out) = driver.cluster.do_op(replica, obj, &Op::Read);
            driver.observe(shard, step, replica, local, &Op::Read, None, &out);
            step += 1;
            match &first {
                None => first = Some(out.rval.clone()),
                Some(f) => {
                    if *f != out.rval {
                        values_agree = false;
                    }
                }
            }
        }
    }
    let converged = driver.cluster.shards_agree() && values_agree;

    let mut visibility_lag = Histogram::new();
    let mut pending = 0;
    for l in &driver.lag {
        visibility_lag.merge(l.visibility_lag());
        pending += l.pending_observations();
    }
    let stream = driver.stream.as_mut().map(|checkers| {
        let mut v = StreamVerdicts {
            causal: true,
            eventual: true,
            sessions: true,
        };
        for c in checkers {
            c.sweep();
            v.causal &= c.causal().is_ok();
            v.eventual &= c.eventual().is_ok();
            v.sessions &= c.sessions().is_ok();
        }
        v
    });

    ServiceReport {
        store: factory.name().to_string(),
        reconciliation: sc.reconciliation.name(),
        batched: cfg.batched,
        n_replicas: sc.n_replicas,
        n_shards: sc.n_shards,
        n_objects: sc.n_objects,
        n_clients: cfg.n_clients,
        ops: cfg.ops as u64,
        updates: driver.updates,
        reads: driver.reads,
        messages: driver.messages,
        message_bits: driver.message_bits,
        envelope_overhead_bits: driver.envelope_overhead_bits,
        dropped: driver.dropped,
        duplicated: driver.duplicated,
        delayed_by_partition: driver.delayed_by_partition,
        message_size: driver.message_size,
        delivery_latency: driver.delivery_latency,
        visibility_lag,
        read_staleness: driver.staleness.clone(),
        pending_observations: pending,
        converged,
        state_bits: driver.cluster.state_bits() as u64,
        per_shard: driver
            .tallies
            .iter()
            .enumerate()
            .map(|(shard, tally)| ShardReport {
                shard,
                objects: map.owned(shard).len(),
                ops: tally.ops,
                updates: tally.updates,
                messages: tally.messages,
                payload_bits: tally.payload_bits,
            })
            .collect(),
        stream,
        stream_errors: driver.stream_errors,
    }
}

/// Runs many configs, distributing them over up to `threads` worker
/// threads. Results are placed by config index, and each run is a pure
/// function of its config, so the output — down to
/// [`reports_json`] bytes — is identical for every thread count.
pub fn run_service_sweep(
    factory: &dyn StoreFactory,
    configs: &[ServiceRunConfig],
    threads: usize,
) -> Vec<ServiceReport> {
    if threads <= 1 || configs.len() <= 1 {
        return configs.iter().map(|c| run_service(factory, c)).collect();
    }
    let workers = threads.min(configs.len());
    let per_worker: Vec<Vec<(usize, ServiceReport)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    configs
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, c)| (i, run_service(factory, c)))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("service sweep worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<ServiceReport>> = configs.iter().map(|_| None).collect();
    for (i, report) in per_worker.into_iter().flatten() {
        slots[i] = Some(report);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every config produces exactly one report"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_stores::DvvMvrStore;

    fn base() -> ServiceRunConfig {
        ServiceRunConfig {
            ops: 600,
            n_clients: 24,
            seed: 7,
            ..ServiceRunConfig::default()
        }
    }

    #[test]
    fn fault_free_run_converges_with_exact_accounting() {
        let report = run_service(&DvvMvrStore, &base());
        assert!(report.converged, "fault-free run must converge");
        assert_eq!(report.ops, 600);
        assert_eq!(report.updates + report.reads, 600);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.duplicated, 0);
        let shard_bits: u64 = report.per_shard.iter().map(|s| s.payload_bits).sum();
        assert_eq!(
            report.message_bits,
            shard_bits + report.envelope_overhead_bits,
            "exact wire accounting"
        );
        assert!(
            report.envelope_overhead_bits > 0,
            "batched mode has framing"
        );
        let shard_ops: u64 = report.per_shard.iter().map(|s| s.ops).sum();
        assert_eq!(shard_ops, 600, "every op lands on exactly one shard");
        assert_eq!(report.pending_observations, 0, "closing sweep observes all");
    }

    #[test]
    fn unbatched_mode_has_zero_overhead_and_same_payload() {
        let batched = run_service(&DvvMvrStore, &base());
        let unbatched = run_service(
            &DvvMvrStore,
            &ServiceRunConfig {
                batched: false,
                ..base()
            },
        );
        assert_eq!(unbatched.envelope_overhead_bits, 0);
        assert_eq!(
            unbatched.message_bits,
            unbatched
                .per_shard
                .iter()
                .map(|s| s.payload_bits)
                .sum::<u64>()
        );
        // Same ops, same flush schedule: identical payload attribution.
        for (a, b) in batched.per_shard.iter().zip(unbatched.per_shard.iter()) {
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.updates, b.updates);
        }
        assert!(batched.converged && unbatched.converged);
    }

    #[test]
    fn reports_are_deterministic_and_sweep_is_thread_invariant() {
        let configs: Vec<ServiceRunConfig> = [1usize, 2, 4]
            .iter()
            .map(|&n_shards| ServiceRunConfig {
                service: ServiceConfig {
                    n_shards,
                    ..ServiceConfig::default()
                },
                ops: 300,
                n_clients: 12,
                seed: 11,
                ..ServiceRunConfig::default()
            })
            .collect();
        let solo = reports_json(&run_service_sweep(&DvvMvrStore, &configs, 1));
        let wide = reports_json(&run_service_sweep(&DvvMvrStore, &configs, 3));
        assert_eq!(solo, wide, "sweep output is byte-identical across threads");
        let again = reports_json(&run_service_sweep(&DvvMvrStore, &configs, 2));
        assert_eq!(solo, again);
    }

    #[test]
    fn drops_lose_observations_and_are_reported() {
        let report = run_service(
            &DvvMvrStore,
            &ServiceRunConfig {
                drop_prob: 0.4,
                ..base()
            },
        );
        assert!(report.dropped > 0, "a 40% drop rate drops something");
        // Fingerprint agreement may or may not survive; the report must
        // say what happened rather than assume.
        assert_eq!(report.ops, 600);
    }

    #[test]
    fn stream_checkers_pass_on_clean_causal_runs() {
        let report = run_service(
            &DvvMvrStore,
            &ServiceRunConfig {
                stream_window: Some(4096),
                ..base()
            },
        );
        let v = report.stream.expect("stream verdicts requested");
        assert_eq!(report.stream_errors, 0);
        assert!(v.causal && v.eventual && v.sessions, "{v:?}");
    }

    #[test]
    fn partition_delays_cross_cut_traffic() {
        let report = run_service(
            &DvvMvrStore,
            &ServiceRunConfig {
                partition: Some(ServicePartition {
                    from_op: 100,
                    to_op: 400,
                    group: vec![ReplicaId::new(0)],
                }),
                ..base()
            },
        );
        assert!(report.delayed_by_partition > 0);
        assert!(report.converged, "partitions heal; nothing is lost");
        assert!(
            report.delivery_latency.max().unwrap() > 50,
            "held-back copies show up as latency"
        );
    }

    #[test]
    fn reconciliation_strategies_trade_messages_for_staleness() {
        let mk = |reconciliation| ServiceRunConfig {
            service: ServiceConfig {
                reconciliation,
                ..ServiceConfig::default()
            },
            ops: 800,
            n_clients: 24,
            seed: 13,
            ..ServiceRunConfig::default()
        };
        let write = run_service(&DvvMvrStore, &mk(Reconciliation::WriteRepair));
        let anti = run_service(
            &DvvMvrStore,
            &mk(Reconciliation::AntiEntropy { period: 64 }),
        );
        assert!(write.converged && anti.converged);
        // Write repair flushes eagerly: more messages, fresher reads.
        assert!(
            write.messages > anti.messages,
            "write-repair {} vs anti-entropy {}",
            write.messages,
            anti.messages
        );
        assert!(
            write.read_staleness.mean() < anti.read_staleness.mean(),
            "write-repair staleness {} vs anti-entropy {}",
            write.read_staleness.mean(),
            anti.read_staleness.mean()
        );
    }

    #[test]
    fn read_repair_flushes_on_reads() {
        let report = run_service(
            &DvvMvrStore,
            &ServiceRunConfig {
                service: ServiceConfig {
                    reconciliation: Reconciliation::ReadRepair,
                    ..ServiceConfig::default()
                },
                ..base()
            },
        );
        assert!(report.converged);
        assert!(report.messages > 0);
    }

    #[test]
    #[should_panic(expected = "delay_max")]
    fn zero_delay_panics() {
        let _ = run_service(
            &DvvMvrStore,
            &ServiceRunConfig {
                delay_max: 0,
                ..ServiceRunConfig::default()
            },
        );
    }
}
