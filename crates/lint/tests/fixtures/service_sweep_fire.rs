//! Firing: a service-sweep-shaped fan-out outside the sanctioned sweep
//! module. Same source as `service_sweep_clean.rs`, which pins itself
//! (via `//@ lint-path`) to `crates/sim/src/service.rs` — the sweep
//! driver whose thread use is structurally deterministic (share-nothing
//! configs, results placed by index). Anywhere else, including here, the
//! ambient-entropy gate still fires.

fn sweep(configs: &[u64]) -> Vec<u64> {
    let workers = 4usize.min(configs.len());
    let per_worker: Vec<Vec<(usize, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    configs
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, c)| (i, c.wrapping_mul(3)))
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = vec![0; configs.len()];
    for (i, v) in per_worker.into_iter().flatten() {
        out[i] = v;
    }
    out
}
