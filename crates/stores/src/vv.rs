//! Version vectors.

use haec_model::{Dot, ReplicaId};
use std::fmt;

/// A version vector: for each replica, the number of its updates that are
/// contiguously known/applied.
///
/// ```
/// use haec_stores::vv::VersionVector;
/// use haec_model::{Dot, ReplicaId};
/// let mut vv = VersionVector::new(3);
/// vv.advance(ReplicaId::new(1));
/// assert!(vv.contains(Dot::new(ReplicaId::new(1), 1)));
/// assert!(!vv.contains(Dot::new(ReplicaId::new(1), 2)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct VersionVector {
    entries: Vec<u32>,
}

impl VersionVector {
    /// The zero vector over `n` replicas.
    pub fn new(n: usize) -> Self {
        VersionVector {
            entries: vec![0; n],
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for a replica.
    pub fn get(&self, r: ReplicaId) -> u32 {
        self.entries[r.index()]
    }

    /// Sets the entry for a replica.
    pub fn set(&mut self, r: ReplicaId, v: u32) {
        self.entries[r.index()] = v;
    }

    /// Increments the entry for a replica and returns the new value.
    pub fn advance(&mut self, r: ReplicaId) -> u32 {
        self.entries[r.index()] += 1;
        self.entries[r.index()]
    }

    /// Tests whether the dot is covered: `dot.seq ≤ self[dot.replica]`.
    pub fn contains(&self, dot: Dot) -> bool {
        dot.seq <= self.entries[dot.replica.index()]
    }

    /// Tests pointwise domination: `self[r] ≥ other[r]` for all `r`.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        self.entries.iter().zip(&other.entries).all(|(a, b)| a >= b)
    }

    /// Pointwise maximum, in place.
    pub fn merge(&mut self, other: &VersionVector) {
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a = (*a).max(*b);
        }
    }

    /// Iterates over all dots covered by the vector.
    pub fn dots(&self) -> impl Iterator<Item = Dot> + '_ {
        self.entries
            .iter()
            .enumerate()
            .flat_map(|(r, &c)| (1..=c).map(move |s| Dot::new(ReplicaId::new(r as u32), s)))
    }

    /// Total number of covered dots.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&c| c as u64).sum()
    }

    /// Raw entries.
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }
}

impl fmt::Display for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn advance_and_contains() {
        let mut vv = VersionVector::new(2);
        assert_eq!(vv.advance(r(0)), 1);
        assert_eq!(vv.advance(r(0)), 2);
        assert!(vv.contains(Dot::new(r(0), 2)));
        assert!(!vv.contains(Dot::new(r(0), 3)));
        assert!(!vv.contains(Dot::new(r(1), 1)));
    }

    #[test]
    fn domination_is_pointwise() {
        let mut a = VersionVector::new(2);
        a.set(r(0), 2);
        let mut b = VersionVector::new(2);
        b.set(r(1), 1);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        a.merge(&b);
        assert!(a.dominates(&b));
        assert_eq!(a.entries(), &[2, 1]);
    }

    #[test]
    fn merge_is_lub() {
        let mut a = VersionVector::new(3);
        a.set(r(0), 5);
        a.set(r(2), 1);
        let mut b = VersionVector::new(3);
        b.set(r(0), 3);
        b.set(r(1), 4);
        a.merge(&b);
        assert_eq!(a.entries(), &[5, 4, 1]);
    }

    #[test]
    fn dots_enumeration() {
        let mut vv = VersionVector::new(2);
        vv.set(r(0), 2);
        vv.set(r(1), 1);
        let dots: Vec<Dot> = vv.dots().collect();
        assert_eq!(
            dots,
            vec![Dot::new(r(0), 1), Dot::new(r(0), 2), Dot::new(r(1), 1)]
        );
        assert_eq!(vv.total(), 3);
    }

    #[test]
    fn display() {
        let mut vv = VersionVector::new(3);
        vv.set(r(1), 7);
        assert_eq!(vv.to_string(), "⟨0,7,0⟩");
    }
}
