//! Observable causal consistency (Definition 18).
//!
//! OCC strengthens causal consistency: whenever a read of an MVR returns
//! two (or more) concurrent writes `{w0, w1}`, the execution must contain
//! *witnesses* `w0′`, `w1′` — writes to two further, distinct objects — that
//! make the concurrency observable, so that no equivalent execution can
//! "pretend" one write was visible to the other (Figure 3).

use crate::abstract_execution::AbstractExecution;
use crate::bits;
use crate::det::DetMap;
use haec_model::{ObjectId, Op, Relation};
use std::fmt;

/// A read returning a concurrent pair for which no OCC witnesses exist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OccViolation {
    /// Index of the read in `H`.
    pub read: usize,
    /// Index of the first returned write.
    pub w0: usize,
    /// Index of the second returned write.
    pub w1: usize,
}

impl fmt::Display for OccViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {} returns concurrent writes {} and {} without OCC witnesses",
            self.read, self.w0, self.w1
        )
    }
}

impl std::error::Error for OccViolation {}

/// The witnesses found for one concurrent pair, for reporting/debugging.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OccWitness {
    /// The read event.
    pub read: usize,
    /// The concurrent pair `(w0, w1)`.
    pub pair: (usize, usize),
    /// The witness writes `(w0′, w1′)`.
    pub witnesses: (usize, usize),
}

/// Word-parallel visibility index built once per execution: the transposed
/// `vis` (row `e` = predecessor bitset of `e`), a mask of all write events,
/// and a mask of events per object, all in [`Relation::row_words`] layout.
struct VisIndex {
    words: usize,
    preds: Relation,
    writes: Vec<u64>,
    by_obj: DetMap<ObjectId, Vec<u64>>,
}

impl VisIndex {
    fn new(a: &AbstractExecution) -> VisIndex {
        let n = a.len();
        let words = bits::words_for(n);
        let preds = a.vis().transpose();
        let mut writes = vec![0u64; words];
        let mut by_obj: DetMap<ObjectId, Vec<u64>> = DetMap::new();
        for i in 0..n {
            let e = a.event(i);
            if matches!(e.op, Op::Write(_)) {
                bits::set(&mut writes, i);
            }
            bits::set(by_obj.get_or_insert_with(e.obj, || vec![0u64; words]), i);
        }
        VisIndex {
            words,
            preds,
            writes,
            by_obj,
        }
    }

    /// Candidate witnesses for one side of the pair: writes to objects other
    /// than `o` that are visible to `seen` but not to `unseen`, computed as
    /// `preds(seen) & !preds(unseen) & writes & !obj(o)` word by word.
    fn candidates(&self, o: ObjectId, seen: usize, unseen: usize) -> Vec<u64> {
        let obj_mask = self.by_obj.get(&o);
        let mut cands = self.preds.row_words(seen).to_vec();
        for (w, (c, &p)) in cands
            .iter_mut()
            .zip(self.preds.row_words(unseen))
            .enumerate()
        {
            *c &= !p & self.writes[w];
            if let Some(m) = obj_mask {
                *c &= !m[w];
            }
        }
        cands
    }
}

fn condition4(a: &AbstractExecution, idx: &VisIndex, w_prime: usize, w_same: usize) -> bool {
    // For any write w̃ with obj(w̃) = obj(w′) and w̃ vis w_same: w̃ vis w′.
    // A violator has its bit set in obj(w′) & writes & preds(w_same) &
    // !preds(w′), excluding w′ itself; the condition holds iff that row is
    // all zero.
    let objp = a.event(w_prime).obj;
    let obj_mask = idx.by_obj.get(&objp).expect("w_prime is an event on objp");
    let same = idx.preds.row_words(w_same);
    let prime = idx.preds.row_words(w_prime);
    for w in 0..idx.words {
        let mut viol = obj_mask[w] & idx.writes[w] & same[w] & !prime[w];
        if w == w_prime / 64 {
            viol &= !(1u64 << (w_prime % 64));
        }
        if viol != 0 {
            return false;
        }
    }
    true
}

/// Searches for OCC witnesses for one read and one pair of writes it
/// returned. Returns the first witness pair found.
pub fn find_witnesses(
    a: &AbstractExecution,
    read: usize,
    w0: usize,
    w1: usize,
) -> Option<OccWitness> {
    find_witnesses_indexed(a, &VisIndex::new(a), read, w0, w1)
}

fn find_witnesses_indexed(
    a: &AbstractExecution,
    idx: &VisIndex,
    read: usize,
    w0: usize,
    w1: usize,
) -> Option<OccWitness> {
    let o = a.event(read).obj;
    // w1′ vis w0, w1′ ¬vis w1; w0′ vis w1, w0′ ¬vis w0; both to objects ≠ o.
    let cands1 = idx.candidates(o, w0, w1);
    let cands0 = idx.candidates(o, w1, w0);
    for w1p in bits::iter_bits(&cands1) {
        if !condition4(a, idx, w1p, w1) {
            continue;
        }
        let obj1p = a.event(w1p).obj;
        for w0p in bits::iter_bits(&cands0) {
            if a.event(w0p).obj == obj1p {
                continue;
            }
            if condition4(a, idx, w0p, w0) {
                return Some(OccWitness {
                    read,
                    pair: (w0, w1),
                    witnesses: (w0p, w1p),
                });
            }
        }
    }
    None
}

/// Checks Definition 18 on a (causally consistent) abstract execution: every
/// read of an MVR returning two or more writes must have OCC witnesses for
/// each returned pair.
///
/// Values are resolved to write events under the paper's distinct-writes
/// assumption; a returned value with no visible matching write is a
/// *correctness* problem and is ignored here (use
/// [`check_correct`](crate::check_correct) first).
///
/// # Errors
///
/// Returns the first pair lacking witnesses.
pub fn check(a: &AbstractExecution) -> Result<(), OccViolation> {
    crate::spans::timed("check.occ", || check_inner(a))
}

fn check_inner(a: &AbstractExecution) -> Result<(), OccViolation> {
    let idx = VisIndex::new(a);
    for read in 0..a.len() {
        let e = a.event(read);
        if !e.op.is_read() {
            continue;
        }
        let Some(vals) = e.rval.as_values() else {
            continue;
        };
        if vals.len() < 2 {
            continue;
        }
        // Resolve returned values to visible write events on the object.
        let mut write_events = Vec::new();
        for &v in vals {
            let mut found = a
                .writes_of_value(e.obj, v)
                .into_iter()
                .filter(|&w| a.sees(w, read));
            if let Some(w) = found.next() {
                write_events.push(w);
            }
        }
        for i in 0..write_events.len() {
            for j in (i + 1)..write_events.len() {
                let (w0, w1) = (write_events[i], write_events[j]);
                if find_witnesses_indexed(a, &idx, read, w0, w1).is_none() {
                    return Err(OccViolation { read, w0, w1 });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_execution::{AbstractExecution, AbstractExecutionBuilder};
    use haec_model::{ObjectId, Op, ReplicaId, ReturnValue, Value};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }

    /// The Figure 3c pattern: each of w0, w1 is preceded (at its replica) by
    /// a write to a distinct auxiliary object that the other write does not
    /// see. This makes the concurrency of w0 and w1 observable.
    fn fig3c_execution() -> AbstractExecution {
        let mut b = AbstractExecutionBuilder::new();
        // R0: w1' = write(x1, 10); w0 = write(x0, 1)
        let w1p = b.push(r(0), x(1), Op::Write(v(10)), ReturnValue::Ok);
        let w0 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        // R1: w0' = write(x2, 20); w1 = write(x0, 2)
        let w0p = b.push(r(1), x(2), Op::Write(v(20)), ReturnValue::Ok);
        let w1 = b.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        // R2 reads both.
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::values([v(1), v(2)]));
        b.vis(w0, rd).vis(w1, rd).vis(w1p, rd).vis(w0p, rd);
        let a = b.build_transitive().unwrap();
        assert_eq!(a.event(w1p).obj, x(1));
        assert!(a.sees(w1p, w0) && !a.sees(w1p, w1));
        assert!(a.sees(w0p, w1) && !a.sees(w0p, w0));
        a
    }

    #[test]
    fn fig3c_pattern_is_occ() {
        let a = fig3c_execution();
        assert!(check(&a).is_ok());
        let w = find_witnesses(&a, 4, 1, 3).expect("witnesses exist");
        assert_eq!(w.witnesses, (2, 0));
    }

    #[test]
    fn bare_concurrent_pair_violates_occ() {
        // No auxiliary writes at all: the pair could be "hidden".
        let mut b = AbstractExecutionBuilder::new();
        let w0 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let w1 = b.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::values([v(1), v(2)]));
        b.vis(w0, rd).vis(w1, rd);
        let a = b.build_transitive().unwrap();
        let viol = check(&a).unwrap_err();
        assert_eq!(viol.read, rd);
        assert_eq!((viol.w0, viol.w1), (w0, w1));
    }

    #[test]
    fn single_valued_reads_trivially_occ() {
        let mut b = AbstractExecutionBuilder::new();
        let w = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let rd = b.push(r(1), x(0), Op::Read, ReturnValue::values([v(1)]));
        b.vis(w, rd);
        let a = b.build_transitive().unwrap();
        assert!(check(&a).is_ok());
    }

    #[test]
    fn witness_visible_to_other_write_disqualified() {
        // Like fig3c, but w1' is also visible to w1: condition 3 fails and
        // there is no other witness, so OCC is violated.
        let mut b = AbstractExecutionBuilder::new();
        let w1p = b.push(r(0), x(1), Op::Write(v(10)), ReturnValue::Ok);
        let w0 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let w0p = b.push(r(1), x(2), Op::Write(v(20)), ReturnValue::Ok);
        let w1 = b.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::values([v(1), v(2)]));
        b.vis(w0, rd).vis(w1, rd).vis(w1p, rd).vis(w0p, rd);
        b.vis(w1p, w1); // spoils condition 3 for the only candidate w1'.
        let a = b.build_transitive().unwrap();
        assert!(check(&a).is_err());
        let _ = (w0p, w0);
    }

    #[test]
    fn condition4_concurrent_aux_write_disqualifies() {
        // A write w̃ to obj(w1') visible to w1 but NOT to w1' breaks
        // condition 4.
        let mut b = AbstractExecutionBuilder::new();
        let w1p = b.push(r(0), x(1), Op::Write(v(10)), ReturnValue::Ok);
        let w0 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let wt = b.push(r(2), x(1), Op::Write(v(30)), ReturnValue::Ok); // w̃, concurrent with w1'
        let w0p = b.push(r(1), x(2), Op::Write(v(20)), ReturnValue::Ok);
        let w1 = b.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        let rd = b.push(r(3), x(0), Op::Read, ReturnValue::values([v(1), v(2)]));
        b.vis(w0, rd)
            .vis(w1, rd)
            .vis(w1p, rd)
            .vis(w0p, rd)
            .vis(wt, rd);
        b.vis(wt, w1); // w̃ visible to w1, concurrent with w1'.
        let a = b.build_transitive().unwrap();
        assert!(check(&a).is_err());
        let _ = (w0, w0p);
    }

    #[test]
    fn violation_display() {
        let viol = OccViolation {
            read: 4,
            w0: 1,
            w1: 3,
        };
        assert!(viol.to_string().contains("read 4"));
    }
}
