//! Observability regression: known-answer histograms on a hand-computed
//! schedule, observer passivity (byte-identical transcripts with and
//! without observers), and the JSON report acceptance checks.

use haec::prelude::*;
use haec::sim::obs::json::Json;
use haec::sim::obs::lag::LagObserver;
use haec::sim::obs::log::EventLog;
use haec::sim::obs::stats::StatsObserver;
use haec::sim::obs::{self};
use haec::sim::trace;
use haec::sim::{ReportConfig, RunReport};
use haec::stores::CopsStore;
use haec_testkit::prop::{self, u64s};

/// A tiny fully hand-computable 2-replica schedule:
///
/// ```text
/// e0  do   R0 write v1      (dot R0:1, update #1)
/// e1  send R0 m0
/// e2  recv R1 m0            (latency 2-1 = 1)
/// e3  do   R1 read -> {v1}  (first obs of R0:1 at R1: lag 3-0 = 3;
///                            staleness 1 issued - 1 seen = 0)
/// e4  do   R1 write v2      (dot R1:1, update #2)
/// e5  send R1 m1
/// e6  recv R0 m1            (latency 6-5 = 1)
/// e7  do   R0 read -> {v2}  (first obs of R1:1 at R0: lag 7-4 = 3;
///                            staleness 2 issued - 2 seen = 0)
/// ```
#[test]
fn known_answer_histograms_on_tiny_schedule() {
    let stats = obs::shared(StatsObserver::new());
    let lag = obs::shared(LagObserver::new(2));
    let log = obs::shared(EventLog::new(8));
    let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(2, 1));
    sim.attach_observer(Box::new(stats.clone()));
    sim.attach_observer(Box::new(lag.clone()));
    sim.attach_observer(Box::new(log.clone()));

    let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
    let x = ObjectId::new(0);
    sim.do_op(r0, x, Op::Write(Value::new(1))); // e0
    sim.flush(r0); // e1: send m0
    sim.deliver(0); // e2: recv R1 m0
    assert_eq!(
        sim.do_op(r1, x, Op::Read).1, // e3
        ReturnValue::values([Value::new(1)])
    );
    sim.do_op(r1, x, Op::Write(Value::new(2))); // e4
    sim.flush(r1); // e5: send m1
    sim.deliver(0); // e6: recv R0 m1
    assert_eq!(
        sim.do_op(r0, x, Op::Read).1, // e7
        ReturnValue::values([Value::new(2)])
    );

    let stats = stats.borrow();
    assert_eq!(stats.do_events(), 4);
    assert_eq!(stats.updates(), 2);
    assert_eq!(stats.reads(), 2);
    assert_eq!(stats.sends(), 2);
    assert_eq!(stats.receives(), 2);
    assert_eq!(stats.drops(), 0);
    assert_eq!(stats.duplicates(), 0);

    // Both deliveries happened exactly one transcript event after the send.
    assert_eq!(stats.delivery_latency().count(), 2);
    assert_eq!(stats.delivery_latency().min(), Some(1));
    assert_eq!(stats.delivery_latency().max(), Some(1));
    assert!((stats.delivery_latency().mean() - 1.0).abs() < 1e-12);

    // Message sizes: one sample per send, and the histogram must agree
    // with the recorded payloads exactly.
    assert_eq!(stats.message_bits().count(), 2);
    let bits: Vec<u64> = (0..2)
        .map(|i| {
            sim.execution()
                .message(haec::model::MsgId::new(i))
                .payload
                .bits() as u64
        })
        .collect();
    assert_eq!(stats.message_bits().min(), bits.iter().min().copied());
    assert_eq!(stats.message_bits().max(), bits.iter().max().copied());

    // Each update was first observed remotely 3 events after it was done.
    let lag = lag.borrow();
    assert_eq!(lag.updates_issued(), 2);
    assert_eq!(lag.visibility_lag().count(), 2);
    assert_eq!(lag.visibility_lag().min(), Some(3));
    assert_eq!(lag.visibility_lag().max(), Some(3));
    assert_eq!(lag.pending_observations(), 0);

    // Both reads saw every update issued so far: staleness 0.
    assert_eq!(lag.read_staleness().count(), 2);
    assert_eq!(lag.read_staleness().min(), Some(0));
    assert_eq!(lag.read_staleness().max(), Some(0));

    // The log saw every one of the 8 transcript events.
    let log = log.borrow();
    assert_eq!(log.total_seen(), 8);
    let rendered: Vec<String> = log.records().map(|r| r.to_string()).collect();
    assert!(rendered[0].contains("do R0"), "{rendered:?}");
    assert!(rendered.iter().any(|l| l.contains("recv R1 m0")));
}

/// Observers are passive: a run with the full battery attached must leave
/// a byte-identical transcript (execution text and fault records) to the
/// same run without observers.
#[test]
fn observers_do_not_perturb_runs() {
    let run = |seed: u64, observe: bool| {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 2));
        if observe {
            sim.attach_observer(Box::new(obs::shared(StatsObserver::new())));
            sim.attach_observer(Box::new(obs::shared(LagObserver::new(3))));
            sim.attach_observer(Box::new(obs::shared(EventLog::new(32))));
        }
        let mut wl = Workload::new(SpecKind::Mvr, 3, 2, 0.4, KeyDistribution::Uniform);
        let cfg = ScheduleConfig {
            steps: 120,
            drop_prob: 0.1,
            dup_prob: 0.1,
            partition: Some(Partition {
                from_step: 20,
                to_step: 60,
                group: vec![0],
            }),
            ..ScheduleConfig::default()
        };
        run_schedule(&mut sim, &mut wl, &cfg, seed);
        trace::to_text_with_faults(sim.execution(), sim.faults())
    };
    prop::check("observer passivity", &u64s(0..1_000_000), |seed| {
        let bare = run(*seed, false);
        let observed = run(*seed, true);
        haec_testkit::prop_assert_eq!(bare.as_bytes(), observed.as_bytes());
        Ok(())
    });
}

/// The ISSUE acceptance check: `report --json` semantics for three stores
/// on seed 42 — valid JSON carrying event counts, the message-bits
/// histogram, visibility-lag and staleness histograms, and checker span
/// timings; and the same seed renders byte-identically (normalized).
#[test]
fn seed_42_reports_are_valid_and_reproducible() {
    let factories: [&dyn StoreFactory; 3] = [&DvvMvrStore, &CopsStore, &LwwStore];
    for factory in factories {
        let config = ReportConfig::default();
        let rep = RunReport::collect(factory, &config, 42);
        let text = rep.to_json_string();
        let v = Json::parse(&text).unwrap_or_else(|e| panic!("{}: bad JSON: {e}", factory.name()));
        assert_eq!(v.get("schema_version").and_then(Json::as_int), Some(1));
        assert_eq!(
            v.get("store").and_then(Json::as_str),
            Some(factory.name()),
            "store name survives"
        );
        let events = v.get("events").expect("events object");
        assert!(events.get("do").and_then(Json::as_int).unwrap_or(0) > 0);
        let messages = v.get("messages").expect("messages object");
        assert!(messages
            .get("size_hist")
            .and_then(|h| h.get("count"))
            .is_some());
        assert!(v
            .get("visibility_lag")
            .and_then(|l| l.get("hist"))
            .is_some());
        assert!(v
            .get("read_staleness")
            .and_then(|h| h.get("buckets"))
            .is_some());
        let spans = v.get("spans").and_then(Json::as_arr).expect("spans array");
        assert!(!spans.is_empty(), "checker phases must be span-timed");

        let again = RunReport::collect(factory, &config, 42);
        assert_eq!(
            rep.to_json_normalized(),
            again.to_json_normalized(),
            "{}: same seed must render identically",
            factory.name()
        );
    }
}
