//! E4 / Theorem 12: the encode/decode roundtrip across `k`. Reports both
//! the wall-clock cost of the Figure 4 construction and (via
//! `experiments --thm12`) the measured message sizes against the bound.

use haec_stores::DvvMvrStore;
use haec_testkit::Bench;
use haec_theory::{roundtrip, Thm12Config};
use std::hint::black_box;

fn main() {
    let mut bench = Bench::from_args("thm12_roundtrip");
    for &k in &[4u32, 32, 256] {
        let cfg = Thm12Config {
            n_replicas: 5,
            n_objects: 4,
            k,
        };
        let g: Vec<u32> = (0..cfg.n_prime()).map(|i| (i as u32 % k) + 1).collect();
        bench.bench(&format!("dvv-mvr/{k}"), || {
            let rt = roundtrip(&DvvMvrStore, black_box(&cfg), black_box(&g));
            assert!(rt.is_lossless());
            black_box(rt.m_g_bits)
        });
    }
    bench.finish();
}
