//! Quickstart: drive a highly-available MVR store, watch concurrency
//! surface, and check the run against the paper's consistency models.
//!
//! Run with: `cargo run --example quickstart`

use haec::prelude::*;

fn main() {
    // A cluster of three replicas of the dotted-version-vector MVR store,
    // serving one multi-valued register.
    let config = StoreConfig::new(3, 1);
    let mut sim = Simulator::new(&DvvMvrStore, config);
    let x = ObjectId::new(0);
    let (r0, r1, r2) = (ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2));

    // Two clients write concurrently at different replicas — each write
    // completes immediately, without any communication (high availability).
    sim.do_op(r0, x, Op::Write(Value::new(1)));
    sim.do_op(r1, x, Op::Write(Value::new(2)));

    // Before any message is exchanged, each replica sees only its own write.
    println!("before sync: R0 reads {}", sim.read(r0, x));
    println!("before sync: R1 reads {}", sim.read(r1, x));
    println!("before sync: R2 reads {}", sim.read(r2, x));

    // Quiesce: broadcast everything pending and deliver every message
    // (Definition 17). Eventual consistency now kicks in.
    sim.quiesce();
    for r in [r0, r1, r2] {
        let rv = sim.read(r, x);
        println!("after sync:  {r} reads {rv}");
        assert_eq!(rv, ReturnValue::values([Value::new(1), Value::new(2)]));
    }
    println!("the MVR exposes the conflict: both writes are returned\n");

    // Every run records a faithful execution; the store also reports
    // visibility witnesses, from which we build an abstract execution and
    // check the paper's conditions.
    let a = sim.abstract_execution().expect("witness resolves");
    let specs = ObjectSpecs::uniform(SpecKind::Mvr);
    println!("events in H: {}", a.len());
    println!(
        "correct (Def. 8):  {}",
        if check_correct(&a, &specs).is_ok() {
            "yes"
        } else {
            "NO"
        }
    );
    println!(
        "causal (Def. 12):  {}",
        if causal::check(&a).is_ok() {
            "yes"
        } else {
            "NO"
        }
    );
    match occ::check(&a) {
        Ok(()) => println!("OCC (Def. 18):     yes"),
        Err(v) => {
            println!("OCC (Def. 18):     no — {v} (expected: bare concurrency has no witnesses)")
        }
    }
}
