//! Event counters and network-cost histograms.

use super::hist::Histogram;
use super::{DoEvent, FaultEvent, ForkJoinObserver, Observer, ReceiveEvent, SendEvent};
use haec_core::det::DetMap;

/// Per-family tallies from scenario-family sweeps
/// ([`Observer::on_family_member`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct FamilyTally {
    /// Members run.
    pub members: u64,
    /// Members whose predicate failed.
    pub failures: u64,
    /// Total patterns across the members run (so mean member length is
    /// `pattern_total / members`).
    pub pattern_total: u64,
}

/// Counts every kind of simulator event and aggregates network costs:
/// message sizes (bits, per send), delivery latency (transcript events
/// between a send and each of its deliveries), peak total state size, and
/// exhaustive-search effort.
#[derive(Clone, Debug, Default)]
pub struct StatsObserver {
    do_events: u64,
    updates: u64,
    reads: u64,
    sends: u64,
    receives: u64,
    drops: u64,
    duplicates: u64,
    partition_changes: u64,
    quiesce_calls: u64,
    quiesce_rounds: u64,
    message_bits: Histogram,
    delivery_latency: Histogram,
    peak_state_bits: usize,
    search_nodes: u64,
    max_frontier: usize,
    shrink_steps: u64,
    dedup_hits: u64,
    dedup_misses: u64,
    families: DetMap<String, FamilyTally>,
}

impl StatsObserver {
    /// A fresh, all-zero collector.
    pub fn new() -> Self {
        StatsObserver::default()
    }

    /// Client operations observed.
    pub fn do_events(&self) -> u64 {
        self.do_events
    }

    /// Update (non-read) operations observed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Read operations observed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Broadcasts observed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Deliveries observed.
    pub fn receives(&self) -> u64 {
        self.receives
    }

    /// Dropped in-flight copies.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Duplicated in-flight copies.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Partition starts plus heals.
    pub fn partition_changes(&self) -> u64 {
        self.partition_changes
    }

    /// Quiescence drives observed.
    pub fn quiesce_calls(&self) -> u64 {
        self.quiesce_calls
    }

    /// Total flush-and-deliver rounds across all quiescence drives.
    pub fn quiesce_rounds(&self) -> u64 {
        self.quiesce_rounds
    }

    /// Histogram of encoded message sizes in bits (one sample per send).
    pub fn message_bits(&self) -> &Histogram {
        &self.message_bits
    }

    /// Histogram of delivery latencies: transcript events between a send
    /// and each delivery of one of its copies.
    pub fn delivery_latency(&self) -> &Histogram {
        &self.delivery_latency
    }

    /// Largest total encoded replica state (bits) seen in any sample.
    pub fn peak_state_bits(&self) -> usize {
        self.peak_state_bits
    }

    /// Schedule prefixes expanded by the exhaustive explorer.
    pub fn search_nodes(&self) -> u64 {
        self.search_nodes
    }

    /// Largest explorer frontier (stack depth) seen.
    pub fn max_frontier(&self) -> usize {
        self.max_frontier
    }

    /// Candidate schedules tried by the counterexample shrinker.
    pub fn shrink_steps(&self) -> u64 {
        self.shrink_steps
    }

    /// Fingerprint-cache hits (pruned subtrees) in the exhaustive explorer.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Fingerprint-cache misses in the exhaustive explorer.
    pub fn dedup_misses(&self) -> u64 {
        self.dedup_misses
    }

    /// Per-family member/failure tallies from scenario-family sweeps,
    /// keyed by family name (deterministic iteration order).
    pub fn families(&self) -> &DetMap<String, FamilyTally> {
        &self.families
    }

    /// Fraction of fingerprint-cache probes that hit, or 0.0 if the cache
    /// was never probed.
    pub fn dedup_hit_rate(&self) -> f64 {
        let probes = self.dedup_hits + self.dedup_misses;
        if probes == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / probes as f64
        }
    }
}

impl Observer for StatsObserver {
    fn on_do(&mut self, ev: &DoEvent<'_>) {
        self.do_events += 1;
        if ev.op.is_update() {
            self.updates += 1;
        } else {
            self.reads += 1;
        }
    }
    fn on_send(&mut self, ev: &SendEvent) {
        self.sends += 1;
        self.message_bits.record(ev.bits as u64);
    }
    fn on_receive(&mut self, ev: &ReceiveEvent) {
        self.receives += 1;
        self.delivery_latency
            .record(ev.step.saturating_sub(ev.send_step) as u64);
    }
    fn on_drop(&mut self, _ev: &FaultEvent) {
        self.drops += 1;
    }
    fn on_duplicate(&mut self, _ev: &FaultEvent) {
        self.duplicates += 1;
    }
    fn on_partition_change(&mut self, _step: usize, _active: bool) {
        self.partition_changes += 1;
    }
    fn on_quiesce(&mut self, rounds: usize, _reached: bool) {
        self.quiesce_calls += 1;
        self.quiesce_rounds += rounds as u64;
    }
    fn on_state_sample(&mut self, _step: usize, state_bits: usize) {
        self.peak_state_bits = self.peak_state_bits.max(state_bits);
    }
    fn on_search_node(&mut self, _depth: usize, frontier: usize) {
        self.search_nodes += 1;
        self.max_frontier = self.max_frontier.max(frontier);
    }
    fn on_shrink_step(&mut self, _len: usize) {
        self.shrink_steps += 1;
    }
    fn on_dedup_lookup(&mut self, hit: bool) {
        if hit {
            self.dedup_hits += 1;
        } else {
            self.dedup_misses += 1;
        }
    }
    fn on_family_member(&mut self, family: &str, len: usize, passed: bool) {
        let tally = self
            .families
            .get_or_insert_with(family.to_owned(), FamilyTally::default);
        tally.members += 1;
        tally.pattern_total += len as u64;
        if !passed {
            tally.failures += 1;
        }
    }
}

/// Every `StatsObserver` field is either a sum, a max, or a fixed-shape
/// histogram, so the collector partitions cleanly across worker threads:
/// fork children, record disjoint event streams, join by adding counters,
/// merging histograms, and taking maxima. The result equals what one
/// collector would have recorded over the concatenated stream, regardless
/// of how the stream was partitioned.
impl ForkJoinObserver for StatsObserver {
    fn fork(&self) -> Self {
        StatsObserver::new()
    }

    fn join(&mut self, child: Self) {
        self.do_events += child.do_events;
        self.updates += child.updates;
        self.reads += child.reads;
        self.sends += child.sends;
        self.receives += child.receives;
        self.drops += child.drops;
        self.duplicates += child.duplicates;
        self.partition_changes += child.partition_changes;
        self.quiesce_calls += child.quiesce_calls;
        self.quiesce_rounds += child.quiesce_rounds;
        self.message_bits.merge(&child.message_bits);
        self.delivery_latency.merge(&child.delivery_latency);
        self.peak_state_bits = self.peak_state_bits.max(child.peak_state_bits);
        self.search_nodes += child.search_nodes;
        self.max_frontier = self.max_frontier.max(child.max_frontier);
        self.shrink_steps += child.shrink_steps;
        self.dedup_hits += child.dedup_hits;
        self.dedup_misses += child.dedup_misses;
        for (family, tally) in child.families.iter() {
            let mine = self
                .families
                .get_or_insert_with(family.clone(), FamilyTally::default);
            mine.members += tally.members;
            mine.failures += tally.failures;
            mine.pattern_total += tally.pattern_total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_model::{MsgId, ObjectId, Op, ReplicaId, ReturnValue, Value};

    #[test]
    fn counters_track_each_hook() {
        let mut s = StatsObserver::new();
        let rval = ReturnValue::Ok;
        s.on_do(&DoEvent {
            step: 0,
            replica: ReplicaId::new(0),
            obj: ObjectId::new(0),
            op: &Op::Write(Value::new(1)),
            rval: &rval,
            dot: None,
            visible: &[],
        });
        s.on_do(&DoEvent {
            step: 1,
            replica: ReplicaId::new(1),
            obj: ObjectId::new(0),
            op: &Op::Read,
            rval: &rval,
            dot: None,
            visible: &[],
        });
        s.on_send(&SendEvent {
            step: 2,
            replica: ReplicaId::new(0),
            msg: MsgId::new(0),
            bits: 40,
        });
        s.on_receive(&ReceiveEvent {
            step: 5,
            replica: ReplicaId::new(1),
            msg: MsgId::new(0),
            bits: 40,
            send_step: 2,
        });
        s.on_drop(&FaultEvent {
            step: 5,
            msg: MsgId::new(0),
            to: ReplicaId::new(2),
        });
        s.on_duplicate(&FaultEvent {
            step: 5,
            msg: MsgId::new(0),
            to: ReplicaId::new(2),
        });
        s.on_partition_change(6, true);
        s.on_quiesce(3, true);
        s.on_state_sample(7, 120);
        s.on_state_sample(8, 80);
        s.on_search_node(2, 9);
        s.on_shrink_step(4);
        s.on_dedup_lookup(true);
        s.on_dedup_lookup(true);
        s.on_dedup_lookup(false);

        assert_eq!(s.do_events(), 2);
        assert_eq!(s.updates(), 1);
        assert_eq!(s.reads(), 1);
        assert_eq!(s.sends(), 1);
        assert_eq!(s.receives(), 1);
        assert_eq!(s.drops(), 1);
        assert_eq!(s.duplicates(), 1);
        assert_eq!(s.partition_changes(), 1);
        assert_eq!(s.quiesce_calls(), 1);
        assert_eq!(s.quiesce_rounds(), 3);
        assert_eq!(s.message_bits().count(), 1);
        assert_eq!(s.message_bits().max(), Some(40));
        assert_eq!(s.delivery_latency().max(), Some(3));
        assert_eq!(s.peak_state_bits(), 120);
        assert_eq!(s.search_nodes(), 1);
        assert_eq!(s.max_frontier(), 9);
        assert_eq!(s.shrink_steps(), 1);
        assert_eq!(s.dedup_hits(), 2);
        assert_eq!(s.dedup_misses(), 1);
        assert!((s.dedup_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn join_equals_one_collector_over_the_whole_stream() {
        // Split an event stream across two forked children; the joined
        // parent must match a single collector that saw everything.
        let send = |step: usize, bits: usize| SendEvent {
            step,
            replica: ReplicaId::new(0),
            msg: MsgId::new(0),
            bits,
        };
        let mut whole = StatsObserver::new();
        let mut parent = StatsObserver::new();
        let mut a = parent.fork();
        let mut b = parent.fork();
        for (obs, half) in [(&mut a, 0..3), (&mut b, 3..7)] {
            for i in half {
                obs.on_send(&send(i, 8 * (i + 1)));
                obs.on_search_node(i, 10 - i);
                obs.on_state_sample(i, 100 * i);
                obs.on_dedup_lookup(i % 2 == 0);
            }
        }
        for i in 0..7 {
            whole.on_send(&send(i, 8 * (i + 1)));
            whole.on_search_node(i, 10 - i);
            whole.on_state_sample(i, 100 * i);
            whole.on_dedup_lookup(i % 2 == 0);
        }
        a.on_family_member("cwp", 3, true);
        a.on_family_member("cwp", 4, false);
        b.on_family_member("cwp", 5, true);
        b.on_family_member("hbq", 10, true);
        for (fam, len, passed) in [
            ("cwp", 3, true),
            ("cwp", 4, false),
            ("cwp", 5, true),
            ("hbq", 10, true),
        ] {
            whole.on_family_member(fam, len, passed);
        }
        parent.join(a);
        parent.join(b);
        assert_eq!(parent.sends(), whole.sends());
        assert_eq!(parent.families(), whole.families());
        let cwp = parent.families().get("cwp").unwrap();
        assert_eq!((cwp.members, cwp.failures, cwp.pattern_total), (3, 1, 12));
        assert_eq!(parent.message_bits(), whole.message_bits());
        assert_eq!(parent.search_nodes(), whole.search_nodes());
        assert_eq!(parent.max_frontier(), whole.max_frontier());
        assert_eq!(parent.peak_state_bits(), whole.peak_state_bits());
        assert_eq!(parent.dedup_hits(), whole.dedup_hits());
        assert_eq!(parent.dedup_misses(), whole.dedup_misses());
    }
}
