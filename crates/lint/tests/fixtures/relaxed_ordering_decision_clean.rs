//! Non-firing: the same decision over a SeqCst load — every thread
//! agrees on the order of updates, so the choice is reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};

fn best_so_far(cell: &AtomicUsize) -> usize {
    cell.load(Ordering::SeqCst)
}

pub fn explore(cell: &AtomicUsize, candidate: usize) -> usize {
    candidate.min(best_so_far(cell))
}
