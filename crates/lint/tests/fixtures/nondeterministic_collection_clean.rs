//! Non-firing: ordered std collections and the sanctioned det wrappers.

use haec_core::det::{DetMap, DetSet};
use std::collections::{BTreeMap, BTreeSet};

fn build() -> usize {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    let d: DetMap<u32, u32> = DetMap::new();
    let s = BTreeSet::<u32>::new();
    let e = DetSet::<u32>::new();
    m.len() + d.len() + s.len() + e.len()
}
