//! E7 / §6: cost of the Theorem 12 sweep as the replica count grows — the
//! vector-clock store's O(n·lg k) message regime.

use haec_stores::DvvMvrStore;
use haec_testkit::Bench;
use haec_theory::lower_bound::sweep;
use haec_theory::Thm12Config;
use std::hint::black_box;

fn main() {
    let mut bench = Bench::from_args("message_growth_with_n");
    for &n in &[4usize, 8, 16] {
        let cfg = Thm12Config {
            n_replicas: n,
            n_objects: 16,
            k: 64,
        };
        bench.bench(&format!("sweep/{n}"), || {
            let row = sweep(&DvvMvrStore, black_box(&cfg), 1, 5);
            assert!(row.max_bits as f64 >= row.bound_bits);
            black_box(row.max_bits)
        });
    }
    bench.finish();
}
