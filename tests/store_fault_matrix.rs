//! Store × fault conformance matrix: every concrete store driven through
//! drop / duplicate / partition schedules from the testkit PRNG, with
//! convergence and spec compliance asserted after quiescence.
//!
//! Fault semantics follow the paper's model. Duplicates and partitions
//! are *delays* — Definition 3's sufficient connectivity still holds, so
//! quiescent runs must converge and comply. Drops genuinely lose
//! messages (outside Definition 3), so dropped-message runs assert only
//! safety of the witness (correctness/causality of what was actually
//! delivered), not convergence.

use haec::model::EventKind;
use haec::prelude::*;
use haec::stores::{conformance_matrix as matrix, Conformance};
use haec_sim::check_quiescent_agreement;
use haec_sim::scenario::{
    concurrent_write_pair, dup_storm, explore_family, heal_before_quiesce, FamilyConfig, Scenario,
};

/// The three fault schedules; drops forfeit the convergence guarantee.
fn fault_schedules(steps: usize) -> Vec<(&'static str, ScheduleConfig, bool)> {
    let base = ScheduleConfig {
        steps,
        drop_prob: 0.0,
        dup_prob: 0.0,
        quiesce_at_end: false, // check_quiescent_agreement drives quiescence
        ..ScheduleConfig::default()
    };
    vec![
        (
            "drop",
            ScheduleConfig {
                drop_prob: 0.2,
                ..base.clone()
            },
            false,
        ),
        (
            "duplicate",
            ScheduleConfig {
                dup_prob: 0.5,
                ..base.clone()
            },
            true,
        ),
        (
            "partition",
            ScheduleConfig {
                partition: Some(Partition {
                    from_step: 0,
                    to_step: 2 * steps / 3,
                    group: vec![0],
                }),
                ..base
            },
            true,
        ),
    ]
}

fn check_compliance(sim: &Simulator, conf: &Conformance, label: &str) {
    let a = if conf.arbitrated {
        sim.abstract_execution_arbitrated()
    } else {
        sim.abstract_execution()
    };
    let a = a.unwrap_or_else(|e| panic!("{label}: witness failed to resolve: {e:?}"));
    if conf.correct {
        let specs = ObjectSpecs::uniform(conf.spec);
        assert!(
            check_correct(&a, &specs).is_ok(),
            "{label}: witness violates the {:?} spec: {}",
            conf.spec,
            a.display()
        );
    }
    if conf.causal {
        assert!(
            causal::check(&a).is_ok(),
            "{label}: witness violates causal consistency: {}",
            a.display()
        );
    }
}

#[test]
fn store_fault_conformance_matrix() {
    let steps = 180;
    for (factory, conf) in matrix() {
        for (fault, sched, expect_convergence) in fault_schedules(steps) {
            for seed in 0..3u64 {
                let label = format!("{} × {fault} (seed {seed})", factory.name());
                let mut sim = Simulator::new(factory.as_ref(), StoreConfig::new(3, 2));
                let mut wl = Workload::new(conf.spec, 3, 2, 0.3, KeyDistribution::Uniform);
                run_schedule(&mut sim, &mut wl, &sched, seed);
                if expect_convergence {
                    assert!(
                        check_quiescent_agreement(&mut sim).is_ok(),
                        "{label}: replicas disagree after quiescence"
                    );
                }
                check_compliance(&sim, &conf, &label);
            }
        }
    }
}

/// The same verdict logic as `check_compliance`, as a boolean for
/// family sweeps.
fn conformance_check(conf: Conformance) -> impl FnMut(&Simulator) -> bool {
    move |sim| {
        let a = if conf.arbitrated {
            sim.abstract_execution_arbitrated()
        } else {
            sim.abstract_execution()
        };
        let Ok(a) = a else { return false };
        (!conf.correct || check_correct(&a, &ObjectSpecs::uniform(conf.spec)).is_ok())
            && (!conf.causal || causal::check(&a).is_ok())
    }
}

#[test]
fn scenario_families_classify_per_store() {
    // Three named scenario families swept across the seven matrix stores,
    // with two classifications pinned per (store, family): compliance with
    // the store's own conformance contract (everything passes — the
    // families stay inside each store's guarantees), and strict
    // Definition 12 causality, where heal-before-quiesce separates the
    // causal stores from LWW exactly: the causally-later write reaches the
    // healed replica first and is read before quiescence, which only a
    // buffering (causal) store survives.
    let config = FamilyConfig::default();
    for (factory, conf) in matrix() {
        let families: Vec<(&str, Scenario)> = vec![
            ("concurrent-write-pair", concurrent_write_pair(conf.spec, 3)),
            ("heal-before-quiesce", heal_before_quiesce(conf.spec)),
            ("dup-storm", dup_storm(conf.spec)),
        ];
        for (name, family) in &families {
            let report = explore_family(
                factory.as_ref(),
                &config,
                name,
                family,
                &mut conformance_check(conf),
            );
            assert!(
                report.all_passed(),
                "{} × {name}: {} of {} members violate the conformance contract (first: {:?})",
                factory.name(),
                report.failures,
                report.run,
                report.counterexample
            );

            let strict = explore_family(
                factory.as_ref(),
                &config,
                name,
                family,
                &mut |sim: &Simulator| {
                    sim.abstract_execution()
                        .map(|a| causal::check(&a).is_ok())
                        .unwrap_or(false)
                },
            );
            let expect_violation = *name == "heal-before-quiesce" && !conf.causal;
            assert_eq!(
                !strict.all_passed(),
                expect_violation,
                "{} × {name}: strict causal classification drifted ({} failures of {} members)",
                factory.name(),
                strict.failures,
                strict.run
            );
        }
    }
}

#[test]
fn duplicates_never_double_apply() {
    // Focused variant of the matrix: a counter under heavy duplication
    // must still count each increment exactly once everywhere.
    for seed in 0..5u64 {
        let mut sim = Simulator::new(&CounterStore, StoreConfig::new(3, 1));
        let mut wl = Workload::new(SpecKind::Counter, 3, 1, 0.0, KeyDistribution::Uniform);
        let sched = ScheduleConfig {
            steps: 120,
            drop_prob: 0.0,
            dup_prob: 0.8,
            ..ScheduleConfig::default()
        };
        run_schedule(&mut sim, &mut wl, &sched, seed);
        let incs = sim
            .execution()
            .do_events()
            .iter()
            .filter(|&&e| {
                matches!(
                    sim.execution().event(e).kind,
                    EventKind::Do { op: Op::Inc, .. }
                )
            })
            .count();
        let expected = ReturnValue::values([Value::new(incs as u64)]);
        let x = ObjectId::new(0);
        for r in 0..3 {
            assert_eq!(
                sim.read(ReplicaId::new(r), x),
                expected,
                "seed {seed}: replica {r} miscounted under duplication"
            );
        }
    }
}

#[test]
fn partition_heals_to_agreement_for_every_causal_store() {
    // Long partition, then healing: Definition 3's sufficient
    // connectivity is restored, so every causal store converges.
    for (factory, conf) in matrix() {
        let mut sim = Simulator::new(factory.as_ref(), StoreConfig::new(3, 2));
        let mut wl = Workload::new(conf.spec, 3, 2, 0.3, KeyDistribution::Uniform);
        let sched = ScheduleConfig {
            steps: 200,
            drop_prob: 0.0,
            quiesce_at_end: false,
            partition: Some(Partition {
                from_step: 0,
                to_step: 200,
                group: vec![0, 1],
            }),
            ..ScheduleConfig::default()
        };
        run_schedule(&mut sim, &mut wl, &sched, 13);
        assert!(
            check_quiescent_agreement(&mut sim).is_ok(),
            "{}: disagreement after partition heal",
            factory.name()
        );
    }
}
