//! Deterministic parallel schedule exploration.
//!
//! [`explore_all_parallel`] shards the DFS schedule tree of the sequential
//! explorer across a fixed worker pool. Determinism comes from structure,
//! not timing:
//!
//! 1. **Split.** A sequential *prefix walk* enumerates the tree down to a
//!    configurable `split_depth`, producing (a) the prefix nodes the
//!    sequential engine would visit, in its exact pre-order, and (b) one
//!    **work unit** per depth-`split_depth` subtree root: the action
//!    prefix, a [`SimSnapshot`](crate::simulator::SimSnapshot) of the
//!    simulator state there, and the frontier offset the sequential engine
//!    would carry into that subtree. The partition is a pure function of
//!    the config — no thread count, no clocks.
//! 2. **Explore.** Workers drain the unit list **level by level**: units
//!    are chunked in canonical order into levels of
//!    [`ParallelConfig::level_width`], one `thread::scope` per level. Each
//!    unit is explored by the *same* incremental DFS as the sequential
//!    engine, on a private [`Simulator`](crate::simulator::Simulator)
//!    rebuilt from the snapshot, with a private memo table, a forked
//!    ([`ForkJoinObserver::fork`]) observer — and, with dedup on, a
//!    **shared cross-unit dedup table** ([`SharedTable`]) that workers
//!    probe *read-only*. Between levels the orchestrator publishes every
//!    completed unit's memo entries into the shared table, in canonical
//!    unit order with first-write-wins collisions, so the table a level
//!    reads is a pure function of the config — never of worker timing.
//! 3. **Merge.** Worker results are folded in **canonical subtree order**
//!    (the order the sequential DFS visits the units), never completion
//!    order: schedule counts accumulate, the first counterexample in
//!    canonical order wins, buffered prefix-node events and forked
//!    observers replay into the caller's observer exactly where the
//!    sequential engine would have produced them.
//!
//! With dedup off the resulting [`ExhaustiveReport`] and observer state are
//! bit-identical to [`explore_all`](super::explore_all) for every thread
//! count — the differential suite and `tests/determinism.rs` pin this.
//! With dedup **on**, schedule counts and counterexamples still match the
//! sequential engine exactly (memoisation never changes either), and the
//! hit/miss *statistics* are **thread-invariant** too: a unit's probes see
//! exactly its private memo plus the entries published at the level
//! barriers before it ran, both pure functions of the config and split
//! depth. (They can differ from the *sequential* engine's statistics —
//! the level structure scores cross-unit hits the sequential table would
//! score within one walk and vice versa; `split_depth = 0` degenerates to
//! one unit, an empty shared table, and exact sequential semantics
//! including statistics. `tests/determinism.rs` pins the run-report JSON,
//! dedup counters included, byte-identical across thread counts.)
//!
//! A finite [`max_schedules`](ExhaustiveConfig::max_schedules) cap is
//! honoured at merge time with unit granularity: the reported count is
//! exact with dedup off, while the observer may see the remainder of the
//! unit the cap landed in (workers cannot know the global budget without
//! sharing mutable state). Counterexamples compare against the remaining
//! budget so a failure the sequential engine would not have reached is not
//! reported.
//!
//! This module is the one place in the workspace allowed to use
//! `std::thread` — see `thread_exempt` in `haec-lint` and DESIGN.md §9 for
//! the policy rationale.

use super::{
    apply, child_sleep, children, inflight_fingerprint, reduce_children, touched_by, Action, Dfs,
    ExhaustiveConfig, ExhaustiveReport, SleepKey, Symmetry,
};
use crate::obs::{ForkJoinObserver, Observer};
use crate::scenario::{FamilyConfig, FamilyReport, Scenario};
use crate::simulator::{SimSnapshot, Simulator};
use haec_core::det::DetMap;
use haec_model::{ReplicaId, StoreFactory};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parameters of the parallel exploration, on top of an
/// [`ExhaustiveConfig`].
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Number of worker threads. Clamped to the number of work units (and
    /// to at least 1). Must be nonzero. The *results* are identical for
    /// every value; only wall-clock time changes.
    pub threads: usize,
    /// Prefix depth at which the schedule tree is split into work units:
    /// `Some(d)` shards at depth `d` (clamped to the exploration depth),
    /// `Some(0)` yields a single unit rooted at the empty schedule
    /// (sequential semantics, including dedup statistics, on one worker),
    /// and `None` picks `min(2, depth - 1)` — a few hundred units for
    /// typical configs, enough to load-balance without snapshot overhead
    /// dominating.
    pub split_depth: Option<usize>,
    /// Number of work units per publication level (see the module docs):
    /// the shared dedup table gains the memo entries of levels `< L`
    /// before any unit of level `L` runs. Smaller levels publish sooner
    /// (more cross-unit hits) at the cost of more barriers; the value
    /// changes dedup *statistics* (deterministically) but never counts,
    /// counterexamples, or observer streams. Must be nonzero. Irrelevant
    /// with dedup off.
    pub level_width: usize,
}

/// The default number of work units per shared-table publication level.
pub const DEFAULT_LEVEL_WIDTH: usize = 64;

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 1,
            split_depth: None,
            level_width: DEFAULT_LEVEL_WIDTH,
        }
    }
}

impl ParallelConfig {
    /// `threads` workers with the automatic split depth.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..ParallelConfig::default()
        }
    }

    /// The effective split depth for an exploration of `depth` steps.
    fn split_for(&self, depth: usize) -> usize {
        self.split_depth
            .unwrap_or_else(|| depth.saturating_sub(1).min(2))
            .min(depth)
    }
}

/// The cross-unit dedup table: a fixed-capacity, open-addressed hash map
/// from `(fingerprint, remaining depth)` to the memoised subtree schedule
/// count. Reads are lock-free and wait-free (a bounded linear probe over
/// atomics); writes happen only at level barriers, from the single
/// orchestrator thread, in canonical unit order with first-write-wins
/// collision policy and a bounded probe neighbourhood (a full
/// neighbourhood deterministically drops the entry). Key 0 marks an empty
/// slot; the slot key is a nonzero hash of the pair, so distinct pairs
/// colliding on all 64 bits alias — the same accepted risk tier as the
/// fingerprint memo itself.
pub(crate) struct SharedTable {
    keys: Vec<AtomicU64>,
    vals: Vec<AtomicU64>,
    mask: usize,
}

/// Shared-table capacity (slots). Power of two; at 16 bytes per slot the
/// table is 4 MiB — comfortably above the memo population of any in-repo
/// configuration, so drops are rare.
const SHARED_TABLE_CAP: usize = 1 << 18;
/// Bounded linear-probe length for both reads and writes.
const SHARED_PROBE_LIMIT: usize = 32;

impl SharedTable {
    fn new() -> SharedTable {
        SharedTable {
            keys: (0..SHARED_TABLE_CAP).map(|_| AtomicU64::new(0)).collect(),
            vals: (0..SHARED_TABLE_CAP).map(|_| AtomicU64::new(0)).collect(),
            mask: SHARED_TABLE_CAP - 1,
        }
    }

    /// Nonzero slot key of a `(fingerprint, remaining)` pair.
    fn slot_key(fp: u64, remaining: usize) -> u64 {
        let mut h = DefaultHasher::new();
        fp.hash(&mut h);
        remaining.hash(&mut h);
        h.finish().max(1)
    }

    /// Looks up a memoised subtree count. Workers call this concurrently;
    /// SeqCst loads because the outcome decides reported dedup counters
    /// and schedule credits (see `relaxed-ordering-decision` in haec-lint).
    /// Publication is level-barriered, so everything visible here was
    /// written before this worker's level began.
    pub(crate) fn get(&self, fp: u64, remaining: usize) -> Option<u64> {
        let k = Self::slot_key(fp, remaining);
        let mut i = (k as usize) & self.mask;
        for _ in 0..SHARED_PROBE_LIMIT {
            let cur = self.keys[i].load(Ordering::SeqCst);
            if cur == 0 {
                return None;
            }
            if cur == k {
                return Some(self.vals[i].load(Ordering::SeqCst));
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Publishes one entry. Only the orchestrator calls this, strictly
    /// between worker levels, in canonical order — first write wins, and
    /// a full probe neighbourhood drops the entry (deterministically,
    /// since publication order is deterministic). The value is stored
    /// before the key so a slot whose key is visible always carries its
    /// count.
    fn put(&self, fp: u64, remaining: usize, count: u64) {
        let k = Self::slot_key(fp, remaining);
        let mut i = (k as usize) & self.mask;
        for _ in 0..SHARED_PROBE_LIMIT {
            let cur = self.keys[i].load(Ordering::SeqCst);
            if cur == 0 {
                self.vals[i].store(count, Ordering::SeqCst);
                self.keys[i].store(k, Ordering::SeqCst);
                return;
            }
            if cur == k {
                return;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// One shard of the schedule tree: the subtree rooted at `prefix`.
struct Unit {
    prefix: Vec<Action>,
    snap: SimSnapshot,
    /// The sequential engine's frontier (queued-but-unvisited prefixes)
    /// the moment it would visit this subtree's root. Workers start their
    /// frontier counter here so every `on_search_node` frontier value
    /// matches the sequential engine's global counter exactly.
    offset: usize,
    /// The sleep set the sequential engine would carry into this subtree
    /// (sorted; empty with POR off). Message ids stay valid because the
    /// snapshot preserves the transcript they index.
    sleep: Vec<SleepKey>,
}

/// What the prefix walk buffers, in the sequential engine's pre-order.
enum Item {
    /// A prefix node the sequential engine visits itself (depth <
    /// split): its observer event, and the schedule prefix if the
    /// predicate failed there.
    Node {
        depth: usize,
        frontier: usize,
        cex: Option<Vec<Action>>,
    },
    /// The subtree of `units[i]`, explored by a worker.
    Unit(usize),
}

/// The result of exploring one unit's subtree to exhaustion (or to its
/// first counterexample).
struct UnitResult<O> {
    schedules: usize,
    counterexample: Option<Vec<Action>>,
    hits: u64,
    misses: u64,
    /// The unit's private memo entries `(fingerprint, remaining, count)`,
    /// in deterministic (BTree) key order — the orchestrator publishes
    /// these into the shared table at the next level barrier.
    inserts: Vec<(u64, usize, u64)>,
    obs: O,
}

/// Per-unit slot: workers take the work (unit + forked observer) and leave
/// the result. One mutex per slot — never contended beyond the take/store
/// pair.
struct Slot<O> {
    work: Option<(Unit, O)>,
    result: Option<UnitResult<O>>,
}

/// Sequential enumeration of the tree down to the split depth. Mirrors
/// `Dfs::visit` (same canonical child order, same uniquification, same
/// frontier accounting) but buffers observer events instead of emitting
/// them, so the merge can stop replaying exactly where the sequential
/// engine would have stopped.
struct PrefixWalk<'a> {
    config: &'a ExhaustiveConfig,
    check: &'a (dyn Fn(&Simulator) -> bool + Sync),
    split: usize,
    queued: usize,
    items: Vec<Item>,
    units: Vec<Unit>,
    stopped: bool,
}

impl PrefixWalk<'_> {
    fn visit(&mut self, sim: &mut Simulator, prefix: &mut Vec<Action>, sleep: &[SleepKey]) {
        self.queued -= 1;
        let failed = !(self.check)(sim);
        self.items.push(Item::Node {
            depth: prefix.len(),
            frontier: self.queued,
            cex: failed.then(|| prefix.clone()),
        });
        if failed {
            self.stopped = true;
            return;
        }
        let mut children = children(self.config, sim);
        // Same POR reduction as `Dfs::visit`, so the partition shards the
        // same (reduced) canonical tree the sequential engine walks.
        let keys = reduce_children(self.config, sim, &mut children, sleep);
        self.queued += children.len();
        let mut done_keys: Vec<SleepKey> = Vec::new();
        for (ci, action) in children.into_iter().enumerate() {
            if self.stopped {
                return;
            }
            let next_sleep: Vec<SleepKey> = if self.config.por {
                child_sleep(sleep, &done_keys, keys[ci])
            } else {
                Vec::new()
            };
            let (touched, saves_inflight) = touched_by(sim, &action);
            let undo = sim.begin_step(touched, saves_inflight);
            apply(sim, &action, prefix.len());
            prefix.push(action);
            if prefix.len() == self.split {
                // Subtree root: snapshot it into a work unit instead of
                // descending. The sequential engine nets the frontier back
                // to `queued - 1` once it finishes this subtree, so that is
                // both the unit's offset and the walk's continuation value.
                self.queued -= 1;
                self.units.push(Unit {
                    prefix: prefix.clone(),
                    snap: sim.snapshot(),
                    offset: self.queued,
                    sleep: next_sleep,
                });
                self.items.push(Item::Unit(self.units.len() - 1));
            } else {
                self.visit(sim, prefix, &next_sleep);
            }
            prefix.pop();
            sim.undo_step(undo);
            if self.config.por {
                done_keys.push(keys[ci]);
            }
        }
    }
}

/// Explores one unit's subtree with the sequential engine's incremental
/// DFS: private simulator from the snapshot, fresh dedup table (backed
/// read-only by the shared table), forked observer, frontier counter
/// primed with the unit's offset.
fn explore_unit<O: ForkJoinObserver>(
    factory: &dyn StoreFactory,
    config: &ExhaustiveConfig,
    check: &(dyn Fn(&Simulator) -> bool + Sync),
    table: Option<&SharedTable>,
    unit: Unit,
    mut obs: O,
) -> UnitResult<O> {
    let mut sim = Simulator::from_snapshot(factory, config.store_config, &unit.snap);
    let fps = (0..config.store_config.n_replicas)
        .map(|r| sim.machine(ReplicaId::new(r as u32)).state_fingerprint())
        .collect();
    let inflight_fp = inflight_fingerprint(&sim);
    let sym = if config.symmetry {
        Symmetry::try_new(&sim, config)
    } else {
        None
    };
    let mut local_check = |sim: &Simulator| check(sim);
    let mut dfs = Dfs {
        config,
        check: &mut local_check,
        obs: &mut obs,
        schedules: 0,
        counterexample: None,
        prefix: unit.prefix,
        queued: unit.offset + 1,
        memo: DetMap::new(),
        fps,
        inflight_fp,
        sym,
        shared: table,
        trace: None,
        hits: 0,
        misses: 0,
        done: false,
    };
    dfs.visit(&mut sim, &unit.sleep);
    let schedules = dfs.schedules;
    let counterexample = dfs.counterexample.take();
    let hits = dfs.hits;
    let misses = dfs.misses;
    let inserts = dfs
        .memo
        .iter()
        .map(|(&(fp, rem), &count)| (fp, rem, count as u64))
        .collect();
    UnitResult {
        schedules,
        counterexample,
        hits,
        misses,
        inserts,
        obs,
    }
}

/// Worker loop over one publication level `[start, end)`: claim the next
/// unclaimed unit of the level, explore it, store the result. Units
/// canonically after a unit already known to hold a counterexample are
/// skipped — the cex also stops the level loop before the next
/// publication, so neither the merge nor a later level can observe the
/// skip (or the timing-dependent set of in-level inserts it suppresses).
#[allow(clippy::too_many_arguments)]
fn worker_loop<O: ForkJoinObserver>(
    factory: &dyn StoreFactory,
    config: &ExhaustiveConfig,
    check: &(dyn Fn(&Simulator) -> bool + Sync),
    table: Option<&SharedTable>,
    slots: &[Mutex<Slot<O>>],
    next: &AtomicUsize,
    end: usize,
    earliest_cex: &AtomicUsize,
) {
    loop {
        // SeqCst throughout: these atomics decide which units are skipped
        // and which counterexample cancels the sweep. The canonical-order
        // merge makes the *results* thread-invariant either way, but the
        // determinism gate (relaxed-ordering-decision) insists decision
        // inputs are totally ordered rather than argued about.
        let i = next.fetch_add(1, Ordering::SeqCst);
        if i >= end {
            return;
        }
        if earliest_cex.load(Ordering::SeqCst) < i {
            continue;
        }
        let (unit, obs) = slots[i]
            .lock()
            .expect("worker poisoned a unit slot")
            .work
            .take()
            .expect("unit claimed twice");
        let result = explore_unit(factory, config, check, table, unit, obs);
        if result.counterexample.is_some() {
            earliest_cex.fetch_min(i, Ordering::SeqCst);
        }
        slots[i].lock().expect("worker poisoned a unit slot").result = Some(result);
    }
}

/// Like [`explore_all`](super::explore_all), but shards the schedule tree
/// across `par.threads` worker threads. The report is bit-identical to the
/// sequential engine for every thread count (see the module docs for the
/// exact dedup-statistics contract).
///
/// Unlike the sequential entry points the predicate is `Fn + Sync`: it is
/// evaluated concurrently from worker threads.
///
/// # Panics
///
/// Panics if `config` fails [`ExhaustiveConfig::validate`] or
/// `par.threads` is zero.
pub fn explore_all_parallel(
    factory: &dyn StoreFactory,
    config: &ExhaustiveConfig,
    par: &ParallelConfig,
    check: &(dyn Fn(&Simulator) -> bool + Sync),
) -> ExhaustiveReport {
    /// Discards every event; `fork` and `join` are trivially sound.
    struct NullObserver;
    impl Observer for NullObserver {}
    impl ForkJoinObserver for NullObserver {
        fn fork(&self) -> Self {
            NullObserver
        }
        fn join(&mut self, _child: Self) {}
    }
    explore_all_parallel_observed(factory, config, par, check, &mut NullObserver)
}

/// Like [`explore_all_parallel`], but replays search progress into `obs`
/// exactly as [`explore_all_observed`](super::explore_all_observed) would:
/// prefix-node events in canonical pre-order, each unit's events as one
/// [`ForkJoinObserver::join`] at the unit's canonical position.
///
/// # Panics
///
/// Panics if `config` fails [`ExhaustiveConfig::validate`] or
/// `par.threads` is zero.
pub fn explore_all_parallel_observed<O: ForkJoinObserver + Send>(
    factory: &dyn StoreFactory,
    config: &ExhaustiveConfig,
    par: &ParallelConfig,
    check: &(dyn Fn(&Simulator) -> bool + Sync),
    obs: &mut O,
) -> ExhaustiveReport {
    config.validate().expect("invalid ExhaustiveConfig");
    assert!(par.threads > 0, "ParallelConfig::threads must be nonzero");
    assert!(
        par.level_width > 0,
        "ParallelConfig::level_width must be nonzero"
    );
    let split = par.split_for(config.depth);

    // Phase 1: canonical partition of the tree into prefix items and work
    // units. Pure function of `config` and `split`.
    let mut walk = PrefixWalk {
        config,
        check,
        split,
        queued: 1,
        items: Vec::new(),
        units: Vec::new(),
        stopped: false,
    };
    let mut sim = Simulator::new(factory, config.store_config);
    if split == 0 {
        walk.queued -= 1;
        walk.units.push(Unit {
            prefix: Vec::new(),
            snap: sim.snapshot(),
            offset: walk.queued,
            sleep: Vec::new(),
        });
        walk.items.push(Item::Unit(0));
    } else {
        let mut prefix = Vec::new();
        walk.visit(&mut sim, &mut prefix, &[]);
    }
    drop(sim);

    // Phase 2: explore the units on a fixed worker pool. Workers own their
    // unit's state outright; the only shared mutation is claiming work and
    // depositing results, so timing cannot reach the data.
    let slots: Vec<Mutex<Slot<O>>> = walk
        .units
        .drain(..)
        .map(|unit| {
            Mutex::new(Slot {
                work: Some((unit, obs.fork())),
                result: None,
            })
        })
        .collect();
    // Workers are uncapped: the global schedule budget is applied at merge
    // time, where canonical order makes it deterministic.
    let worker_config = ExhaustiveConfig {
        max_schedules: usize::MAX,
        ..config.clone()
    };
    let table = config.dedup.then(SharedTable::new);
    let earliest_cex = AtomicUsize::new(usize::MAX);
    let mut start = 0usize;
    while start < slots.len() {
        let end = (start + par.level_width).min(slots.len());
        let next = AtomicUsize::new(start);
        let threads = par.threads.min(end - start).max(1);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    worker_loop(
                        factory,
                        &worker_config,
                        check,
                        table.as_ref(),
                        &slots,
                        &next,
                        end,
                        &earliest_cex,
                    )
                });
            }
        });
        // A counterexample anywhere before the next level makes every
        // later unit unreachable by the canonical merge — stop without
        // publishing this level's (possibly skip-truncated) memo entries,
        // so the shared table never depends on in-level timing.
        if earliest_cex.load(Ordering::SeqCst) < end {
            break;
        }
        if let Some(table) = &table {
            for slot in &slots[start..end] {
                let slot = slot.lock().expect("worker poisoned a unit slot");
                let result = slot
                    .result
                    .as_ref()
                    .expect("level barrier reached an unexplored unit");
                for &(fp, rem, count) in &result.inserts {
                    table.put(fp, rem, count);
                }
            }
        }
        start = end;
    }

    // Phase 3: canonical-order merge. Replays the exact accounting of the
    // sequential engine over buffered prefix nodes and whole units.
    let mut schedules = 0usize;
    let mut counterexample: Option<Vec<Action>> = None;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for item in walk.items {
        if schedules >= config.max_schedules || counterexample.is_some() {
            break;
        }
        match item {
            Item::Node {
                depth,
                frontier,
                cex,
            } => {
                obs.on_search_node(depth, frontier);
                schedules += 1;
                if cex.is_some() {
                    counterexample = cex;
                }
            }
            Item::Unit(i) => {
                let result = slots[i]
                    .lock()
                    .expect("worker poisoned a unit slot")
                    .result
                    .take()
                    .expect("canonical merge reached an unexplored unit");
                let budget = config.max_schedules - schedules;
                if result.schedules >= budget {
                    // The cap lands inside this unit. A counterexample
                    // counts only if the sequential engine would still
                    // have reached it: its in-unit position is the unit's
                    // schedule count (the DFS stops at the failure).
                    if result.counterexample.is_some() && result.schedules == budget {
                        counterexample = result.counterexample;
                        schedules += result.schedules;
                    } else if config.dedup {
                        // Whole-subtree credits already overshoot the cap
                        // in the sequential engine; unit granularity is
                        // the parallel analogue.
                        schedules += result.schedules;
                    } else {
                        schedules = config.max_schedules;
                    }
                } else {
                    schedules += result.schedules;
                    counterexample = result.counterexample;
                }
                hits += result.hits;
                misses += result.misses;
                obs.join(result.obs);
            }
        }
    }
    ExhaustiveReport {
        schedules,
        counterexample,
        dedup_hits: hits,
        dedup_misses: misses,
    }
}

/// Parallel twin of [`explore_family`](crate::scenario::explore_family):
/// the members to run are a pure function of `(scenario, config)`, each
/// member's verdict is computed on a private simulator, and the sweep has
/// no early exit — so sharding members across `threads` workers changes
/// nothing observable. The report (including
/// [`cap_hit`](crate::scenario::FamilyReport::cap_hit) accounting and the
/// canonical-first counterexample) is bit-identical for every thread
/// count.
///
/// # Panics
///
/// Panics if `config` fails
/// [`FamilyConfig::validate`](crate::scenario::FamilyConfig::validate) or
/// `threads` is zero.
pub fn explore_family_parallel(
    factory: &dyn StoreFactory,
    config: &FamilyConfig,
    threads: usize,
    name: &str,
    scenario: &Scenario,
    check: &(dyn Fn(&Simulator) -> bool + Sync),
) -> FamilyReport {
    struct NullObserver;
    impl Observer for NullObserver {}
    explore_family_parallel_observed(
        factory,
        config,
        threads,
        name,
        scenario,
        check,
        &mut NullObserver,
    )
}

/// Like [`explore_family_parallel`], but announces every member to `obs`
/// via [`Observer::on_family_member`]. Workers only compute verdicts; the
/// hooks fire on the caller's observer during the canonical-order merge,
/// so the observer sees the exact event stream of
/// [`explore_family_observed`](crate::scenario::explore_family_observed)
/// regardless of thread count.
///
/// # Panics
///
/// Panics if `config` fails
/// [`FamilyConfig::validate`](crate::scenario::FamilyConfig::validate) or
/// `threads` is zero.
pub fn explore_family_parallel_observed<O: Observer>(
    factory: &dyn StoreFactory,
    config: &FamilyConfig,
    threads: usize,
    name: &str,
    scenario: &Scenario,
    check: &(dyn Fn(&Simulator) -> bool + Sync),
    obs: &mut O,
) -> FamilyReport {
    config.validate().expect("invalid FamilyConfig");
    assert!(threads > 0, "threads must be nonzero");
    let members = scenario.iter_to_depth(config.depth);
    let enumerated = members.len();
    let run = enumerated.min(config.max_members);
    let to_run = &members[..run];

    // Phase 1: verdicts, sharded by contiguous chunk. Each worker owns its
    // simulators outright; results are collected in spawn (= canonical)
    // order, so wall-clock interleaving cannot reach them.
    let chunk = run.div_ceil(threads).max(1);
    let verdicts: Vec<bool> = std::thread::scope(|scope| {
        let handles: Vec<_> = to_run
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .map(|member| {
                            let mut sim = Simulator::new(factory, config.store_config);
                            crate::scenario::run_member(&mut sim, member);
                            check(&sim)
                        })
                        .collect::<Vec<bool>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("family worker panicked"))
            .collect()
    });

    // Phase 2: canonical-order merge — identical accounting to the
    // sequential sweep.
    let mut failures = 0;
    let mut counterexample = None;
    for (member, &passed) in to_run.iter().zip(&verdicts) {
        obs.on_family_member(name, member.len(), passed);
        if !passed {
            failures += 1;
            if counterexample.is_none() {
                counterexample = Some(member.clone());
            }
        }
    }
    FamilyReport {
        family: name.to_owned(),
        enumerated,
        run,
        cap_hit: enumerated > config.max_members,
        failures,
        counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{explore_all, explore_all_observed, ExhaustiveConfig};
    use super::*;
    use crate::obs::stats::StatsObserver;
    use haec_core::{causal, check_correct, ObjectSpecs, SpecKind};
    use haec_stores::{BoundedStore, DvvMvrStore};

    fn causal_check(sim: &Simulator) -> bool {
        let Ok(a) = sim.abstract_execution() else {
            return false;
        };
        check_correct(&a, &ObjectSpecs::uniform(SpecKind::Mvr)).is_ok() && causal::check(&a).is_ok()
    }

    fn depth_config(depth: usize) -> ExhaustiveConfig {
        ExhaustiveConfig {
            depth,
            max_schedules: usize::MAX,
            ..ExhaustiveConfig::default()
        }
    }

    #[test]
    fn parallel_report_matches_sequential_for_every_thread_count() {
        let config = depth_config(4);
        let sequential = explore_all(&DvvMvrStore, &config, &mut causal_check);
        for threads in [1, 2, 3, 8] {
            let par = explore_all_parallel(
                &DvvMvrStore,
                &config,
                &ParallelConfig::with_threads(threads),
                &causal_check,
            );
            assert_eq!(par.schedules, sequential.schedules, "threads={threads}");
            assert_eq!(par.counterexample, sequential.counterexample);
            assert_eq!(par.dedup_hits, 0);
            assert_eq!(par.dedup_misses, 0);
        }
    }

    #[test]
    fn split_zero_degenerates_to_exact_sequential_semantics() {
        // One unit rooted at the empty schedule: even the dedup statistics
        // must match the sequential engine's global table.
        let config = ExhaustiveConfig {
            dedup: true,
            ..depth_config(4)
        };
        let sequential = explore_all(&DvvMvrStore, &config, &mut causal_check);
        let par = explore_all_parallel(
            &DvvMvrStore,
            &config,
            &ParallelConfig {
                threads: 2,
                split_depth: Some(0),
                ..ParallelConfig::default()
            },
            &causal_check,
        );
        assert_eq!(par.schedules, sequential.schedules);
        assert_eq!(par.counterexample, sequential.counterexample);
        assert_eq!(par.dedup_hits, sequential.dedup_hits);
        assert_eq!(par.dedup_misses, sequential.dedup_misses);
    }

    #[test]
    fn dedup_counts_match_sequential_and_stats_are_thread_invariant() {
        let config = ExhaustiveConfig {
            dedup: true,
            ..depth_config(4)
        };
        let sequential = explore_all(&DvvMvrStore, &config, &mut causal_check);
        let baseline = explore_all_parallel(
            &DvvMvrStore,
            &config,
            &ParallelConfig::with_threads(1),
            &causal_check,
        );
        assert_eq!(baseline.schedules, sequential.schedules);
        assert_eq!(baseline.counterexample, sequential.counterexample);
        assert!(baseline.dedup_misses > 0, "units never probe their tables?");
        for threads in [2, 8] {
            let par = explore_all_parallel(
                &DvvMvrStore,
                &config,
                &ParallelConfig::with_threads(threads),
                &causal_check,
            );
            assert_eq!(par.schedules, baseline.schedules);
            assert_eq!(par.counterexample, baseline.counterexample);
            assert_eq!(par.dedup_hits, baseline.dedup_hits, "threads={threads}");
            assert_eq!(par.dedup_misses, baseline.dedup_misses);
        }
    }

    #[test]
    fn reduced_engines_match_sequential_for_every_thread_count() {
        // POR and POR+symmetry shard across the same canonical (reduced)
        // tree: schedule counts and counterexample verdicts must match the
        // sequential reduced engine at every thread count and level width.
        for (por, symmetry, dedup) in [(true, false, false), (true, true, true)] {
            let config = ExhaustiveConfig {
                por,
                symmetry,
                dedup,
                ..depth_config(4)
            };
            let sequential = explore_all(&DvvMvrStore, &config, &mut causal_check);
            for threads in [1, 2, 8] {
                for level_width in [1, 3, DEFAULT_LEVEL_WIDTH] {
                    let par = explore_all_parallel(
                        &DvvMvrStore,
                        &config,
                        &ParallelConfig {
                            threads,
                            split_depth: None,
                            level_width,
                        },
                        &causal_check,
                    );
                    assert_eq!(
                        par.schedules, sequential.schedules,
                        "por={por} symmetry={symmetry} threads={threads} width={level_width}"
                    );
                    assert_eq!(par.counterexample, sequential.counterexample);
                }
            }
        }
    }

    #[test]
    fn shared_table_stats_are_thread_invariant_per_level_width() {
        // The dedup statistics are a pure function of (config, split,
        // level_width): changing the thread count must not move a single
        // hit or miss, for narrow and wide levels alike.
        let config = ExhaustiveConfig {
            dedup: true,
            ..depth_config(4)
        };
        for level_width in [1, 2, DEFAULT_LEVEL_WIDTH] {
            let baseline = explore_all_parallel(
                &DvvMvrStore,
                &config,
                &ParallelConfig {
                    threads: 1,
                    split_depth: None,
                    level_width,
                },
                &causal_check,
            );
            for threads in [2, 8] {
                let par = explore_all_parallel(
                    &DvvMvrStore,
                    &config,
                    &ParallelConfig {
                        threads,
                        split_depth: None,
                        level_width,
                    },
                    &causal_check,
                );
                assert_eq!(par.schedules, baseline.schedules);
                assert_eq!(par.counterexample, baseline.counterexample);
                assert_eq!(
                    par.dedup_hits, baseline.dedup_hits,
                    "threads={threads} width={level_width}"
                );
                assert_eq!(par.dedup_misses, baseline.dedup_misses);
            }
        }
    }

    #[test]
    #[should_panic(expected = "level_width must be nonzero")]
    fn zero_level_width_panics() {
        explore_all_parallel(
            &DvvMvrStore,
            &ExhaustiveConfig::default(),
            &ParallelConfig {
                threads: 1,
                split_depth: None,
                level_width: 0,
            },
            &|_| true,
        );
    }

    #[test]
    fn counterexamples_agree_with_the_sequential_engine() {
        // The bounded store fails somewhere at depth 6 with 3 replicas; the
        // parallel engine must find the *same first* counterexample.
        let config = ExhaustiveConfig {
            store_config: haec_model::StoreConfig::new(3, 2),
            depth: 5,
            max_schedules: usize::MAX,
            ..ExhaustiveConfig::default()
        };
        let sequential = explore_all(&BoundedStore, &config, &mut causal_check);
        for threads in [1, 4] {
            let par = explore_all_parallel(
                &BoundedStore,
                &config,
                &ParallelConfig::with_threads(threads),
                &causal_check,
            );
            assert_eq!(par.schedules, sequential.schedules);
            assert_eq!(par.counterexample, sequential.counterexample);
        }
    }

    #[test]
    fn observer_stream_matches_sequential_exactly() {
        let config = depth_config(4);
        let mut seq_stats = StatsObserver::new();
        let seq = explore_all_observed(&DvvMvrStore, &config, &mut causal_check, &mut seq_stats);
        for threads in [1, 3] {
            let mut par_stats = StatsObserver::new();
            let par = explore_all_parallel_observed(
                &DvvMvrStore,
                &config,
                &ParallelConfig::with_threads(threads),
                &causal_check,
                &mut par_stats,
            );
            assert_eq!(par.schedules, seq.schedules);
            assert_eq!(par_stats.search_nodes(), seq_stats.search_nodes());
            assert_eq!(par_stats.max_frontier(), seq_stats.max_frontier());
            assert_eq!(par_stats.dedup_hits(), seq_stats.dedup_hits());
            assert_eq!(par_stats.dedup_misses(), seq_stats.dedup_misses());
        }
    }

    #[test]
    fn streaming_observer_state_is_thread_invariant() {
        // The streaming checker rides through the parallel explorer via
        // ForkJoinObserver: children fork empty and the canonical-order
        // merge must yield a bit-identical snapshot at every thread count.
        use crate::obs::stream::StreamObserver;

        let config = depth_config(4);
        let mut seq_obs = StreamObserver::for_replicas(2);
        let seq = explore_all_observed(&DvvMvrStore, &config, &mut causal_check, &mut seq_obs);
        let seq_snap = seq_obs.snapshot();
        for threads in [1, 2, 8] {
            let mut par_obs = StreamObserver::for_replicas(2);
            let par = explore_all_parallel_observed(
                &DvvMvrStore,
                &config,
                &ParallelConfig::with_threads(threads),
                &causal_check,
                &mut par_obs,
            );
            assert_eq!(par.schedules, seq.schedules, "threads={threads}");
            assert_eq!(par_obs.snapshot(), seq_snap, "threads={threads}");
        }
    }

    #[test]
    fn max_schedules_cap_is_exact_and_thread_invariant() {
        let config = ExhaustiveConfig {
            depth: 6,
            max_schedules: 500,
            ..ExhaustiveConfig::default()
        };
        let sequential = explore_all(&DvvMvrStore, &config, &mut |_| true);
        assert_eq!(sequential.schedules, 500);
        for threads in [1, 2, 8] {
            let par = explore_all_parallel(
                &DvvMvrStore,
                &config,
                &ParallelConfig::with_threads(threads),
                &|_| true,
            );
            assert_eq!(par.schedules, 500, "threads={threads}");
            assert_eq!(par.counterexample, None);
        }
    }

    #[test]
    fn explicit_split_depths_agree() {
        let config = depth_config(4);
        let auto = explore_all_parallel(
            &DvvMvrStore,
            &config,
            &ParallelConfig::with_threads(2),
            &causal_check,
        );
        for split in [0, 1, 2, 3, 4, 9] {
            let par = explore_all_parallel(
                &DvvMvrStore,
                &config,
                &ParallelConfig {
                    threads: 2,
                    split_depth: Some(split),
                    ..ParallelConfig::default()
                },
                &causal_check,
            );
            assert_eq!(par.schedules, auto.schedules, "split={split}");
            assert_eq!(par.counterexample, auto.counterexample);
        }
    }

    #[test]
    fn family_sweep_is_thread_invariant_including_observer_stream() {
        use crate::scenario::{explore_family_observed, heal_before_quiesce, FamilyConfig};

        let family = heal_before_quiesce(SpecKind::Mvr);
        let config = FamilyConfig::default();
        let mut seq_stats = StatsObserver::new();
        let sequential = explore_family_observed(
            &DvvMvrStore,
            &config,
            "hbq",
            &family,
            &mut causal_check,
            &mut seq_stats,
        );
        assert_eq!(sequential.run, 4);
        for threads in [1, 2, 4, 9] {
            let mut par_stats = StatsObserver::new();
            let par = explore_family_parallel_observed(
                &DvvMvrStore,
                &config,
                threads,
                "hbq",
                &family,
                &causal_check,
                &mut par_stats,
            );
            assert_eq!(par, sequential, "threads={threads}");
            assert_eq!(par_stats.families(), seq_stats.families());
        }

        // The streaming observer's family tally rides the same
        // canonical-order merge: its snapshot is thread-invariant too.
        use crate::obs::stream::StreamObserver;
        let mut seq_stream = StreamObserver::for_replicas(3);
        explore_family_observed(
            &DvvMvrStore,
            &config,
            "hbq",
            &family,
            &mut causal_check,
            &mut seq_stream,
        );
        let seq_snap = seq_stream.snapshot();
        assert_eq!(seq_snap.family_members, 4);
        for threads in [1, 2, 8] {
            let mut par_stream = StreamObserver::for_replicas(3);
            explore_family_parallel_observed(
                &DvvMvrStore,
                &config,
                threads,
                "hbq",
                &family,
                &causal_check,
                &mut par_stream,
            );
            assert_eq!(par_stream.snapshot(), seq_snap, "threads={threads}");
        }
    }

    #[test]
    fn family_cap_hit_accounting_is_exact_across_threads() {
        // Regression for the cap/family interaction: when max_members lands
        // inside the family, the enumeration prefix that runs — and the
        // cap_hit flag — are a pure function of the config, so every thread
        // count reports identical numbers (member granularity; compare the
        // unit-granularity contract of max_schedules above).
        use crate::scenario::{concurrent_write_pair, explore_family, FamilyConfig};

        let family = concurrent_write_pair(SpecKind::Mvr, 3);
        let config = FamilyConfig {
            max_members: 4,
            ..FamilyConfig::default()
        };
        let sequential = explore_family(&DvvMvrStore, &config, "cwp", &family, &mut |_| false);
        assert_eq!(sequential.enumerated, 6);
        assert_eq!(sequential.run, 4);
        assert!(sequential.cap_hit);
        assert_eq!(sequential.failures, 4, "only capped members run");
        for threads in [1, 2, 3, 8] {
            let par =
                explore_family_parallel(&DvvMvrStore, &config, threads, "cwp", &family, &|_| false);
            assert_eq!(par, sequential, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "threads must be nonzero")]
    fn family_zero_threads_panics() {
        use crate::scenario::{dup_storm, FamilyConfig};
        explore_family_parallel(
            &DvvMvrStore,
            &FamilyConfig::default(),
            0,
            "dup",
            &dup_storm(SpecKind::Mvr),
            &|_| true,
        );
    }

    #[test]
    #[should_panic(expected = "threads must be nonzero")]
    fn zero_threads_panics() {
        explore_all_parallel(
            &DvvMvrStore,
            &ExhaustiveConfig::default(),
            &ParallelConfig {
                threads: 0,
                split_depth: None,
                ..ParallelConfig::default()
            },
            &|_| true,
        );
    }
}
