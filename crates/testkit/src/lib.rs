//! # haec-testkit
//!
//! The hermetic test kit shared by every haec crate: a deterministic
//! seeded PRNG, a minimal property-testing runner with shrinking, and a
//! wall-clock micro-bench harness. No external dependencies — the whole
//! workspace builds and tests offline, and every randomized schedule or
//! generated execution is replayable from a printed `u64` seed.
//!
//! * [`rng`] — SplitMix64-seeded xoshiro256++ with the
//!   `gen_range`/`gen_bool`/`shuffle`/`choose` surface the simulator and
//!   theory generators need. Deterministic across platforms and releases:
//!   a seed printed by a failing run replays the identical sequence
//!   forever.
//! * [`prop`] — a generator trait, integer/vec/tuple/bool generators,
//!   greedy shrinking, and failure-seed reporting
//!   (`HAEC_PROP_SEED=<seed> HAEC_PROP_CASES=1` replays a reported
//!   counterexample exactly).
//! * [`bench`] — warmup + N timed batches, median/p95/min/mean summary,
//!   optional JSON output (`--json`), for `harness = false` bench
//!   binaries driven by plain `cargo bench`.
//!
//! ## Example
//!
//! ```
//! use haec_testkit::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let roll = rng.gen_range(0u32..6);
//! assert!(roll < 6);
//! // Same seed, same sequence — always.
//! assert_eq!(Rng::seed_from_u64(42).gen_range(0u32..6), roll);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod prop;
pub mod rng;

pub use bench::Bench;
pub use prop::{check, check_with, Config, Gen};
pub use rng::Rng;
