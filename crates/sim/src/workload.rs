//! Workload generation: which client invokes which operation on which
//! object.

use haec_core::SpecKind;
use haec_model::{ObjectId, Op, ReplicaId, Value};
use haec_testkit::Rng;

/// Distribution of operations over objects.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum KeyDistribution {
    /// Every object equally likely.
    Uniform,
    /// Zipf-like skew with the given exponent (typical: 0.8–1.2): object
    /// ranks are weighted `1/(rank+1)^theta`.
    Zipf {
        /// The skew exponent.
        theta: f64,
    },
}

/// Fixed-point scale for key weights: weights are stored as integers so
/// object sampling is a single unbiased bounded draw over the cumulative
/// total — no floating-point cumulative sums, whose rounding skews the
/// bin boundaries, and no modulo bias (see [`Rng::bounded`]).
const WEIGHT_SCALE: f64 = (1u64 << 32) as f64;

/// A seeded generator of client operations for one object family.
#[derive(Clone, Debug)]
pub struct Workload {
    spec: SpecKind,
    n_replicas: usize,
    n_objects: usize,
    read_ratio: f64,
    keys: KeyDistribution,
    /// Cumulative integer weights for key sampling: object `i` owns the
    /// half-open weight interval `[cumulative[i-1], cumulative[i])`.
    cumulative: Vec<u64>,
    next_value: u64,
    /// Small pool of values for add/remove workloads.
    element_pool: u64,
}

impl Workload {
    /// Creates a workload for `spec`-typed objects.
    ///
    /// # Panics
    ///
    /// Panics if `read_ratio` is not within `[0, 1]` or a count is zero.
    pub fn new(
        spec: SpecKind,
        n_replicas: usize,
        n_objects: usize,
        read_ratio: f64,
        keys: KeyDistribution,
    ) -> Self {
        assert!((0.0..=1.0).contains(&read_ratio), "read_ratio in [0,1]");
        assert!(n_replicas > 0 && n_objects > 0, "counts must be positive");
        let mut cumulative = Vec::with_capacity(n_objects);
        let mut acc = 0u64;
        for rank in 0..n_objects {
            let w = match keys {
                KeyDistribution::Uniform => 1,
                // Quantized to 32 fractional bits; every object keeps at
                // least weight 1 so no key becomes unreachable.
                KeyDistribution::Zipf { theta } => {
                    ((WEIGHT_SCALE / ((rank as f64) + 1.0).powf(theta)).round() as u64).max(1)
                }
            };
            acc += w;
            cumulative.push(acc);
        }
        Workload {
            spec,
            n_replicas,
            n_objects,
            read_ratio,
            keys,
            cumulative,
            next_value: 0,
            element_pool: 8,
        }
    }

    /// The key distribution in use.
    pub fn key_distribution(&self) -> KeyDistribution {
        self.keys
    }

    /// Number of objects in the keyspace.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Samples an object id: an unbiased bounded draw over the cumulative
    /// integer weights, then a binary search for the owning interval.
    pub fn sample_object(&self, rng: &mut Rng) -> ObjectId {
        let total = *self.cumulative.last().expect("nonempty");
        let p = rng.bounded(total);
        let ix = self.cumulative.partition_point(|&c| c <= p);
        ObjectId::new(ix as u32)
    }

    /// Samples a replica id uniformly (unbiased).
    pub fn sample_replica(&self, rng: &mut Rng) -> ReplicaId {
        ReplicaId::new(rng.bounded(self.n_replicas as u64) as u32)
    }

    /// Samples an operation body for this workload's spec.
    ///
    /// Written values are globally unique (the paper's distinct-writes
    /// assumption); ORset elements are drawn from a small pool so that adds
    /// and removes collide.
    pub fn sample_op(&mut self, rng: &mut Rng) -> Op {
        if rng.gen_bool(self.read_ratio) {
            return Op::Read;
        }
        match self.spec {
            SpecKind::Mvr | SpecKind::LwwRegister => {
                self.next_value += 1;
                Op::Write(Value::new(self.next_value))
            }
            SpecKind::OrSet => {
                let element = Value::new(rng.bounded(self.element_pool));
                if rng.gen_bool(0.5) {
                    Op::Add(element)
                } else {
                    Op::Remove(element)
                }
            }
            SpecKind::Counter => Op::Inc,
            SpecKind::EwFlag => {
                if rng.gen_bool(0.5) {
                    Op::Enable
                } else {
                    Op::Disable
                }
            }
        }
    }

    /// Samples the next client operation: `(replica, object, op)`.
    pub fn next_op(&mut self, rng: &mut Rng) -> (ReplicaId, ObjectId, Op) {
        let replica = self.sample_replica(rng);
        let obj = self.sample_object(rng);
        let op = self.sample_op(rng);
        (replica, obj, op)
    }
}

/// One operation of the open-loop client stream.
#[derive(Clone, PartialEq, Debug)]
pub struct ClientOp {
    /// The issuing (simulated) client.
    pub client: u32,
    /// The replica the client is pinned to.
    pub replica: ReplicaId,
    /// Target object (global id, pre-sharding).
    pub obj: ObjectId,
    /// The operation.
    pub op: Op,
}

/// An open-loop driver over a [`Workload`]: a population of simulated
/// clients issues operations at a fixed (virtual-time) rate, one per
/// tick, regardless of how far behind replication runs — the regime the
/// service benchmarks measure. Each client is pinned to a home replica
/// (`client mod n_replicas`), so per-client session order is per-replica
/// program order and the session checkers stay meaningful.
#[derive(Clone, Debug)]
pub struct OpenLoop {
    workload: Workload,
    n_clients: u32,
}

impl OpenLoop {
    /// Creates an open-loop stream of `n_clients` clients over `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `n_clients == 0`.
    pub fn new(workload: Workload, n_clients: u32) -> Self {
        assert!(n_clients > 0, "need at least one client");
        OpenLoop {
            workload,
            n_clients,
        }
    }

    /// Number of simulated clients.
    pub fn n_clients(&self) -> u32 {
        self.n_clients
    }

    /// The underlying workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The next client operation (unbiased client choice, home-replica
    /// pinning, workload-distributed object and op).
    pub fn next_op(&mut self, rng: &mut Rng) -> ClientOp {
        let client = rng.bounded(u64::from(self.n_clients)) as u32;
        let replica = ReplicaId::new(client % self.workload.n_replicas as u32);
        let obj = self.workload.sample_object(rng);
        let op = self.workload.sample_op(rng);
        ClientOp {
            client,
            replica,
            obj,
            op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Rng {
        Rng::seed_from_u64(seed)
    }

    #[test]
    fn read_ratio_respected_roughly() {
        let mut w = Workload::new(SpecKind::Mvr, 3, 4, 0.5, KeyDistribution::Uniform);
        let mut r = rng(1);
        let reads = (0..1000).filter(|_| w.next_op(&mut r).2.is_read()).count();
        assert!((350..650).contains(&reads), "got {reads} reads");
    }

    #[test]
    fn write_values_unique() {
        let mut w = Workload::new(SpecKind::Mvr, 2, 2, 0.0, KeyDistribution::Uniform);
        let mut r = rng(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let (_, _, op) = w.next_op(&mut r);
            let Op::Write(v) = op else {
                panic!("writes only")
            };
            assert!(seen.insert(v), "duplicate written value {v}");
        }
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let w = Workload::new(
            SpecKind::Mvr,
            2,
            16,
            0.5,
            KeyDistribution::Zipf { theta: 1.0 },
        );
        let mut r = rng(3);
        let mut counts = [0usize; 16];
        for _ in 0..4000 {
            counts[w.sample_object(&mut r).index()] += 1;
        }
        assert!(
            counts[0] > counts[15] * 3,
            "rank 0 ({}) should dominate rank 15 ({})",
            counts[0],
            counts[15]
        );
    }

    #[test]
    fn uniform_covers_all_objects() {
        let w = Workload::new(SpecKind::Mvr, 2, 8, 0.5, KeyDistribution::Uniform);
        let mut r = rng(4);
        let mut counts = vec![0usize; 8];
        for _ in 0..2000 {
            counts[w.sample_object(&mut r).index()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "{counts:?}");
    }

    #[test]
    fn orset_ops_collide_on_elements() {
        let mut w = Workload::new(SpecKind::OrSet, 2, 2, 0.0, KeyDistribution::Uniform);
        let mut r = rng(5);
        let mut adds = 0;
        let mut removes = 0;
        for _ in 0..200 {
            match w.next_op(&mut r).2 {
                Op::Add(_) => adds += 1,
                Op::Remove(_) => removes += 1,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(adds > 50 && removes > 50);
    }

    #[test]
    fn counter_generates_incs() {
        let mut w = Workload::new(SpecKind::Counter, 2, 1, 0.0, KeyDistribution::Uniform);
        let mut r = rng(6);
        assert_eq!(w.next_op(&mut r).2, Op::Inc);
    }

    #[test]
    #[should_panic(expected = "read_ratio")]
    fn invalid_read_ratio_panics() {
        Workload::new(SpecKind::Mvr, 2, 2, 1.5, KeyDistribution::Uniform);
    }

    /// Frequency-distribution pin for the unbiased samplers: with a fixed
    /// seed, uniform object and replica draws stay within a fixed
    /// tolerance of the exact expectation. This is the workload-level
    /// guard against reintroducing a biased bounded draw (e.g. a bare
    /// modulo) in either sampler.
    #[test]
    fn sampling_frequency_distribution_is_uniform() {
        let w = Workload::new(SpecKind::Mvr, 6, 12, 0.5, KeyDistribution::Uniform);
        let mut r = rng(0xFEED);
        let draws = 36_000usize;
        let mut objs = [0u64; 12];
        let mut reps = [0u64; 6];
        for _ in 0..draws {
            objs[w.sample_object(&mut r).index()] += 1;
            reps[w.sample_replica(&mut r).index()] += 1;
        }
        let obj_expect = (draws / 12) as u64;
        for (i, &c) in objs.iter().enumerate() {
            assert!(
                c.abs_diff(obj_expect) * 100 <= obj_expect * 8,
                "object {i}: {c} vs {obj_expect}"
            );
        }
        let rep_expect = (draws / 6) as u64;
        for (i, &c) in reps.iter().enumerate() {
            assert!(
                c.abs_diff(rep_expect) * 100 <= rep_expect * 8,
                "replica {i}: {c} vs {rep_expect}"
            );
        }
    }

    #[test]
    fn open_loop_pins_clients_to_home_replicas() {
        let w = Workload::new(SpecKind::Mvr, 3, 8, 0.5, KeyDistribution::Uniform);
        let mut ol = OpenLoop::new(w, 10);
        let mut r = rng(8);
        let mut seen_clients = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let op = ol.next_op(&mut r);
            assert!(op.client < 10);
            assert_eq!(op.replica.index() as u32, op.client % 3);
            seen_clients.insert(op.client);
        }
        assert_eq!(seen_clients.len(), 10, "all clients issue ops");
    }

    #[test]
    fn open_loop_is_deterministic() {
        let mk = || {
            OpenLoop::new(
                Workload::new(
                    SpecKind::OrSet,
                    2,
                    4,
                    0.3,
                    KeyDistribution::Zipf { theta: 1.0 },
                ),
                100,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        let (mut ra, mut rb) = (rng(42), rng(42));
        for _ in 0..200 {
            assert_eq!(a.next_op(&mut ra), b.next_op(&mut rb));
        }
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn open_loop_zero_clients_panics() {
        let w = Workload::new(SpecKind::Mvr, 2, 2, 0.5, KeyDistribution::Uniform);
        let _ = OpenLoop::new(w, 0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut w1 = Workload::new(SpecKind::Mvr, 3, 4, 0.3, KeyDistribution::Uniform);
        let mut w2 = Workload::new(SpecKind::Mvr, 3, 4, 0.3, KeyDistribution::Uniform);
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        for _ in 0..50 {
            assert_eq!(w1.next_op(&mut r1), w2.next_op(&mut r2));
        }
    }
}
