//! Figures 2 and 3, live: can a data store *hide* concurrency from its
//! clients?
//!
//! With a single object it can (Perrin et al., §3.4). With several objects
//! and causal consistency, clients can infer concurrency — and with the
//! OCC witnesses of Definition 18 in place, a read is *forced* to return
//! both concurrent writes. The verdicts below come from a brute-force
//! search over **all** correct causally consistent abstract executions, so
//! "unexplainable" means *no* data store, however clever, could produce
//! those observations.
//!
//! Run with: `cargo run --example concurrency_inference`

use haec::prelude::*;
use haec::theory::figures::{
    fig2_store_run, fig2_verdict, fig3a_verdict, fig3b_verdict, fig3c_verdict,
};

fn show(v: &haec::theory::figures::ScenarioVerdict) {
    println!("{}:", v.label);
    for (desc, ok) in &v.candidates {
        println!(
            "  {:48} {}",
            desc,
            if *ok { "explainable" } else { "UNEXPLAINABLE" }
        );
    }
    println!();
}

fn main() {
    println!("== store-independent verdicts (brute-force over abstract executions) ==\n");
    show(&fig3a_verdict());
    show(&fig3b_verdict());
    show(&fig2_verdict());
    show(&fig3c_verdict());

    println!("== the same Figure 2 message pattern against real stores ==\n");
    let honest = fig2_store_run(&DvvMvrStore);
    println!("  dvv-mvr        reads x = {honest}   (exposes the conflict)");
    let hiding = fig2_store_run(&ArbitrationStore);
    println!("  arbitration    reads x = {hiding}      (hides it — not a correct MVR store)");
    assert_eq!(honest, ReturnValue::values([Value::new(1), Value::new(2)]));
    assert_eq!(hiding.as_values().map(|s| s.len()), Some(1));

    println!();
    println!("== sharper still: information-flow-constrained inference ==\n");
    // Proposition 2 says visibility cannot outrun messages. Constraining
    // the search by the actual happens-before relation of a concrete run
    // lets a client convict a hiding store from the raw transcript alone.
    use haec::theory::hb_constrained_problem;
    let mut sim = Simulator::new(&ArbitrationStore, StoreConfig::new(3, 2));
    let (r0, r1, r2) = (ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2));
    let (x, y) = (ObjectId::new(0), ObjectId::new(1));
    sim.do_op(r1, x, Op::Write(Value::new(5)));
    sim.do_op(r1, x, Op::Write(Value::new(2)));
    let m_r1 = sim.flush(r1).unwrap();
    sim.do_op(r0, y, Op::Write(Value::new(100)));
    sim.do_op(r0, x, Op::Write(Value::new(1)));
    let m_r0 = sim.flush(r0).unwrap();
    sim.do_op(r1, y, Op::Read);
    sim.deliver_to(m_r0, r2);
    sim.do_op(r2, x, Op::Read);
    sim.deliver_to(m_r1, r2);
    sim.do_op(r2, x, Op::Read);
    let p = hb_constrained_problem(sim.execution(), ObjectSpecs::uniform(SpecKind::Mvr));
    println!(
        "  arbitration store transcript explainable given its message pattern? {}",
        if p.is_explainable() {
            "yes"
        } else {
            "NO — caught hiding"
        }
    );
    assert!(!p.is_explainable());

    println!();
    println!("Conclusion (Theorem 6): an eventually consistent, write-propagating");
    println!("MVR store cannot satisfy any consistency model stronger than OCC —");
    println!("whenever the Definition 18 witnesses exist, hiding has no explanation.");
}
