//! Non-firing: output flows into a writer the caller owns (as the `obs`
//! observers do).

use std::fmt::Write;

fn report(out: &mut String, x: u32) {
    writeln!(out, "x = {x}").expect("string writer");
}
