//! Compliance of concrete executions with abstract executions
//! (Definitions 9/10).

use crate::abstract_execution::AbstractExecution;
use haec_model::{Execution, Op, ReplicaId, ReturnValue};
use std::fmt;

/// A replica whose observed operation sequence differs between the concrete
/// and abstract execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComplianceError {
    /// The replica with mismatching projections.
    pub replica: ReplicaId,
    /// Position of the first mismatch within the replica's projection, or
    /// the shorter length if one projection is a proper prefix.
    pub position: usize,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl fmt::Display for ComplianceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "projection mismatch at {} position {}: {}",
            self.replica, self.position, self.detail
        )
    }
}

impl std::error::Error for ComplianceError {}

/// Checks Definition 9: execution `α` complies with abstract execution
/// `A = (H, vis)` iff for every replica `R`, `H|R = α|R^do` — the same
/// operations, on the same objects, with the same responses, in the same
/// order.
///
/// # Errors
///
/// Returns the first mismatching replica.
pub fn complies(ex: &Execution, a: &AbstractExecution) -> Result<(), ComplianceError> {
    let n = ex.n_replicas().max(
        a.events()
            .iter()
            .map(|e| e.replica.index() + 1)
            .max()
            .unwrap_or(0),
    );
    for ri in 0..n {
        let rid = ReplicaId::new(ri as u32);
        // Compare projections by reference: responses can hold sibling sets,
        // so cloning every (op, rval) pair made this check allocate per
        // event. Borrowing from both executions is enough for equality and
        // for formatting the first mismatch.
        let conc: Vec<(_, &Op, &ReturnValue)> = ex
            .do_projection(rid)
            .into_iter()
            .map(|i| {
                let (obj, op, rval) = ex.event(i).as_do().expect("do projection");
                (obj, op, rval)
            })
            .collect();
        let abst: Vec<(_, &Op, &ReturnValue)> = a
            .replica_projection(rid)
            .into_iter()
            .map(|i| {
                let e = a.event(i);
                (e.obj, &e.op, &e.rval)
            })
            .collect();
        if conc.len() != abst.len() {
            return Err(ComplianceError {
                replica: rid,
                position: conc.len().min(abst.len()),
                detail: format!(
                    "concrete has {} do events, abstract has {}",
                    conc.len(),
                    abst.len()
                ),
            });
        }
        for (p, (c, ab)) in conc.iter().zip(abst.iter()).enumerate() {
            if c != ab {
                return Err(ComplianceError {
                    replica: rid,
                    position: p,
                    detail: format!(
                        "concrete do({}, {}) -> {} vs abstract do({}, {}) -> {}",
                        c.0, c.1, c.2, ab.0, ab.1, ab.2
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_execution::AbstractExecutionBuilder;
    use haec_model::{ObjectId, Op, Payload, ReturnValue, Value};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }

    fn concrete() -> Execution {
        let mut ex = Execution::new(2);
        ex.push_do(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![1])).unwrap();
        ex.push_receive(r(1), m).unwrap();
        ex.push_do(r(1), x(0), Op::Read, ReturnValue::values([v(1)]));
        ex
    }

    #[test]
    fn matching_projections_comply() {
        let ex = concrete();
        let mut b = AbstractExecutionBuilder::new();
        let w = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let rd = b.push(r(1), x(0), Op::Read, ReturnValue::values([v(1)]));
        b.vis(w, rd);
        let a = b.build().unwrap();
        assert!(complies(&ex, &a).is_ok());
    }

    #[test]
    fn interleaving_does_not_matter() {
        // Abstract H reorders the cross-replica events; compliance is
        // per-replica so it still holds.
        let mut ex = Execution::new(2);
        ex.push_do(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        ex.push_do(r(1), x(1), Op::Write(v(2)), ReturnValue::Ok);
        let mut b = AbstractExecutionBuilder::new();
        b.push(r(1), x(1), Op::Write(v(2)), ReturnValue::Ok);
        b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let a = b.build().unwrap();
        assert!(complies(&ex, &a).is_ok());
    }

    #[test]
    fn response_mismatch_detected() {
        let ex = concrete();
        let mut b = AbstractExecutionBuilder::new();
        b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        b.push(r(1), x(0), Op::Read, ReturnValue::empty()); // wrong rval
        let a = b.build().unwrap();
        let err = complies(&ex, &a).unwrap_err();
        assert_eq!(err.replica, r(1));
        assert_eq!(err.position, 0);
    }

    #[test]
    fn length_mismatch_detected() {
        let ex = concrete();
        let mut b = AbstractExecutionBuilder::new();
        b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let a = b.build().unwrap();
        let err = complies(&ex, &a).unwrap_err();
        assert_eq!(err.replica, r(1));
        assert!(err.detail.contains("1 do events"));
    }

    #[test]
    fn send_receive_events_ignored() {
        // Only do events participate in compliance.
        let mut ex = Execution::new(2);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![])).unwrap();
        ex.push_receive(r(1), m).unwrap();
        let a = AbstractExecutionBuilder::new().build().unwrap();
        assert!(complies(&ex, &a).is_ok());
    }
}
