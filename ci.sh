#!/usr/bin/env sh
# Hermetic CI gate. The workspace has zero external dependencies, so the
# whole pipeline runs with --offline against the committed Cargo.lock —
# no registry, no network, no vendor directory.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== build (release, locked, offline) =="
cargo build --release --locked --offline

echo "== test (locked, offline) =="
cargo test -q --workspace --locked --offline

echo "== clippy (locked, offline, deny warnings) =="
cargo clippy --workspace --locked --offline -- -D warnings

echo "== haec-lint (determinism/hermeticity, deny mode) =="
cargo run -q --release --locked --offline -p haec-lint

echo "== report smoke (fixed seed, JSON must re-parse) =="
cargo run -q --release --locked --offline -p haec-bench --bin report -- \
    --json --check --seed 42 > /dev/null

echo "== explore smoke (engines must agree at depth 3) =="
cargo bench -q --locked --offline -p haec-bench --bench explore -- \
    --smoke > /dev/null

echo "== fmt =="
cargo fmt --check

echo "ci: ok"
