#!/usr/bin/env sh
# Hermetic CI gate. The workspace has zero external dependencies, so the
# whole pipeline runs with --offline against the committed Cargo.lock —
# no registry, no network, no vendor directory.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== build (release, locked, offline) =="
cargo build --release --locked --offline

echo "== test (locked, offline) =="
cargo test -q --workspace --locked --offline

echo "== fmt =="
cargo fmt --check

echo "ci: ok"
