//! The deterministic replica-cluster simulator.
//!
//! A [`Simulator`] owns one [`ReplicaMachine`] per replica, the multiset of
//! in-flight message copies, and a faithful [`Execution`] record of every
//! `do`/`send`/`receive` event. All network behaviours the model permits —
//! dropping, duplicating, reordering, selective delivery — are explicit
//! simulator operations, so an execution is an exact transcript of the
//! scheduler's choices.

use crate::obs::{DoEvent, FaultEvent, Observer, Observers, ReceiveEvent, SendEvent};
use haec_core::witness::{
    abstract_from_witness, abstract_from_witness_ordered, DoWitness, WitnessError,
};
use haec_core::AbstractExecution;
use haec_model::{
    Dot, Execution, MsgId, ObjectId, Op, ReplicaId, ReplicaMachine, ReturnValue, StoreConfig,
    StoreFactory,
};

/// One deliverable copy of a broadcast message.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct InFlight {
    /// The message.
    pub msg: MsgId,
    /// The replica this copy is addressed to.
    pub to: ReplicaId,
}

/// A network fault or partition transition, positioned by the number of
/// execution events recorded before it happened. Faults are invisible in
/// the [`Execution`] itself (a dropped copy simply never produces a
/// `receive`), so the simulator records them on the side — this is what
/// lets [`trace`](crate::trace) round-trip full schedules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultRecord {
    /// Number of execution events recorded before the fault.
    pub at_event: usize,
    /// What happened.
    pub kind: FaultKind,
}

/// The kinds of recorded faults.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The in-flight copy of `msg` addressed to `to` was dropped.
    Drop {
        /// The message.
        msg: MsgId,
        /// The addressee of the dropped copy.
        to: ReplicaId,
    },
    /// The in-flight copy of `msg` addressed to `to` was duplicated.
    Duplicate {
        /// The message.
        msg: MsgId,
        /// The addressee of the duplicated copy.
        to: ReplicaId,
    },
    /// A partition separating `group` from the other replicas activated.
    PartitionStart {
        /// Replicas in the first group.
        group: Vec<usize>,
    },
    /// The active partition healed.
    PartitionHeal,
}

/// A cluster of replicas under simulation.
pub struct Simulator {
    config: StoreConfig,
    store_name: String,
    machines: Vec<Box<dyn ReplicaMachine>>,
    execution: Execution,
    witnesses: Vec<DoWitness>,
    /// Arbitration timestamps reported by the store, per do event.
    timestamps: Vec<Option<u64>>,
    inflight: Vec<InFlight>,
    /// 1-based update counts per replica, for assigning dots to updates.
    update_seq: Vec<u32>,
    faults: Vec<FaultRecord>,
    peak_state_bits: usize,
    obs: Observers,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("store", &self.store_name)
            .field("config", &self.config)
            .field("events", &self.execution.len())
            .field("inflight", &self.inflight.len())
            .field("faults", &self.faults.len())
            .field("observers", &self.obs.len())
            .finish()
    }
}

impl Simulator {
    /// Spawns a fresh cluster of `config.n_replicas` replicas of the store.
    pub fn new(factory: &dyn StoreFactory, config: StoreConfig) -> Self {
        let machines = (0..config.n_replicas)
            .map(|i| factory.spawn(ReplicaId::new(i as u32), config))
            .collect();
        Simulator {
            config,
            store_name: factory.name().to_owned(),
            machines,
            execution: Execution::new(config.n_replicas),
            witnesses: Vec::new(),
            timestamps: Vec::new(),
            inflight: Vec::new(),
            update_seq: vec![0; config.n_replicas],
            faults: Vec::new(),
            peak_state_bits: 0,
            obs: Observers::new(),
        }
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The store's name.
    pub fn store_name(&self) -> &str {
        &self.store_name
    }

    /// Attaches an [`Observer`] that will be notified of every subsequent
    /// simulator event. Observers are passive: they cannot influence the
    /// run, and the recorded execution is identical with or without them.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.obs.attach(observer);
    }

    /// The total encoded state size across all replicas, in bits.
    pub fn total_state_bits(&self) -> usize {
        self.machines.iter().map(|m| m.state_bits()).sum()
    }

    /// The largest [`total_state_bits`](Self::total_state_bits) sampled
    /// after any mutating event so far.
    pub fn peak_state_bits(&self) -> usize {
        self.peak_state_bits
    }

    /// The recorded network faults and partition transitions, in order.
    pub fn faults(&self) -> &[FaultRecord] {
        &self.faults
    }

    fn sample_state(&mut self) {
        let bits = self.total_state_bits();
        self.peak_state_bits = self.peak_state_bits.max(bits);
        if !self.obs.is_empty() {
            self.obs.on_state_sample(self.execution.len(), bits);
        }
    }

    /// Invokes a client operation at `replica`; returns the event index and
    /// the response.
    pub fn do_op(&mut self, replica: ReplicaId, obj: ObjectId, op: Op) -> (usize, ReturnValue) {
        let dot = op.is_update().then(|| {
            self.update_seq[replica.index()] += 1;
            Dot::new(replica, self.update_seq[replica.index()])
        });
        let outcome = self.machines[replica.index()].do_op(obj, &op);
        let ix = self
            .execution
            .push_do(replica, obj, op, outcome.rval.clone());
        self.witnesses.push(DoWitness {
            event: ix,
            visible: outcome.visible,
        });
        self.timestamps.push(outcome.timestamp);
        if !self.obs.is_empty() {
            let (eobj, op, rval) = self.execution.event(ix).as_do().expect("do event");
            self.obs.on_do(&DoEvent {
                step: ix,
                replica,
                obj: eobj,
                op,
                rval,
                dot,
                visible: &self.witnesses[self.witnesses.len() - 1].visible,
            });
        }
        self.sample_state();
        (ix, outcome.rval)
    }

    /// Convenience: a read at `replica`.
    pub fn read(&mut self, replica: ReplicaId, obj: ObjectId) -> ReturnValue {
        self.do_op(replica, obj, Op::Read).1
    }

    /// If `replica` has a message pending, records the `send` event and
    /// enqueues one in-flight copy per other replica. Returns the message
    /// id, or `None` if nothing was pending.
    pub fn flush(&mut self, replica: ReplicaId) -> Option<MsgId> {
        let payload = self.machines[replica.index()].pending_message()?;
        let bits = payload.bits();
        self.machines[replica.index()].on_send();
        let msg = self
            .execution
            .push_send(replica, payload)
            .expect("replica id is valid");
        for t in 0..self.config.n_replicas {
            if t != replica.index() {
                self.inflight.push(InFlight {
                    msg,
                    to: ReplicaId::new(t as u32),
                });
            }
        }
        if !self.obs.is_empty() {
            self.obs.on_send(&SendEvent {
                step: self.execution.message(msg).send_index,
                replica,
                msg,
                bits,
            });
        }
        self.sample_state();
        Some(msg)
    }

    /// The in-flight message copies, in enqueue order.
    pub fn inflight(&self) -> &[InFlight] {
        &self.inflight
    }

    /// Delivers the `i`-th in-flight copy; returns the receive event index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn deliver(&mut self, i: usize) -> usize {
        let InFlight { msg, to } = self.inflight.remove(i);
        let payload = self.execution.message(msg).payload.clone();
        self.machines[to.index()].on_receive(&payload);
        let ix = self
            .execution
            .push_receive(to, msg)
            .expect("in-flight copies are deliverable");
        if !self.obs.is_empty() {
            self.obs.on_receive(&ReceiveEvent {
                step: ix,
                replica: to,
                msg,
                bits: payload.bits(),
                send_step: self.execution.message(msg).send_index,
            });
        }
        self.sample_state();
        ix
    }

    /// Delivers the first in-flight copy addressed to `to` for message
    /// `msg`, if any; returns the receive event index.
    pub fn deliver_to(&mut self, msg: MsgId, to: ReplicaId) -> Option<usize> {
        let i = self
            .inflight
            .iter()
            .position(|f| f.msg == msg && f.to == to)?;
        Some(self.deliver(i))
    }

    /// Drops the `i`-th in-flight copy (it will never be delivered).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn drop_inflight(&mut self, i: usize) {
        let InFlight { msg, to } = self.inflight.remove(i);
        let at_event = self.execution.len();
        self.faults.push(FaultRecord {
            at_event,
            kind: FaultKind::Drop { msg, to },
        });
        if !self.obs.is_empty() {
            self.obs.on_drop(&FaultEvent {
                step: at_event,
                msg,
                to,
            });
        }
    }

    /// Duplicates the `i`-th in-flight copy.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn duplicate_inflight(&mut self, i: usize) {
        let copy = self.inflight[i];
        self.inflight.push(copy);
        let at_event = self.execution.len();
        self.faults.push(FaultRecord {
            at_event,
            kind: FaultKind::Duplicate {
                msg: copy.msg,
                to: copy.to,
            },
        });
        if !self.obs.is_empty() {
            self.obs.on_duplicate(&FaultEvent {
                step: at_event,
                msg: copy.msg,
                to: copy.to,
            });
        }
    }

    /// Records a partition activation (for the fault transcript) and
    /// notifies observers. The partition itself is enforced by the
    /// scheduler; the simulator only keeps the record.
    pub fn note_partition_start(&mut self, group: &[usize]) {
        self.faults.push(FaultRecord {
            at_event: self.execution.len(),
            kind: FaultKind::PartitionStart {
                group: group.to_vec(),
            },
        });
        if !self.obs.is_empty() {
            self.obs.on_partition_change(self.execution.len(), true);
        }
    }

    /// Records the active partition healing; see
    /// [`note_partition_start`](Self::note_partition_start).
    pub fn note_partition_heal(&mut self) {
        self.faults.push(FaultRecord {
            at_event: self.execution.len(),
            kind: FaultKind::PartitionHeal,
        });
        if !self.obs.is_empty() {
            self.obs.on_partition_change(self.execution.len(), false);
        }
    }

    /// Delivers everything currently in flight, in enqueue order.
    pub fn deliver_all(&mut self) {
        while !self.inflight.is_empty() {
            self.deliver(0);
        }
    }

    /// Drives the cluster to a *quiescent* execution (Definition 17): every
    /// pending message is flushed and every sent message is delivered to
    /// every other replica, repeating until no replica has a message pending
    /// and nothing is in flight.
    ///
    /// For op-driven stores one round suffices; stores that create pending
    /// messages on receive (e.g. the sequencer) need several. A round cap
    /// guards against stores that never quiesce.
    ///
    /// Returns `true` if quiescence was reached within the cap.
    pub fn quiesce(&mut self) -> bool {
        let mut rounds = 0;
        let mut reached = false;
        for _ in 0..64 {
            let mut progress = false;
            for r in 0..self.config.n_replicas {
                if self.flush(ReplicaId::new(r as u32)).is_some() {
                    progress = true;
                }
            }
            if !self.inflight.is_empty() {
                progress = true;
                self.deliver_all();
            }
            if !progress {
                reached = true;
                break;
            }
            rounds += 1;
        }
        if !reached {
            reached = (0..self.config.n_replicas)
                .all(|r| self.machines[r].pending_message().is_none())
                && self.inflight.is_empty();
        }
        if !self.obs.is_empty() {
            self.obs.on_quiesce(rounds, reached);
        }
        reached
    }

    /// The execution transcript so far.
    pub fn execution(&self) -> &Execution {
        &self.execution
    }

    /// The visibility witnesses reported by the store, one per `do` event.
    pub fn witnesses(&self) -> &[DoWitness] {
        &self.witnesses
    }

    /// Immutable access to a replica machine (for fingerprints, state
    /// size).
    pub fn machine(&self, replica: ReplicaId) -> &dyn ReplicaMachine {
        self.machines[replica.index()].as_ref()
    }

    /// Builds the candidate abstract execution from the store's witnesses,
    /// with `H` in execution order.
    ///
    /// # Errors
    ///
    /// Propagates witness resolution failures.
    pub fn abstract_execution(&self) -> Result<AbstractExecution, WitnessError> {
        abstract_from_witness(&self.execution, &self.witnesses)
    }

    /// Builds the candidate abstract execution with `H` ordered by the
    /// store-reported arbitration timestamps (writes before reads on ties,
    /// execution order last) — the appropriate order for last-writer-wins
    /// stores, whose specification resolves conflicts by `H` order.
    ///
    /// Events without a timestamp sort by execution order among themselves
    /// at timestamp 0.
    ///
    /// # Errors
    ///
    /// Propagates witness resolution failures.
    pub fn abstract_execution_arbitrated(&self) -> Result<AbstractExecution, WitnessError> {
        let do_events = self.execution.do_events();
        // Sort key mirrors the LWW arbitration rule `(ts, origin)`: writes
        // with equal timestamps are ordered by replica id (the store's
        // tie-break), reads come after writes with the same timestamp, and
        // execution order breaks the remaining ties.
        let mut keyed: Vec<((u64, u8, usize, usize), usize)> = do_events
            .iter()
            .enumerate()
            .map(|(pos, &ix)| {
                let ts = self.timestamps[pos].unwrap_or(0);
                let (_, op, _) = self.execution.event(ix).as_do().expect("do event");
                let is_read = u8::from(op.is_read());
                (
                    (ts, is_read, self.execution.event(ix).replica.index(), ix),
                    ix,
                )
            })
            .collect();
        keyed.sort();
        let order: Vec<usize> = keyed.into_iter().map(|(_, ix)| ix).collect();
        abstract_from_witness_ordered(&self.execution, &self.witnesses, &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_model::Value;
    use haec_stores::{DvvMvrStore, LwwStore};

    fn cfg() -> StoreConfig {
        StoreConfig::new(3, 2)
    }
    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }

    #[test]
    fn do_flush_deliver_roundtrip() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        let msg = sim.flush(r(0)).expect("pending after write");
        assert_eq!(sim.inflight().len(), 2);
        sim.deliver_to(msg, r(1)).expect("copy exists");
        assert_eq!(sim.read(r(1), x(0)), ReturnValue::values([v(1)]));
        assert_eq!(sim.read(r(2), x(0)), ReturnValue::empty());
    }

    #[test]
    fn flush_without_pending_is_none() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        assert!(sim.flush(r(0)).is_none());
    }

    #[test]
    fn quiesce_reaches_agreement() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.do_op(r(1), x(0), Op::Write(v(2)));
        sim.do_op(r(2), x(1), Op::Write(v(3)));
        assert!(sim.quiesce());
        let expect_x0 = ReturnValue::values([v(1), v(2)]);
        for i in 0..3 {
            assert_eq!(sim.read(r(i), x(0)), expect_x0);
            assert_eq!(sim.read(r(i), x(1)), ReturnValue::values([v(3)]));
        }
    }

    #[test]
    fn drop_and_duplicate() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.flush(r(0)).unwrap();
        sim.duplicate_inflight(0);
        assert_eq!(sim.inflight().len(), 3);
        sim.drop_inflight(0);
        assert_eq!(sim.inflight().len(), 2);
        sim.deliver_all();
        assert!(sim.execution().validate().is_ok());
    }

    #[test]
    fn execution_records_all_events() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.flush(r(0)).unwrap();
        sim.deliver_all();
        // 1 do + 1 send + 2 receives
        assert_eq!(sim.execution().len(), 4);
        assert_eq!(sim.witnesses().len(), 1);
    }

    #[test]
    fn abstract_execution_from_witnesses() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        let (w, _) = sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.flush(r(0)).unwrap();
        sim.deliver_all();
        let (rd, rv) = sim.do_op(r(1), x(0), Op::Read);
        assert_eq!(rv, ReturnValue::values([v(1)]));
        let a = sim.abstract_execution().unwrap();
        assert_eq!(a.len(), 2);
        // Both do events are in H; the write is visible to the read.
        let h_w = 0;
        let h_r = 1;
        assert!(a.sees(h_w, h_r));
        let _ = (w, rd);
    }

    #[test]
    fn arbitrated_order_respects_timestamps() {
        let mut sim = Simulator::new(&LwwStore, cfg());
        // Concurrent writes at ts 1; then r1's second write at ts 2.
        sim.do_op(r(0), x(0), Op::Write(v(10)));
        sim.do_op(r(1), x(0), Op::Write(v(20)));
        sim.do_op(r(1), x(0), Op::Write(v(30)));
        sim.quiesce();
        let rv = sim.read(r(2), x(0));
        assert_eq!(rv, ReturnValue::values([v(30)]));
        let a = sim.abstract_execution_arbitrated().unwrap();
        assert!(a.validate().is_ok());
        // H must order the ts-2 write after both ts-1 writes.
        let vals: Vec<_> = a
            .events()
            .iter()
            .filter_map(|e| match e.op {
                Op::Write(v) => Some(v.as_u64()),
                _ => None,
            })
            .collect();
        assert_eq!(*vals.last().unwrap(), 30);
    }

    #[test]
    fn machine_access_for_fingerprints() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        let fp0 = sim.machine(r(0)).state_fingerprint();
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        assert_ne!(sim.machine(r(0)).state_fingerprint(), fp0);
        assert_eq!(sim.store_name(), "dvv-mvr");
    }
}
