//! A `use`-path and call-site resolver good enough for `std` paths.
//!
//! The lint rules are stated over *fully-qualified* paths
//! (`std::collections::HashMap`, `std::time::Instant`, …), but source code
//! names things through imports, aliases, nested groups and globs. This
//! module walks the token stream once to collect every `use` declaration
//! into an alias table, then resolves path occurrences at call sites
//! against it. It is deliberately file-local and flow-insensitive: the
//! workspace's own style (one import block per file, no shadowing of std
//! names) is well inside what it handles, and a miss only costs a lint
//! firing, never a false one — except the deliberate choice that a *local*
//! type named `HashMap` would fire, which is a hazard worth renaming away.

use crate::tokenizer::{Tok, TokKind};
use haec_core::det::DetMap;

/// One leaf of a `use` tree, with the position of its final segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UseImport {
    /// The fully-qualified imported path (`std::collections::HashMap`).
    pub path: String,
    /// The binding name in this file (`HashMap`, or the `as` alias).
    pub name: String,
    /// 1-based line of the leaf segment.
    pub line: u32,
    /// 1-based column of the leaf segment.
    pub col: u32,
}

/// The alias table built from a file's `use` declarations.
#[derive(Default, Debug)]
pub struct Resolver {
    /// Binding name → full path.
    aliases: DetMap<String, String>,
    /// Module paths glob-imported (`use std::collections::*`).
    globs: Vec<String>,
}

impl Resolver {
    /// Resolves a path occurrence (as written, segments joined by `::`)
    /// to a fully-qualified path. The first segment is looked up in the
    /// alias table; `names_of_interest` lets glob imports resolve bare
    /// identifiers the linter cares about.
    #[must_use]
    pub fn resolve(&self, segments: &[String], names_of_interest: &[&str]) -> String {
        let first = &segments[0];
        if let Some(full) = self.aliases.get(first.as_str()) {
            let mut out = full.clone();
            for s in &segments[1..] {
                out.push_str("::");
                out.push_str(s);
            }
            return out;
        }
        if names_of_interest.contains(&first.as_str()) {
            for g in &self.globs {
                let candidate = format!("{g}::{first}");
                if crate::driver::is_interesting_path(&candidate) {
                    let mut out = candidate;
                    for s in &segments[1..] {
                        out.push_str("::");
                        out.push_str(s);
                    }
                    return out;
                }
            }
        }
        segments.join("::")
    }
}

/// Collects all `use` declarations from a token stream (comments are
/// skipped), returning the alias table, the flat list of imported leaves,
/// and the token-index ranges `[start, end)` the declarations occupy — the
/// driver skips those ranges when scanning call sites so an import is
/// reported once, at the `use` site.
pub fn collect_uses(toks: &[Tok]) -> (Resolver, Vec<UseImport>, Vec<(usize, usize)>) {
    let mut resolver = Resolver::default();
    let mut imports = Vec::new();
    let mut ranges = Vec::new();
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let mut k = 0;
    while k < code.len() {
        let i = code[k];
        if toks[i].kind == TokKind::Ident && toks[i].text == "use" {
            // `use` is a strict keyword; any Ident occurrence starts a
            // declaration (raw `r#use` was unraw-ed by the tokenizer, but
            // appears only in contrived code — acceptable noise).
            let start = i;
            let mut j = k + 1;
            parse_use_tree(
                toks,
                &code,
                &mut j,
                String::new(),
                &mut resolver,
                &mut imports,
            );
            // Consume through the terminating semicolon, if present.
            while j < code.len() && toks[code[j]].kind != TokKind::Punct(';') {
                j += 1;
            }
            let end = if j < code.len() {
                code[j] + 1
            } else {
                toks.len()
            };
            ranges.push((start, end));
            k = j + 1;
        } else {
            k += 1;
        }
    }
    (resolver, imports, ranges)
}

/// Recursive descent over one `use` tree rooted at `prefix`. `k` indexes
/// into `code` (comment-free token indices).
fn parse_use_tree(
    toks: &[Tok],
    code: &[usize],
    k: &mut usize,
    prefix: String,
    resolver: &mut Resolver,
    imports: &mut Vec<UseImport>,
) {
    let mut path = prefix;
    let mut last_seg: Option<(String, u32, u32)> = None;
    while let Some(&i) = code.get(*k) {
        match &toks[i].kind {
            TokKind::Ident => {
                let t = &toks[i];
                if t.text == "as" {
                    *k += 1;
                    if let Some(&a) = code.get(*k) {
                        if toks[a].kind == TokKind::Ident {
                            if let Some((_, line, col)) = last_seg.take() {
                                finish_leaf(
                                    &path,
                                    toks[a].text.clone(),
                                    line,
                                    col,
                                    resolver,
                                    imports,
                                );
                            }
                            *k += 1;
                        }
                    }
                    return;
                }
                if !path.is_empty() {
                    path.push_str("::");
                }
                if t.text == "self" {
                    // `{self, …}`: binds the prefix module under its own
                    // last segment. Strip the `::self` we just prepared.
                    path.truncate(path.len().saturating_sub(2));
                    let name = path.rsplit("::").next().unwrap_or(&path).to_owned();
                    last_seg = Some((name, t.line, t.col));
                } else {
                    path.push_str(&t.text);
                    last_seg = Some((t.text.clone(), t.line, t.col));
                }
                *k += 1;
            }
            TokKind::Punct(':') => {
                *k += 1; // first colon; the second is consumed below
                if code
                    .get(*k)
                    .is_some_and(|&n| toks[n].kind == TokKind::Punct(':'))
                {
                    *k += 1;
                }
            }
            TokKind::Punct('{') => {
                *k += 1;
                loop {
                    parse_use_tree(toks, code, k, path.clone(), resolver, imports);
                    match code.get(*k).map(|&n| &toks[n].kind) {
                        Some(TokKind::Punct(',')) => *k += 1,
                        Some(TokKind::Punct('}')) => {
                            *k += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                return;
            }
            TokKind::Punct('*') => {
                resolver.globs.push(path.clone());
                *k += 1;
                return;
            }
            _ => break,
        }
        // A leaf ends at `;`, `,` or `}` — leave those to the caller.
        if let Some(&n) = code.get(*k) {
            if matches!(
                toks[n].kind,
                TokKind::Punct(';') | TokKind::Punct(',') | TokKind::Punct('}')
            ) {
                break;
            }
        } else {
            break;
        }
    }
    if let Some((name, line, col)) = last_seg {
        finish_leaf(&path, name, line, col, resolver, imports);
    }
}

fn finish_leaf(
    path: &str,
    name: String,
    line: u32,
    col: u32,
    resolver: &mut Resolver,
    imports: &mut Vec<UseImport>,
) {
    if path.is_empty() {
        return;
    }
    resolver.aliases.insert(name.clone(), path.to_owned());
    imports.push(UseImport {
        path: path.to_owned(),
        name,
        line,
        col,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn uses(src: &str) -> Vec<(String, String)> {
        let toks = tokenize(src);
        let (_, imports, _) = collect_uses(&toks);
        imports.into_iter().map(|u| (u.name, u.path)).collect()
    }

    #[test]
    fn simple_use() {
        assert_eq!(
            uses("use std::collections::HashMap;"),
            [("HashMap".to_owned(), "std::collections::HashMap".to_owned())]
        );
    }

    #[test]
    fn grouped_use() {
        assert_eq!(
            uses("use std::collections::{HashMap, HashSet};"),
            [
                ("HashMap".to_owned(), "std::collections::HashMap".to_owned()),
                ("HashSet".to_owned(), "std::collections::HashSet".to_owned()),
            ]
        );
    }

    #[test]
    fn nested_groups_and_alias() {
        let got = uses("use std::{time::{Instant as Clock, SystemTime}, env};");
        assert_eq!(
            got,
            [
                ("Clock".to_owned(), "std::time::Instant".to_owned()),
                ("SystemTime".to_owned(), "std::time::SystemTime".to_owned()),
                ("env".to_owned(), "std::env".to_owned()),
            ]
        );
    }

    #[test]
    fn self_in_group() {
        let got = uses("use std::collections::{self, BTreeMap};");
        assert_eq!(
            got,
            [
                ("collections".to_owned(), "std::collections".to_owned()),
                (
                    "BTreeMap".to_owned(),
                    "std::collections::BTreeMap".to_owned()
                ),
            ]
        );
    }

    #[test]
    fn glob_resolves_interesting_names() {
        let toks = tokenize("use std::collections::*;");
        let (resolver, imports, _) = collect_uses(&toks);
        assert!(imports.is_empty());
        let got = resolver.resolve(&["HashMap".into()], &["HashMap"]);
        assert_eq!(got, "std::collections::HashMap");
        let other = resolver.resolve(&["BTreeMap".into()], &["HashMap"]);
        assert_eq!(other, "BTreeMap");
    }

    #[test]
    fn alias_resolution_at_call_site() {
        let toks = tokenize("use std::collections::HashMap as Map;");
        let (resolver, _, _) = collect_uses(&toks);
        let got = resolver.resolve(&["Map".into(), "new".into()], &[]);
        assert_eq!(got, "std::collections::HashMap::new");
    }

    #[test]
    fn module_alias_resolution() {
        let toks = tokenize("use std::collections as coll;");
        let (resolver, _, _) = collect_uses(&toks);
        let got = resolver.resolve(&["coll".into(), "HashMap".into()], &[]);
        assert_eq!(got, "std::collections::HashMap");
    }

    #[test]
    fn use_ranges_cover_declarations() {
        let toks = tokenize("use std::fmt;\nfn main() {}");
        let (_, _, ranges) = collect_uses(&toks);
        assert_eq!(ranges.len(), 1);
        let (s, e) = ranges[0];
        assert_eq!(toks[s].text, "use");
        assert_eq!(toks[e - 1].kind, TokKind::Punct(';'));
    }

    #[test]
    fn unresolved_paths_pass_through() {
        let toks = tokenize("fn f() {}");
        let (resolver, _, _) = collect_uses(&toks);
        assert_eq!(
            resolver.resolve(&["std".into(), "env".into(), "var".into()], &[]),
            "std::env::var"
        );
    }
}
