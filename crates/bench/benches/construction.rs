//! E5 / Theorem 6: cost of the recursive construction (replay + delivery
//! along `vis`) as abstract executions grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use haec_stores::DvvMvrStore;
use haec_theory::construction::construct;
use haec_theory::generate::{random_causal, GeneratorConfig};
use haec_theory::make_revealing;
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm6_construction");
    for &events in &[12usize, 24, 48] {
        let config = GeneratorConfig {
            events,
            ..GeneratorConfig::default()
        };
        let a = random_causal(&config, 3);
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::new("plain", events), &events, |b, _| {
            b.iter(|| {
                let r = construct(&DvvMvrStore, black_box(&a));
                assert!(r.complies());
                black_box(r.simulator.execution().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("revealing", events), &events, |b, _| {
            b.iter(|| {
                let rev = make_revealing(black_box(&a));
                let r = construct(&DvvMvrStore, &rev.execution);
                assert!(r.complies());
                black_box(r.simulator.execution().len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_construction
}
criterion_main!(benches);
