//! Typed identifiers used throughout the model.

use std::fmt;

/// Identifier of a replica (`R₀`, `R₁`, …).
///
/// Replicas are numbered densely from zero; an execution over `n` replicas
/// uses ids `0..n`.
///
/// ```
/// use haec_model::ReplicaId;
/// let r = ReplicaId::new(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "R3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ReplicaId(u32);

impl ReplicaId {
    /// Creates a replica id from its dense index.
    pub const fn new(index: u32) -> Self {
        ReplicaId(index)
    }

    /// Returns the dense index of this replica.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric id.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u32> for ReplicaId {
    fn from(v: u32) -> Self {
        ReplicaId(v)
    }
}

/// Identifier of a replicated object (`x₀`, `x₁`, …).
///
/// An execution over `s` objects uses ids `0..s`.
///
/// ```
/// use haec_model::ObjectId;
/// assert_eq!(ObjectId::new(2).to_string(), "x2");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ObjectId(u32);

impl ObjectId {
    /// Creates an object id from its dense index.
    pub const fn new(index: u32) -> Self {
        ObjectId(index)
    }

    /// Returns the dense index of this object.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric id.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for ObjectId {
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

/// A value written to (or read from) a replicated object.
///
/// The paper assumes every write writes a *distinct* value, so a value
/// uniquely identifies the write event that produced it (paper, §4). The
/// harnesses in `haec-sim` and `haec-theory` maintain this invariant; the
/// model itself does not require it.
///
/// ```
/// use haec_model::Value;
/// assert_eq!(Value::new(42).to_string(), "v42");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Value(u64);

impl Value {
    /// Creates a value from its numeric payload.
    pub const fn new(v: u64) -> Self {
        Value(v)
    }

    /// Returns the numeric payload.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

/// Identifier of a message instance, assigned when the corresponding
/// `send` event is appended to an [`Execution`](crate::Execution).
///
/// A `receive` event refers to the `MsgId` of the send that produced the
/// message. Duplicated delivery is modelled as several `receive` events with
/// the same `MsgId`; a dropped message simply has no `receive` events.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(u64);

impl MsgId {
    /// Creates a message id from its dense index.
    pub const fn new(index: u64) -> Self {
        MsgId(index)
    }

    /// Returns the dense index of this message.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A *dot*: the globally unique identity of an update operation.
///
/// The `seq`-th update (non-read) operation invoked at replica `replica`
/// — counting from 1, across all objects — has dot `(replica, seq)`.
/// Dots are the currency of the visibility *witnesses* that instrumented
/// stores report (see [`DoOutcome`](crate::DoOutcome)): causally consistent
/// stores such as the dotted-version-vector MVR store already carry dots in
/// their real protocol, so the witness adds no out-of-band information.
///
/// ```
/// use haec_model::{Dot, ReplicaId};
/// let d = Dot::new(ReplicaId::new(1), 3);
/// assert_eq!(d.to_string(), "R1:3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Dot {
    /// The replica at which the update was invoked.
    pub replica: ReplicaId,
    /// 1-based count of update operations at `replica` up to and including
    /// this one.
    pub seq: u32,
}

impl Dot {
    /// Creates a dot. `seq` is 1-based.
    pub const fn new(replica: ReplicaId, seq: u32) -> Self {
        Dot { replica, seq }
    }
}

impl fmt::Display for Dot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.replica, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn replica_id_roundtrip() {
        let r = ReplicaId::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(r.as_u32(), 7);
        assert_eq!(ReplicaId::from(7u32), r);
    }

    #[test]
    fn object_id_display() {
        assert_eq!(ObjectId::new(0).to_string(), "x0");
        assert_eq!(ObjectId::from(9u32).index(), 9);
    }

    #[test]
    fn value_ordering() {
        assert!(Value::new(1) < Value::new(2));
        assert_eq!(Value::from(5u64).as_u64(), 5);
    }

    #[test]
    fn dots_order_by_replica_then_seq() {
        let a = Dot::new(ReplicaId::new(0), 5);
        let b = Dot::new(ReplicaId::new(1), 1);
        assert!(a < b);
        let c = Dot::new(ReplicaId::new(0), 6);
        assert!(a < c);
    }

    #[test]
    fn dots_are_set_usable() {
        let mut s = BTreeSet::new();
        s.insert(Dot::new(ReplicaId::new(0), 1));
        s.insert(Dot::new(ReplicaId::new(0), 1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn msg_id_display() {
        assert_eq!(MsgId::new(3).to_string(), "m3");
        assert_eq!(MsgId::new(3).index(), 3);
    }
}
