//! Cross-validation of the two independent verdict mechanisms: the
//! observations produced by a *real* correct store must always be
//! *explainable* by the brute-force abstract-execution search — and the
//! witness the store reports must agree with what the search finds.

use haec::prelude::*;
use haec_core::search::{Observation, SearchProblem};

/// Extracts the per-replica observation sequences from a simulator run.
fn observations_of(sim: &Simulator) -> Vec<Vec<Observation>> {
    let ex = sim.execution();
    (0..sim.config().n_replicas)
        .map(|r| {
            ex.do_projection(ReplicaId::new(r as u32))
                .into_iter()
                .map(|i| {
                    let (obj, op, rval) = ex.event(i).as_do().expect("do event");
                    Observation::new(obj, op.clone(), rval.clone())
                })
                .collect()
        })
        .collect()
}

fn small_run(factory: &dyn StoreFactory, seed: u64) -> Simulator {
    let mut sim = Simulator::new(factory, StoreConfig::new(2, 2));
    let mut wl = Workload::new(SpecKind::Mvr, 2, 2, 0.5, KeyDistribution::Uniform);
    let sched = ScheduleConfig {
        steps: 14, // keeps do events (and especially updates) small enough
        drop_prob: 0.0,
        quiesce_at_end: false,
        ..ScheduleConfig::default()
    };
    run_schedule(&mut sim, &mut wl, &sched, seed);
    sim
}

#[test]
fn dvv_store_observations_always_explainable() {
    let mut checked = 0;
    for seed in 0..40 {
        let sim = small_run(&DvvMvrStore, seed);
        let obs = observations_of(&sim);
        let updates: usize = obs.iter().flatten().filter(|o| o.op.is_update()).count();
        let events: usize = obs.iter().map(Vec::len).sum();
        if updates > 5 || events > 9 {
            continue; // keep the exponential search cheap
        }
        let mut p = SearchProblem::new(ObjectSpecs::uniform(SpecKind::Mvr));
        for session in obs {
            p.session(session);
        }
        assert!(
            p.is_explainable(),
            "seed {seed}: real store produced unexplainable observations\n{}",
            sim.execution().trace()
        );
        checked += 1;
    }
    assert!(checked >= 10, "too few small runs checked: {checked}");
}

#[test]
fn store_witness_is_one_of_the_search_explanations() {
    // The witness abstract execution the store reports is itself a valid
    // explanation: correct, causal, and compliant. (The search may find
    // others; equivalence of observations is what matters.)
    for seed in 0..10 {
        let sim = small_run(&DvvMvrStore, seed);
        let a = sim.abstract_execution().expect("witness resolves");
        assert!(check_correct(&a, &ObjectSpecs::uniform(SpecKind::Mvr)).is_ok());
        assert!(causal::check(&a).is_ok());
        assert!(complies(sim.execution(), &a).is_ok());
    }
}

/// Drives the Figure 2 causality trap against a store and returns its
/// observations. `R1` wins the `x` arbitration (its clock is bumped by an
/// extra earlier write), so a hiding store answers `{2}` — which together
/// with `R1`'s `read(y) = ∅` has no MVR explanation.
fn causality_trap(factory: &dyn StoreFactory) -> Vec<Vec<Observation>> {
    let mut sim = Simulator::new(factory, StoreConfig::new(3, 2));
    let (r0, r1, r2) = (ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2));
    let (x, y) = (ObjectId::new(0), ObjectId::new(1));
    // R1: two writes to x (the second at Lamport ts 2).
    sim.do_op(r1, x, Op::Write(Value::new(5)));
    sim.do_op(r1, x, Op::Write(Value::new(2)));
    let m_r1 = sim.flush(r1).expect("pending");
    // R0: write y, then x (its x-write also at ts 2; R1 wins the tie).
    sim.do_op(r0, y, Op::Write(Value::new(100)));
    sim.do_op(r0, x, Op::Write(Value::new(1)));
    let m_r0 = sim.flush(r0).expect("pending");
    // R1 reads y having received nothing: ∅.
    sim.do_op(r1, y, Op::Read);
    // R2 sees R0's writes first, then R1's.
    sim.deliver_to(m_r0, r2);
    sim.do_op(r2, x, Op::Read);
    sim.deliver_to(m_r1, r2);
    sim.do_op(r2, x, Op::Read);
    observations_of(&sim)
}

#[test]
fn arbitration_store_falls_into_the_causality_trap() {
    let obs = causality_trap(&ArbitrationStore);
    // The final read at R2 hides v1 behind R1's winning write.
    let last = obs[2].last().unwrap();
    assert_eq!(last.rval, ReturnValue::values([Value::new(2)]));
    let mut p = SearchProblem::new(ObjectSpecs::uniform(SpecKind::Mvr));
    for session in obs {
        p.session(session);
    }
    assert!(
        !p.is_explainable(),
        "hiding v1 contradicts R1's empty read of y — no MVR explanation exists"
    );
}

#[test]
fn dvv_store_escapes_the_causality_trap() {
    let obs = causality_trap(&DvvMvrStore);
    let last = obs[2].last().unwrap();
    assert_eq!(
        last.rval,
        ReturnValue::values([Value::new(1), Value::new(2)]),
        "the honest MVR store exposes the conflict"
    );
    let mut p = SearchProblem::new(ObjectSpecs::uniform(SpecKind::Mvr));
    for session in obs {
        p.session(session);
    }
    assert!(p.is_explainable());
}
