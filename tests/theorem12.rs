//! Integration tests for the Theorem 12 lower bound (E4, E7, E10).

use haec::prelude::*;
use haec::theory::lower_bound::{decode_entry, encode, sweep};

#[test]
fn exhaustive_decoding_k4_two_writers() {
    // All 16 functions g : [2] -> [4] decode losslessly.
    let cfg = Thm12Config {
        n_replicas: 4,
        n_objects: 3,
        k: 4,
    };
    for g0 in 1..=4 {
        for g1 in 1..=4 {
            let rt = roundtrip(&DvvMvrStore, &cfg, &[g0, g1]);
            assert!(rt.is_lossless(), "g=({g0},{g1}): {:?}", rt.decoded);
        }
    }
}

#[test]
fn distinct_functions_produce_distinct_messages() {
    // The encoding argument's core: m_g determines g, so different g give
    // different m_g.
    let cfg = Thm12Config {
        n_replicas: 4,
        n_objects: 3,
        k: 3,
    };
    let mut seen = std::collections::HashSet::new();
    for g0 in 1..=3u32 {
        for g1 in 1..=3u32 {
            let enc = encode(&DvvMvrStore, &cfg, &[g0, g1]);
            assert!(
                seen.insert(enc.m_g.bytes().to_vec()),
                "m_g collided for g=({g0},{g1})"
            );
        }
    }
    assert_eq!(seen.len(), 9);
}

#[test]
fn max_message_size_exceeds_information_bound() {
    for (n, s, k) in [(4, 3, 8), (5, 4, 64), (6, 8, 256), (8, 4, 1024)] {
        let cfg = Thm12Config {
            n_replicas: n,
            n_objects: s,
            k,
        };
        let row = sweep(&DvvMvrStore, &cfg, 6, 7);
        assert!(
            row.max_bits as f64 >= row.bound_bits,
            "n={n} s={s} k={k}: {} < {}",
            row.max_bits,
            row.bound_bits
        );
    }
}

#[test]
fn message_size_unbounded_in_k_even_for_fixed_n_and_s() {
    // §1: "even for a fixed number of replicas and objects, the message
    // length is unbounded."
    let mut last = 0;
    for k in [2u32, 16, 128, 1024, 8192] {
        let cfg = Thm12Config {
            n_replicas: 4,
            n_objects: 3,
            k,
        };
        let row = sweep(&DvvMvrStore, &cfg, 2, 3);
        assert!(
            row.max_bits > last,
            "k={k}: message size stopped growing at {last} bits"
        );
        last = row.max_bits;
    }
}

#[test]
fn n_prime_saturates_at_object_count() {
    // When s < n, the bound scales with s - 1, not n - 2 (the open
    // question the paper raises about O(s·k)-bit stores).
    let few_objects = Thm12Config {
        n_replicas: 10,
        n_objects: 3,
        k: 16,
    };
    assert_eq!(few_objects.n_prime(), 2);
    let rt = roundtrip(&DvvMvrStore, &few_objects, &[7, 9]);
    assert!(rt.is_lossless());
    // Our DVV store ships n-entry vectors, so it exceeds the s-side bound
    // by design (messages are O(n·lg k), not O(s·lg k)).
    assert!(rt.m_g_bits as f64 >= few_objects.bound_bits());
}

#[test]
fn decoder_needs_only_m_g_and_public_messages() {
    // The writer messages are independent of g: encode two different g,
    // check the writer messages agree byte for byte.
    let cfg = Thm12Config {
        n_replicas: 4,
        n_objects: 3,
        k: 5,
    };
    let e1 = encode(&DvvMvrStore, &cfg, &[2, 5]);
    let e2 = encode(&DvvMvrStore, &cfg, &[4, 1]);
    assert_eq!(e1.writer_messages, e2.writer_messages);
    // Decoding e1's m_g with e2's (identical) writer messages still works.
    let hybrid = haec::theory::lower_bound::Encoding {
        writer_messages: e2.writer_messages,
        m_g: e1.m_g,
    };
    assert_eq!(decode_entry(&DvvMvrStore, &cfg, &hybrid, 0), Some(2));
    assert_eq!(decode_entry(&DvvMvrStore, &cfg, &hybrid, 1), Some(5));
}

#[test]
fn orset_store_also_supports_the_encoding() {
    // §6's closing remark: the analogue holds beyond MVRs. Run the same
    // encoding over the ORset store (writes become adds).
    // The roundtrip uses register ops, so use the MVR store side by side
    // with an ORset-backed variant driven through adds.
    // Here: verify at least that the ORset store's messages grow with k.
    let cfg = StoreConfig::new(4, 3);
    let mut small = 0;
    let mut large = 0;
    let mut rep = OrSetStore.spawn(ReplicaId::new(0), cfg);
    for j in 0..1000u64 {
        rep.do_op(ObjectId::new(0), &Op::Add(Value::new(j)));
        let bits = rep.pending_message().unwrap().bits();
        if j == 0 {
            small = bits;
        }
        if j == 999 {
            large = bits;
        }
        rep.on_send();
    }
    assert!(large > small, "ORset messages must grow with history");
}

#[test]
fn mixed_mvr_register_store_supports_the_encoding() {
    // §6's closing sentence: the Theorem 12 analogue holds for "a
    // combination of MVRs and registers". In the Figure 4 construction the
    // x_i can be MVRs while y is a plain register — the mixed store serves
    // exactly that layout (objects < n' are MVRs, the rest registers).
    let cfg = Thm12Config {
        n_replicas: 5,
        n_objects: 4,
        k: 16,
    };
    let factory = haec::stores::MixedStore::new(cfg.n_prime());
    for g in [[16u32, 1, 8], [3, 9, 2]] {
        let rt = roundtrip(&factory, &cfg, &g);
        assert!(rt.is_lossless(), "g={g:?}: {:?}", rt.decoded);
        assert!(rt.m_g_bits as f64 >= rt.bound_bits);
    }
}

#[test]
fn causal_register_store_supports_the_encoding() {
    // The pure register analogue of §6.
    let cfg = Thm12Config {
        n_replicas: 5,
        n_objects: 4,
        k: 16,
    };
    let rt = roundtrip(&haec::stores::CausalRegisterStore, &cfg, &[7, 16, 1]);
    assert!(rt.is_lossless(), "{:?}", rt.decoded);
}

#[test]
fn bounded_store_ablation_fails_decoding_for_most_g() {
    let cfg = Thm12Config {
        n_replicas: 4,
        n_objects: 3,
        k: 4,
    };
    let mut failures = 0;
    for g0 in 1..=4 {
        for g1 in 1..=4 {
            let enc = encode(&BoundedStore, &cfg, &[g0, g1]);
            let d0 = decode_entry(&BoundedStore, &cfg, &enc, 0);
            let d1 = decode_entry(&BoundedStore, &cfg, &enc, 1);
            if d0 != Some(g0) || d1 != Some(g1) {
                failures += 1;
            }
        }
    }
    assert!(
        failures >= 12,
        "bounded messages must fail on most functions, failed on {failures}/16"
    );
}
