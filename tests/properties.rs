//! Property-based tests (haec-testkit runner) over the core data
//! structures and the end-to-end store/checker pipeline.
//!
//! Every failing case prints its case seed; re-run with
//! `HAEC_PROP_SEED=<seed> HAEC_PROP_CASES=1` to replay the identical
//! counterexample.

use haec::prelude::*;
use haec::stores::wire::{BitReader, BitWriter};
use haec_model::Relation;
use haec_testkit::prop::{self, any_u8, u32s, u64s, usizes, vecs, Config};
use haec_testkit::{prop_assert, prop_assert_eq};

/// Elias-gamma roundtrips for arbitrary positive integers.
#[test]
fn gamma_roundtrip() {
    prop::check("gamma_roundtrip", &u64s(1..u64::MAX / 2), |&v| {
        let mut w = BitWriter::new();
        w.write_gamma(v);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        prop_assert_eq!(r.read_gamma().unwrap(), v);
        prop_assert_eq!(r.remaining(), 0);
        Ok(())
    });
}

/// Mixed bit-stream roundtrips.
#[test]
fn mixed_stream_roundtrip() {
    let gen = vecs((u64s(0..1_000_000), u32s(1..21)), 1..40);
    prop::check("mixed_stream_roundtrip", &gen, |values| {
        let mut w = BitWriter::new();
        for &(v, width) in values {
            let v = v & ((1u64 << width) - 1);
            w.write_bits(v, width);
            w.write_gamma0(v);
        }
        let p = w.finish();
        let mut r = BitReader::new(&p);
        for &(v, width) in values {
            let v = v & ((1u64 << width) - 1);
            prop_assert_eq!(r.read_bits(width).unwrap(), v);
            prop_assert_eq!(r.read_gamma0().unwrap(), v);
        }
        Ok(())
    });
}

/// Transitive closure is idempotent, monotone, and preserves acyclicity
/// of forward-only relations.
#[test]
fn closure_properties() {
    let gen = vecs((usizes(0..12), usizes(0..12)), 0..40);
    prop::check("closure_properties", &gen, |edges| {
        let mut rel = Relation::new(12);
        for &(i, j) in edges {
            if i < j {
                rel.insert(i, j); // forward edges only: a DAG
            }
        }
        let c1 = rel.transitive_closure();
        let c2 = c1.transitive_closure();
        prop_assert_eq!(&c1, &c2);
        prop_assert!(rel.is_subset_of(&c1));
        prop_assert!(c1.is_acyclic());
        prop_assert!(c1.is_transitive());
        Ok(())
    });
}

/// Version vectors: merge is a least upper bound.
#[test]
fn vv_merge_lub() {
    let gen = (vecs(u32s(0..1000), 4..5), vecs(u32s(0..1000), 4..5));
    prop::check("vv_merge_lub", &gen, |(a, b)| {
        use haec::stores::vv::VersionVector;
        let mut va = VersionVector::new(4);
        let mut vb = VersionVector::new(4);
        for i in 0..4 {
            va.set(ReplicaId::new(i as u32), a[i]);
            vb.set(ReplicaId::new(i as u32), b[i]);
        }
        let mut m = va.clone();
        m.merge(&vb);
        prop_assert!(m.dominates(&va));
        prop_assert!(m.dominates(&vb));
        // Least: any dominator of both dominates the merge.
        let mut big = va.clone();
        big.merge(&vb);
        prop_assert!(big.dominates(&m) && m.dominates(&big));
        Ok(())
    });
}

/// End to end: any random schedule of the DVV MVR store yields a
/// correct, causally consistent witness abstract execution, and
/// quiescing it yields replica agreement.
#[test]
fn dvv_store_always_causal() {
    prop::check("dvv_store_always_causal", &u64s(0..5000), |&seed| {
        let config = ExplorationConfig {
            schedule: ScheduleConfig {
                steps: 120,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        let rep = explore(&DvvMvrStore, &config, seed);
        prop_assert!(rep.is_causally_consistent(), "{rep}");
        Ok(())
    });
}

/// The ORset store under arbitrary schedules is correct and causal.
#[test]
fn orset_store_always_causal() {
    prop::check("orset_store_always_causal", &u64s(0..2000), |&seed| {
        let config = ExplorationConfig {
            spec: SpecKind::OrSet,
            schedule: ScheduleConfig {
                steps: 100,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        let rep = explore(&OrSetStore, &config, seed);
        prop_assert!(rep.is_causally_consistent(), "{rep}");
        Ok(())
    });
}

/// The enable-wins flag store under arbitrary schedules is correct and
/// causal.
#[test]
fn ewflag_store_always_causal() {
    prop::check("ewflag_store_always_causal", &u64s(0..1500), |&seed| {
        let config = ExplorationConfig {
            spec: SpecKind::EwFlag,
            schedule: ScheduleConfig {
                steps: 100,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        let rep = explore(&haec::stores::EwFlagStore, &config, seed);
        prop_assert!(rep.is_causally_consistent(), "{rep}");
        Ok(())
    });
}

/// The COPS-style compressed-dependency store under arbitrary schedules
/// is correct and causal.
#[test]
fn cops_store_always_causal() {
    prop::check("cops_store_always_causal", &u64s(0..1500), |&seed| {
        let config = ExplorationConfig {
            schedule: ScheduleConfig {
                steps: 100,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        let rep = explore(&haec::stores::CopsStore, &config, seed);
        prop_assert!(rep.is_causally_consistent(), "{rep}");
        Ok(())
    });
}

/// Trace serialization round-trips arbitrary simulator runs exactly.
#[test]
fn trace_roundtrip_random_runs() {
    prop::check("trace_roundtrip_random_runs", &u64s(0..2000), |&seed| {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 2));
        let mut wl = Workload::new(SpecKind::Mvr, 3, 2, 0.4, KeyDistribution::Uniform);
        let sched = ScheduleConfig {
            steps: 60,
            ..ScheduleConfig::default()
        };
        run_schedule(&mut sim, &mut wl, &sched, seed);
        let text = haec::sim::trace::to_text(sim.execution());
        let back = haec::sim::trace::parse(&text).unwrap();
        prop_assert_eq!(sim.execution(), &back);
        Ok(())
    });
}

/// The Theorem 6 construction complies for arbitrary generated causal
/// executions.
#[test]
fn construction_always_complies() {
    prop::check("construction_always_complies", &u64s(0..2000), |&seed| {
        let config = GeneratorConfig {
            events: 18,
            ..GeneratorConfig::default()
        };
        let a = random_causal(&config, seed);
        let report = construct(&DvvMvrStore, &a);
        prop_assert!(report.complies(), "{:?}", report.mismatches);
        Ok(())
    });
}

/// The Theorem 12 roundtrip is lossless for arbitrary g.
#[test]
fn thm12_roundtrip_lossless() {
    let gen = (u32s(1..12), u32s(1..12), u32s(1..12));
    let config = Config::with_cases(32); // each case replays a full sweep
    prop::check_with(
        &config,
        "thm12_roundtrip_lossless",
        &gen,
        |&(g0, g1, g2)| {
            let cfg = Thm12Config {
                n_replicas: 5,
                n_objects: 4,
                k: 12,
            };
            let rt = roundtrip(&DvvMvrStore, &cfg, &[g0, g1, g2]);
            prop_assert!(rt.is_lossless(), "{:?}", rt.decoded);
            prop_assert!(rt.m_g_bits as f64 >= 0.0);
            Ok(())
        },
    );
}

/// Payload bit accounting is exact for whole bytes.
#[test]
fn payload_bits_exact() {
    prop::check("payload_bits_exact", &vecs(any_u8(), 0..64), |bytes| {
        let p = Payload::from_bytes(bytes.clone());
        prop_assert_eq!(p.bits(), bytes.len() * 8);
        prop_assert_eq!(p.bytes(), bytes.as_slice());
        Ok(())
    });
}

#[test]
fn testkit_runner_note() {
    // The testkit runner defaults to 64 cases per property (HAEC_PROP_CASES
    // overrides) with a fixed default run seed, so CI is deterministic; the
    // seeds above keep each case fast (< 1 ms – 5 ms). A failure prints a
    // `HAEC_PROP_SEED` replay line that regenerates the exact
    // counterexample.
    assert!(Config::default().cases >= 1);
}
