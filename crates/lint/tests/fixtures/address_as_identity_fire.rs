//! Firing: pointer identity laundered through a helper into the state
//! fingerprint. Token-level scanning sees nothing suspicious in either
//! function — only the interprocedural taint pass connects the address
//! to the sink. Allocator placement varies run to run, so the
//! fingerprint does too.

fn node_key(node: &Vec<u8>) -> usize {
    node.as_ptr() as usize
}

pub fn fingerprint(nodes: &[Vec<u8>]) -> u64 {
    let mut acc = 0u64;
    for n in nodes {
        acc = acc.wrapping_mul(31).wrapping_add(node_key(n) as u64);
    }
    acc
}
