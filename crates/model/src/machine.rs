//! The replica state-machine interface.
//!
//! A replica is a state machine `R = (Σ, σ₀, E, Δ)` (paper, §2). Concrete
//! stores implement [`ReplicaMachine`]; [`StoreFactory`] spawns one machine
//! per replica. The interface encodes the model's structural assumptions:
//!
//! * **High availability** — `do_op` completes locally, without
//!   communication.
//! * **Deterministic messages** — the content of the message a replica would
//!   broadcast is a deterministic function of its state
//!   ([`ReplicaMachine::pending_message`]); a `send` event relays
//!   *everything* the replica has to send, so no message is pending
//!   immediately after a send.
//!
//! Two further properties define *write-propagating* stores (paper, §4) and
//! are checked dynamically by `haec-stores::properties`:
//!
//! * **Invisible reads** (Definition 16) — applying a read leaves the state
//!   unchanged; verified via [`ReplicaMachine::state_fingerprint`].
//! * **Op-driven messages** (Definition 15) — no message is pending in the
//!   initial state, and a receive never creates a pending message where none
//!   existed.

use crate::ids::{Dot, ObjectId, ReplicaId};
use crate::op::{Op, ReturnValue};
use std::fmt;

/// A broadcast message payload with bit-exact size accounting.
///
/// Theorem 12 is a statement about message size *in bits*, so payloads track
/// their exact bit length alongside the byte-padded buffer.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Payload {
    bytes: Vec<u8>,
    bits: usize,
}

impl Payload {
    /// Creates a payload from whole bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let bits = bytes.len() * 8;
        Payload { bytes, bits }
    }

    /// Creates a payload from a byte buffer whose final byte may be
    /// partially filled; `bits` is the exact content length.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is inconsistent with `bytes.len()`.
    pub fn from_bits(bytes: Vec<u8>, bits: usize) -> Self {
        assert!(
            bits <= bytes.len() * 8 && bytes.len() * 8 < bits + 8,
            "bit length {bits} inconsistent with {} bytes",
            bytes.len()
        );
        Payload { bytes, bits }
    }

    /// The byte-padded buffer.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The exact content length in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "payload[{} bits]", self.bits)
    }
}

/// The outcome of a `do` event at a replica, including the visibility
/// *witness* the store reports.
///
/// The witness lists the [`Dot`]s of the update operations (on *any* object)
/// that were applied — i.e. visible — at the replica when the operation
/// executed, **excluding** the operation itself. Together with per-replica
/// program order this determines a candidate visibility relation; the
/// checkers in `haec-core` validate the candidate independently, so a buggy
/// witness cannot make a broken store pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DoOutcome {
    /// The response returned to the client.
    pub rval: ReturnValue,
    /// Dots of all update operations visible at the replica when this
    /// operation executed (excluding this operation itself).
    pub visible: Vec<Dot>,
    /// Optional arbitration timestamp. Stores that totally order updates
    /// (e.g. last-writer-wins via Lamport clocks) report the logical
    /// timestamp of the operation so that witness builders can order `H`
    /// consistently with the store's arbitration.
    pub timestamp: Option<u64>,
}

impl DoOutcome {
    /// Creates an outcome without an arbitration timestamp.
    pub fn new(rval: ReturnValue, visible: Vec<Dot>) -> Self {
        DoOutcome {
            rval,
            visible,
            timestamp: None,
        }
    }

    /// Attaches an arbitration timestamp.
    #[must_use]
    pub fn with_timestamp(mut self, ts: u64) -> Self {
        self.timestamp = Some(ts);
        self
    }
}

/// Static configuration shared by all replicas of a store instance.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct StoreConfig {
    /// Number of replicas `n`.
    pub n_replicas: usize,
    /// Number of supported objects `s`.
    pub n_objects: usize,
}

impl StoreConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(n_replicas: usize, n_objects: usize) -> Self {
        assert!(n_replicas > 0, "need at least one replica");
        assert!(n_objects > 0, "need at least one object");
        StoreConfig {
            n_replicas,
            n_objects,
        }
    }
}

/// A replica state machine `(Σ, σ₀, E, Δ)`.
///
/// # Contract
///
/// Implementations must satisfy the structural assumptions of the model:
///
/// * [`do_op`](Self::do_op) must complete without reference to other
///   replicas (high availability).
/// * [`pending_message`](Self::pending_message) must be a deterministic,
///   side-effect-free function of the current state, and must return `None`
///   immediately after [`on_send`](Self::on_send) (a send relays everything
///   the replica has to send).
/// * Update operations must be numbered by [`Dot`]s in invocation order:
///   the `q`-th update invoked at replica `r` (counting from 1, across all
///   objects) has dot `(r, q)`. The driving harness assigns dots the same
///   way, which is how witnesses are matched to events.
/// * [`state_fingerprint`](Self::state_fingerprint) must reflect the entire
///   state `σ`, so that two calls return different values whenever the state
///   differs. It is used to verify invisible reads (Definition 16) and
///   send-determinism.
///
/// Machines are `Send` so that a simulator snapshot (which owns boxed
/// machines) can be shipped to a worker thread by the parallel explorer.
/// Replica state is plain data — values, clocks, buffers — so this costs
/// implementations nothing.
pub trait ReplicaMachine: Send {
    /// Applies a client operation and returns its response plus the
    /// visibility witness. This is the `do(o, op, v)` transition.
    fn do_op(&mut self, obj: ObjectId, op: &Op) -> DoOutcome;

    /// The message the replica would broadcast from its current state, or
    /// `None` if no message is pending.
    fn pending_message(&self) -> Option<Payload>;

    /// Applies the `send` transition: the pending message (as returned by
    /// [`pending_message`](Self::pending_message)) has been broadcast.
    /// After this call no message may be pending.
    ///
    /// # Panics
    ///
    /// Implementations may panic if no message was pending.
    fn on_send(&mut self);

    /// Applies the `receive(m)` transition for a message with the given
    /// payload.
    fn on_receive(&mut self, payload: &Payload);

    /// A fingerprint (hash) of the complete replica state `σ`.
    fn state_fingerprint(&self) -> u64;

    /// A fingerprint of the *replicated* portion of the state — what must
    /// agree across replicas once every message has been delivered and
    /// every outbox drained. Defaults to the full state fingerprint, which
    /// is correct for stores whose entire state converges (version
    /// vectors, object values, empty buffers). Stores that keep
    /// sender-local bookkeeping which legitimately differs between
    /// replicas at quiescence — e.g. a dot-issue counter that tracks how
    /// many updates *this* replica originated — must override this to
    /// exclude it, or quiescent-agreement checks would report divergence
    /// between replicas that agree on everything observable.
    fn converged_fingerprint(&self) -> u64 {
        self.state_fingerprint()
    }

    /// Clones the machine, including its complete state `σ`, behind a fresh
    /// box. This is the snapshot capability the incremental explorer builds
    /// on: the clone must be observationally indistinguishable from the
    /// original — every future transition sequence applied to the clone
    /// yields the same outcomes, payloads, and fingerprints as it would on
    /// the original.
    fn boxed_clone(&self) -> Box<dyn ReplicaMachine>;

    /// The number of bits a canonical encoding of the replica state would
    /// occupy. Used by the state-space experiments (E9); defaults to 0 for
    /// stores that do not participate in those experiments.
    fn state_bits(&self) -> usize {
        0
    }

    /// A fingerprint of the replica state under the replica-id renaming
    /// `perm` (`perm[old] = new`), or `None` if the store does not support
    /// symmetry reduction.
    ///
    /// Two machines `a` and `b` are *π-related* when `b`'s state equals
    /// `a`'s with every embedded replica id `r` replaced by `perm[r]`
    /// (version-vector entries permuted, dots renamed, and any id-ordered
    /// collections re-canonicalised under the new ids). The contract is:
    /// `a.state_fingerprint_renamed(π) == b.state_fingerprint_renamed(id)`
    /// whenever `a` and `b` are π-related — which is what lets the
    /// exhaustive explorer's symmetry quotient (`ExhaustiveConfig::
    /// symmetry` in `haec-sim`) take the minimum over all renamings as a
    /// canonical state key. The machine's *own* replica id must not be
    /// folded in: it is implicit in the machine's position within the
    /// renamed global vector.
    ///
    /// Stores whose behaviour is not equivariant under replica renaming
    /// (e.g. those breaking ties on raw replica ids in arbitration) must
    /// keep the default `None`, which disables symmetry reduction for the
    /// store. Implementors must also implement
    /// [`payload_fingerprint_renamed`](Self::payload_fingerprint_renamed).
    fn state_fingerprint_renamed(&self, _perm: &[u32]) -> Option<u64> {
        None
    }

    /// A fingerprint of a wire payload under the replica-id renaming
    /// `perm`, or `None` if the store does not support symmetry reduction.
    ///
    /// Must be a pure function of `(payload, perm)` and the static store
    /// configuration — independent of the receiving machine's state — so
    /// the explorer may evaluate it on any machine instance. Same contract
    /// as [`state_fingerprint_renamed`](Self::state_fingerprint_renamed):
    /// π-related payloads (same bits with embedded replica ids renamed)
    /// must collide with the identity fingerprint of the renamed payload.
    fn payload_fingerprint_renamed(&self, _payload: &Payload, _perm: &[u32]) -> Option<u64> {
        None
    }
}

/// A factory spawning one [`ReplicaMachine`] per replica of a store
/// instance.
///
/// Implementations are cheap, cloneable descriptions of a store algorithm
/// plus its parameters; the theorem constructions in `haec-theory` take a
/// `&dyn StoreFactory` so they run against *any* store. Factories are
/// `Sync` so a single `&dyn StoreFactory` can spawn machines concurrently
/// from the parallel explorer's worker threads.
pub trait StoreFactory: Sync {
    /// Spawns the state machine of replica `replica` in its initial state
    /// `σ₀`.
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine>;

    /// A short human-readable name for reports ("dvv-mvr", "lww", …).
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_from_bytes() {
        let p = Payload::from_bytes(vec![1, 2, 3]);
        assert_eq!(p.bits(), 24);
        assert_eq!(p.bytes(), &[1, 2, 3]);
        assert_eq!(p.to_string(), "payload[24 bits]");
    }

    #[test]
    fn payload_from_bits() {
        let p = Payload::from_bits(vec![0b0000_0101], 3);
        assert_eq!(p.bits(), 3);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn payload_inconsistent_bits_panics() {
        let _ = Payload::from_bits(vec![0, 0], 3);
    }

    #[test]
    fn store_config_validation() {
        let c = StoreConfig::new(3, 2);
        assert_eq!(c.n_replicas, 3);
        assert_eq!(c.n_objects, 2);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn store_config_zero_replicas_panics() {
        let _ = StoreConfig::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn store_config_zero_objects_panics() {
        let _ = StoreConfig::new(1, 0);
    }
}
