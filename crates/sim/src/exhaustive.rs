//! Exhaustive schedule exploration (bounded model checking).
//!
//! Random schedules sample the behaviour space; for small parameters we
//! can instead enumerate **every** schedule up to a depth bound and check
//! a predicate on each reachable execution. This is how the test suite
//! shows, e.g., that the DVV store is causally consistent on *all*
//! executions with ≤ N scheduler steps, not just on sampled ones.
//!
//! Replica machines are not clonable (they live behind `dyn`), so the
//! explorer replays each action sequence from scratch — fine at the depths
//! where exhaustive enumeration is feasible anyway.

use crate::obs::{Observer, Observers};
use crate::simulator::Simulator;
use haec_model::{ObjectId, Op, ReplicaId, StoreConfig, StoreFactory};

/// One scheduler action in the enumeration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// Invoke a client operation.
    Do(ReplicaId, ObjectId, Op),
    /// Broadcast the pending message of a replica (no-op if none).
    Flush(ReplicaId),
    /// Deliver the `i`-th in-flight message copy.
    Deliver(usize),
}

/// Parameters of the exhaustive exploration.
#[derive(Clone, Debug)]
pub struct ExhaustiveConfig {
    /// Cluster configuration.
    pub store_config: StoreConfig,
    /// The client operations each replica may invoke, per step. Written
    /// values are automatically uniquified.
    pub ops: Vec<Op>,
    /// Maximum number of scheduler steps.
    pub depth: usize,
    /// Cap on explored schedules (safety valve; `usize::MAX` = none).
    pub max_schedules: usize,
}

impl Default for ExhaustiveConfig {
    fn default() -> Self {
        ExhaustiveConfig {
            store_config: StoreConfig::new(2, 1),
            ops: vec![Op::Write(Value(0)), Op::Read],
            depth: 5,
            max_schedules: 1_000_000,
        }
    }
}

// Private alias so the default above can mention a write succinctly.
use haec_model::Value;
#[allow(non_snake_case)]
fn Value(v: u64) -> Value {
    Value::new(v)
}

/// Summary of an exhaustive run.
#[derive(Clone, Debug)]
pub struct ExhaustiveReport {
    /// Number of complete schedules explored.
    pub schedules: usize,
    /// The first failing schedule, if any.
    pub counterexample: Option<Vec<Action>>,
}

impl ExhaustiveReport {
    /// Did every schedule satisfy the predicate?
    pub fn all_passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Replays a sequence of actions on a fresh cluster, uniquifying written
/// values by action position. Returns the simulator in its final state.
pub fn replay(
    factory: &dyn StoreFactory,
    config: &ExhaustiveConfig,
    actions: &[Action],
) -> Simulator {
    let mut sim = Simulator::new(factory, config.store_config);
    for (step, action) in actions.iter().enumerate() {
        match action {
            Action::Do(replica, obj, op) => {
                let op = match op {
                    Op::Write(_) => Op::Write(Value(1000 + step as u64)),
                    Op::Add(_) => Op::Add(Value(1 + (step % 3) as u64)),
                    Op::Remove(_) => Op::Remove(Value(1 + (step % 3) as u64)),
                    other => other.clone(),
                };
                sim.do_op(*replica, *obj, op);
            }
            Action::Flush(replica) => {
                sim.flush(*replica);
            }
            Action::Deliver(i) => {
                if *i < sim.inflight().len() {
                    sim.deliver(*i);
                }
            }
        }
    }
    sim
}

/// Enumerates every schedule up to `config.depth` steps and evaluates
/// `check` on the resulting simulator. Stops at the first failure (the
/// counterexample schedule is returned) or after `max_schedules`.
///
/// Enumeration prunes syntactically useless actions (flushing a replica
/// with nothing pending, delivering a nonexistent copy) by replaying
/// prefixes — correctness over speed, which is appropriate at these
/// depths.
pub fn explore_all(
    factory: &dyn StoreFactory,
    config: &ExhaustiveConfig,
    check: &mut dyn FnMut(&Simulator) -> bool,
) -> ExhaustiveReport {
    explore_all_observed(factory, config, check, &mut Observers::new())
}

/// Like [`explore_all`], but reports search progress to `obs`:
/// [`Observer::on_search_node`] fires once per expanded schedule prefix
/// with the prefix depth and the current frontier (stack) size.
pub fn explore_all_observed(
    factory: &dyn StoreFactory,
    config: &ExhaustiveConfig,
    check: &mut dyn FnMut(&Simulator) -> bool,
    obs: &mut dyn Observer,
) -> ExhaustiveReport {
    let mut schedules = 0usize;
    let mut counterexample = None;
    let mut stack: Vec<Vec<Action>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if schedules >= config.max_schedules || counterexample.is_some() {
            break;
        }
        obs.on_search_node(prefix.len(), stack.len());
        // Evaluate complete-at-this-length schedule.
        let sim = replay(factory, config, &prefix);
        schedules += 1;
        if !check(&sim) {
            counterexample = Some(prefix);
            break;
        }
        if prefix.len() >= config.depth {
            continue;
        }
        // Expand: all possible next actions given the current state.
        let n_replicas = config.store_config.n_replicas;
        let n_objects = config.store_config.n_objects;
        for r in 0..n_replicas {
            let replica = ReplicaId::new(r as u32);
            for o in 0..n_objects {
                for op in &config.ops {
                    let mut next = prefix.clone();
                    next.push(Action::Do(replica, ObjectId::new(o as u32), op.clone()));
                    stack.push(next);
                }
            }
            if sim.machine(replica).pending_message().is_some() {
                let mut next = prefix.clone();
                next.push(Action::Flush(replica));
                stack.push(next);
            }
        }
        for i in 0..sim.inflight().len() {
            let mut next = prefix.clone();
            next.push(Action::Deliver(i));
            stack.push(next);
        }
    }
    ExhaustiveReport {
        schedules,
        counterexample,
    }
}

/// Shrinks a failing schedule by greedy delta debugging: repeatedly drops
/// actions while the predicate still *fails* on the replayed execution.
/// Returns a (locally) minimal counterexample.
///
/// `check` has the same polarity as in [`explore_all`]: `false` = failure,
/// so the input must satisfy `!check(replay(input))`.
///
/// # Panics
///
/// Panics if the input schedule does not actually fail.
pub fn shrink(
    factory: &dyn StoreFactory,
    config: &ExhaustiveConfig,
    actions: &[Action],
    check: &mut dyn FnMut(&Simulator) -> bool,
) -> Vec<Action> {
    shrink_observed(factory, config, actions, check, &mut Observers::new())
}

/// Like [`shrink`], but reports each tried candidate schedule to `obs` via
/// [`Observer::on_shrink_step`].
///
/// # Panics
///
/// Panics if the input schedule does not actually fail.
pub fn shrink_observed(
    factory: &dyn StoreFactory,
    config: &ExhaustiveConfig,
    actions: &[Action],
    check: &mut dyn FnMut(&Simulator) -> bool,
    obs: &mut dyn Observer,
) -> Vec<Action> {
    let fails = |acts: &[Action], check: &mut dyn FnMut(&Simulator) -> bool| {
        !check(&replay(factory, config, acts))
    };
    assert!(fails(actions, check), "input schedule must be failing");
    let mut current = actions.to_vec();
    let mut progress = true;
    while progress {
        progress = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            obs.on_shrink_step(candidate.len());
            if fails(&candidate, check) {
                current = candidate;
                progress = true;
            } else {
                i += 1;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_core::{causal, check_correct, ObjectSpecs, SpecKind};
    use haec_stores::{BoundedStore, DvvMvrStore};

    fn causal_check(sim: &Simulator) -> bool {
        let Ok(a) = sim.abstract_execution() else {
            return false;
        };
        check_correct(&a, &ObjectSpecs::uniform(SpecKind::Mvr)).is_ok() && causal::check(&a).is_ok()
    }

    #[test]
    fn dvv_store_causal_on_all_depth5_schedules() {
        let config = ExhaustiveConfig {
            store_config: StoreConfig::new(2, 1),
            ops: vec![Op::Write(Value(0)), Op::Read],
            depth: 5,
            max_schedules: 500_000,
        };
        let report = explore_all(&DvvMvrStore, &config, &mut causal_check);
        assert!(
            report.all_passed(),
            "counterexample: {:?}",
            report.counterexample
        );
        assert!(
            report.schedules > 1000,
            "exploration too shallow: {}",
            report.schedules
        );
    }

    #[test]
    fn dvv_store_causal_on_two_objects_depth4() {
        let config = ExhaustiveConfig {
            store_config: StoreConfig::new(2, 2),
            ops: vec![Op::Write(Value(0)), Op::Read],
            depth: 4,
            max_schedules: 500_000,
        };
        let report = explore_all(&DvvMvrStore, &config, &mut causal_check);
        assert!(report.all_passed(), "{:?}", report.counterexample);
    }

    #[test]
    fn bounded_store_has_a_counterexample() {
        // Exhaustive exploration finds a schedule on which the bounded
        // store's witness is not causally consistent (or not correct).
        let config = ExhaustiveConfig {
            store_config: StoreConfig::new(3, 2),
            ops: vec![Op::Write(Value(0)), Op::Read],
            depth: 6,
            max_schedules: 500_000,
        };
        let report = explore_all(&BoundedStore, &config, &mut causal_check);
        assert!(
            !report.all_passed(),
            "bounded store must fail somewhere within {} schedules",
            report.schedules
        );
        // The counterexample replays deterministically...
        let cex = report.counterexample.unwrap();
        let sim = replay(&BoundedStore, &config, &cex);
        assert!(!causal_check(&sim));
        // ...and shrinks to a minimal failing schedule.
        let minimal = shrink(&BoundedStore, &config, &cex, &mut causal_check);
        assert!(minimal.len() <= cex.len());
        let sim = replay(&BoundedStore, &config, &minimal);
        assert!(!causal_check(&sim));
        // Minimality: dropping any single action repairs it.
        for i in 0..minimal.len() {
            let mut shorter = minimal.clone();
            shorter.remove(i);
            let sim = replay(&BoundedStore, &config, &shorter);
            assert!(causal_check(&sim), "shrunk schedule is not minimal");
        }
    }

    #[test]
    #[should_panic(expected = "must be failing")]
    fn shrink_rejects_passing_schedules() {
        let config = ExhaustiveConfig::default();
        shrink(&DvvMvrStore, &config, &[], &mut causal_check);
    }

    #[test]
    fn replay_is_deterministic() {
        let config = ExhaustiveConfig::default();
        let actions = vec![
            Action::Do(ReplicaId::new(0), ObjectId::new(0), Op::Write(Value(0))),
            Action::Flush(ReplicaId::new(0)),
            Action::Deliver(0),
            Action::Do(ReplicaId::new(1), ObjectId::new(0), Op::Read),
        ];
        let s1 = replay(&DvvMvrStore, &config, &actions);
        let s2 = replay(&DvvMvrStore, &config, &actions);
        assert_eq!(s1.execution().events(), s2.execution().events());
    }

    #[test]
    fn observed_search_reports_progress() {
        use crate::obs::stats::StatsObserver;
        let config = ExhaustiveConfig {
            depth: 3,
            max_schedules: 10_000,
            ..ExhaustiveConfig::default()
        };
        let mut stats = StatsObserver::new();
        let report = explore_all_observed(&DvvMvrStore, &config, &mut |_| true, &mut stats);
        assert_eq!(stats.search_nodes() as usize, report.schedules);
        assert!(stats.max_frontier() > 0);
        // Shrinking an (always-failing) schedule reports every candidate.
        let actions = vec![
            Action::Do(ReplicaId::new(0), ObjectId::new(0), Op::Write(Value(0))),
            Action::Flush(ReplicaId::new(0)),
            Action::Deliver(0),
        ];
        let minimal = shrink_observed(&DvvMvrStore, &config, &actions, &mut |_| false, &mut stats);
        assert!(minimal.is_empty(), "always-failing check shrinks to empty");
        assert!(stats.shrink_steps() > 0);
    }

    #[test]
    fn max_schedules_caps_exploration() {
        let config = ExhaustiveConfig {
            depth: 10,
            max_schedules: 100,
            ..ExhaustiveConfig::default()
        };
        let report = explore_all(&DvvMvrStore, &config, &mut |_| true);
        assert!(report.schedules <= 100);
    }
}
