//! # haec-model
//!
//! The *concrete* execution model of Attiya, Ellen and Morrison,
//! "Limitations of Highly-Available Eventually-Consistent Data Stores"
//! (PODC 2015), Section 2.
//!
//! A highly-available replicated data store is modelled as a message-passing
//! system of *replicas*. Each replica is a state machine `(Σ, σ₀, E, Δ)`
//! that handles client operations immediately (without communicating with
//! other replicas) and broadcasts messages to the other replicas. Three
//! kinds of events model the interactions of a replica (paper, §2):
//!
//! * `do(o, op, v)` — a client invokes operation `op` on object `o` and
//!   immediately receives response `v`;
//! * `send(m)` — the replica broadcasts message `m`;
//! * `receive(m)` — the replica receives message `m`.
//!
//! This crate provides:
//!
//! * typed identifiers ([`ReplicaId`], [`ObjectId`], [`Value`], [`Dot`]);
//! * operations and return values ([`Op`], [`ReturnValue`]);
//! * events and executions ([`Event`], [`Execution`]) with well-formedness
//!   checking (Definition 1);
//! * the happens-before relation (Definition 2) and the `rcv` relation used
//!   in Section 4, both computed as dense bit-matrix [`Relation`]s;
//! * the replica state-machine interface ([`ReplicaMachine`],
//!   [`StoreFactory`]) that concrete stores implement.
//!
//! Everything here is deterministic; an [`Execution`] is an exact, replayable
//! record of what happened.
//!
//! ## Example
//!
//! ```
//! use haec_model::{Execution, Event, EventKind, ReplicaId, ObjectId, Op, Value,
//!                  ReturnValue, Payload, happens_before};
//!
//! let mut ex = Execution::new(2);
//! let r0 = ReplicaId::new(0);
//! let r1 = ReplicaId::new(1);
//! let x = ObjectId::new(0);
//! // R0 writes, then broadcasts; R1 receives and reads.
//! let w = ex.push_do(r0, x, Op::Write(Value::new(7)), ReturnValue::Ok);
//! let m = ex.push_send(r0, Payload::from_bytes(vec![7])).unwrap();
//! ex.push_receive(r1, m).unwrap();
//! let r = ex.push_do(r1, x, Op::Read, ReturnValue::values([Value::new(7)]));
//! let hb = happens_before(&ex);
//! assert!(hb.contains(w, r));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod execution;
mod happens;
mod ids;
mod machine;
mod op;
mod relation;

pub use event::{Event, EventKind};
pub use execution::{Execution, MessageRecord, WellFormedness, WellFormednessError};
pub use happens::{happens_before, per_replica_order, rcv_relation};
pub use ids::{Dot, MsgId, ObjectId, ReplicaId, Value};
pub use machine::{DoOutcome, Payload, ReplicaMachine, StoreConfig, StoreFactory};
pub use op::{Op, OpKind, ReturnValue};
pub use relation::{topological_sort, Relation};
