//! Non-firing: `Duration` is pure data; simulated time is a counter the
//! schedule advances deterministically.

use std::time::Duration;

fn tick(now: u64) -> (u64, Duration) {
    (now + 1, Duration::from_millis(1))
}
