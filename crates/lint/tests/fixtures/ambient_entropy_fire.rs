//! Firing: environment variables, threads and hash seeding.

use std::collections::hash_map::RandomState;

fn probe() -> RandomState {
    let _home = std::env::var("HOME");
    std::thread::yield_now();
    RandomState::new()
}
