//! Session guarantees as a lens on the store hierarchy: causal stores
//! provide monotonic writes and writes-follow-reads; the eager LWW store
//! does not.

use haec::prelude::*;
use haec_core::sessions;

fn explore_sessions(
    factory: &dyn StoreFactory,
    spec: SpecKind,
    seed: u64,
) -> Result<(), sessions::SessionViolation> {
    let config = ExplorationConfig {
        spec,
        schedule: ScheduleConfig {
            steps: 150,
            drop_prob: 0.0,
            quiesce_at_end: false,
            ..ScheduleConfig::default()
        },
        ..ExplorationConfig::default()
    };
    let rep = explore(factory, &config, seed);
    let a = rep.abstract_execution.expect("witness resolves");
    sessions::check_all(&a)
}

#[test]
fn causal_stores_provide_session_guarantees() {
    let causal_stores: &[(&dyn StoreFactory, SpecKind)] = &[
        (&DvvMvrStore, SpecKind::Mvr),
        (&haec::stores::CopsStore, SpecKind::Mvr),
        (&OrSetStore, SpecKind::OrSet),
        (&CounterStore, SpecKind::Counter),
    ];
    for (factory, spec) in causal_stores {
        for seed in 0..5 {
            assert!(
                explore_sessions(*factory, *spec, seed).is_ok(),
                "{} seed {seed} violated a session guarantee",
                factory.name()
            );
        }
    }
}

#[test]
fn lww_store_violates_session_guarantees_somewhere() {
    // The eager LWW store exposes dependent writes without their
    // dependencies — some random schedule shows a monotonic-writes or
    // writes-follow-reads violation.
    let mut violated = false;
    for seed in 0..30 {
        if explore_sessions(&LwwStore, SpecKind::LwwRegister, seed).is_err() {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "LWW without causal buffering must violate a session guarantee"
    );
}

#[test]
fn bounded_store_violates_session_guarantees_somewhere() {
    let mut violated = false;
    for seed in 0..30 {
        if explore_sessions(&BoundedStore, SpecKind::Mvr, seed).is_err() {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "bounded messages cannot preserve session causality"
    );
}

#[test]
fn causal_consistency_implies_session_guarantees_on_generated_executions() {
    // Definitionally: causal (transitive vis) implies both non-trivial
    // guarantees. Check on 50 generated causal executions.
    let config = GeneratorConfig {
        events: 25,
        ..GeneratorConfig::default()
    };
    for seed in 0..50 {
        let a = random_causal(&config, seed);
        assert!(causal::check(&a).is_ok());
        assert!(
            sessions::check_all(&a).is_ok(),
            "seed {seed}: causal execution violated a session guarantee"
        );
    }
}
