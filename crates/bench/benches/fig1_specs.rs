//! E1 / Figure 1: throughput of the specification functions `f_o` on
//! contexts of growing size — the cost of *checking* a response against
//! the register/MVR/ORset/counter specifications.

use haec_core::{AbstractExecution, AbstractExecutionBuilder, OperationContext, SpecKind};
use haec_model::{ObjectId, Op, ReplicaId, ReturnValue, Value};
use haec_testkit::Bench;
use std::hint::black_box;

/// Builds an execution with `writes` prior updates all visible to one
/// final read, alternating replicas so roughly half the updates are
/// mutually concurrent.
fn context_execution(kind: SpecKind, updates: usize) -> (AbstractExecution, usize) {
    let x = ObjectId::new(0);
    let mut b = AbstractExecutionBuilder::new();
    let mut ids = Vec::new();
    for i in 0..updates {
        let replica = ReplicaId::new((i % 2) as u32);
        let op = match kind {
            SpecKind::Mvr | SpecKind::LwwRegister => Op::Write(Value::new(i as u64 + 1)),
            SpecKind::OrSet => {
                if i % 3 == 2 {
                    Op::Remove(Value::new((i % 7) as u64))
                } else {
                    Op::Add(Value::new((i % 7) as u64))
                }
            }
            SpecKind::Counter => Op::Inc,
            SpecKind::EwFlag => {
                if i % 3 == 2 {
                    Op::Disable
                } else {
                    Op::Enable
                }
            }
        };
        ids.push(b.push(replica, x, op, ReturnValue::Ok));
    }
    let rd = b.push(ReplicaId::new(2), x, Op::Read, ReturnValue::empty());
    for id in ids {
        b.vis(id, rd);
    }
    (b.build().expect("valid"), rd)
}

fn main() {
    let mut bench = Bench::from_args("fig1_spec_eval");
    for &updates in &[8usize, 32, 128] {
        for kind in [
            SpecKind::LwwRegister,
            SpecKind::Mvr,
            SpecKind::OrSet,
            SpecKind::Counter,
            SpecKind::EwFlag,
        ] {
            let (a, rd) = context_execution(kind, updates);
            bench.bench(&format!("{kind}/{updates}"), || {
                let ctx = OperationContext::of(black_box(&a), rd);
                black_box(kind.expected_rval(&ctx))
            });
        }
    }
    bench.finish();
}
