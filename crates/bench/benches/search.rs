//! Scaling of the brute-force explanation search — the exponential ground
//! truth behind Figures 2 and 3. Measures the verdict cost for the actual
//! figure scenarios and for growing synthetic histories.

use haec_core::search::{Observation, SearchProblem};
use haec_core::{ObjectSpecs, SpecKind};
use haec_model::{ObjectId, Op, ReturnValue, Value};
use haec_testkit::Bench;
use haec_theory::figures::{fig2_verdict, fig3c_verdict};
use std::hint::black_box;

fn synthetic_problem(updates: usize) -> SearchProblem {
    // `updates` writers each write once; one reader observes everything.
    let x = ObjectId::new(0);
    let mut p = SearchProblem::new(ObjectSpecs::uniform(SpecKind::Mvr));
    for i in 0..updates {
        p.session([Observation::new(
            x,
            Op::Write(Value::new(i as u64 + 1)),
            ReturnValue::Ok,
        )]);
    }
    p.session([Observation::new(
        x,
        Op::Read,
        ReturnValue::values((0..updates).map(|i| Value::new(i as u64 + 1))),
    )]);
    p
}

fn main() {
    let mut bench = Bench::from_args("explanation_search");
    for &updates in &[2usize, 3, 4] {
        let p = synthetic_problem(updates);
        bench.bench(&format!("all_concurrent/{updates}"), || {
            black_box(p.is_explainable())
        });
    }
    bench.bench("fig2_verdict", || {
        black_box(fig2_verdict().candidates.len())
    });
    bench.bench("fig3c_verdict", || {
        black_box(fig3c_verdict().candidates.len())
    });
    bench.finish();
}
