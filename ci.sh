#!/usr/bin/env sh
# Hermetic CI gate. The workspace has zero external dependencies, so the
# whole pipeline runs with --offline against the committed Cargo.lock —
# no registry, no network, no vendor directory.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== build (release, locked, offline) =="
cargo build --release --locked --offline

echo "== test (locked, offline) =="
cargo test -q --workspace --locked --offline

echo "== clippy (locked, offline, deny warnings) =="
cargo clippy --workspace --locked --offline -- -D warnings

echo "== haec-lint (determinism/hermeticity, deny mode) =="
cargo run -q --release --locked --offline -p haec-lint

echo "== haec-lint fixtures (known-answer corpus) =="
cargo test -q --locked --offline -p haec-lint --test fixtures > /dev/null

echo "== report smoke (fixed seed, JSON must re-parse) =="
cargo run -q --release --locked --offline -p haec-bench --bin report -- \
    --json --check --seed 42 > /dev/null

echo "== explore smoke (all engines incl. par-2 must agree at depth 3) =="
cargo bench -q --locked --offline -p haec-bench --bench explore -- \
    --smoke --threads 2 > /dev/null

echo "== scenario smoke (fixture families enumerate, family sweep seq==par-2) =="
cargo bench -q --locked --offline -p haec-bench --bench scenario -- \
    --smoke --threads 2 > /dev/null

echo "== stream smoke (online checkers: sublinear residency, lossless feed clean) =="
cargo bench -q --locked --offline -p haec-bench --bench stream -- \
    --smoke > /dev/null

echo "== fmt =="
cargo fmt --check

echo "ci: ok"
