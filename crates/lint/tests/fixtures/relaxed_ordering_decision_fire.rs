//! Firing: a Relaxed atomic load, read through a helper, deciding which
//! counterexample the exploration keeps. Relaxed loads may observe
//! stale values, so the surviving counterexample depends on timing.

use std::sync::atomic::{AtomicUsize, Ordering};

fn best_so_far(cell: &AtomicUsize) -> usize {
    cell.load(Ordering::Relaxed)
}

pub fn explore(cell: &AtomicUsize, candidate: usize) -> usize {
    candidate.min(best_so_far(cell))
}
