//! Diagnostics and report rendering.
//!
//! Human output is one `file:line:col lint: message` line per diagnostic
//! (clickable in editors and CI logs) plus a summary line. `--json`
//! reuses the [`obs::json`](haec_sim::obs::json) serializer: objects with
//! insertion-ordered keys, compact one-line rendering — the same
//! conventions as the run reports, so downstream tooling parses both with
//! one reader.

use crate::lints::Lint;
use haec_sim::obs::json::Json;
use std::fmt;

/// One lint finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which lint fired.
    pub lint: Lint,
    /// What happened and what to do instead.
    pub message: String,
    /// Suppressed by a well-formed `haec-lint: allow(…): …` comment?
    pub suppressed: bool,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} {}: {}{}",
            self.file,
            self.line,
            self.col,
            self.lint,
            self.message,
            if self.suppressed { " [allowed]" } else { "" }
        )
    }
}

/// The outcome of linting a file set.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The workspace-relative paths scanned, in walk (sorted) order. Not
    /// serialized into the JSON report; the self-hosting gate asserts on
    /// it directly.
    pub files: Vec<String>,
    /// Every diagnostic, suppressed ones included, sorted by
    /// `(file, line, col, lint)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Diagnostics not silenced by an allow comment — the set that gates.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.suppressed)
    }

    /// Does the report demand a non-zero exit?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.unsuppressed().next().is_none()
    }

    /// Human rendering: one line per diagnostic, then a summary.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let firing = self.unsuppressed().count();
        let suppressed = self.diagnostics.len() - firing;
        out.push_str(&format!(
            "haec-lint: {} diagnostic{} ({suppressed} allowed), {} file{} scanned\n",
            firing,
            if firing == 1 { "" } else { "s" },
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
        ));
        out
    }

    /// The report as a JSON tree (`schema_version` 1).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let diags = self
            .diagnostics
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("file".into(), Json::str(&d.file)),
                    ("line".into(), Json::uint(u64::from(d.line))),
                    ("col".into(), Json::uint(u64::from(d.col))),
                    ("lint".into(), Json::str(d.lint.name())),
                    ("message".into(), Json::str(&d.message)),
                    ("suppressed".into(), Json::Bool(d.suppressed)),
                ])
            })
            .collect();
        let firing = self.unsuppressed().count();
        Json::Obj(vec![
            ("schema_version".into(), Json::uint(1)),
            ("tool".into(), Json::str("haec-lint")),
            (
                "files_scanned".into(),
                Json::uint(self.files_scanned as u64),
            ),
            ("firing".into(), Json::uint(firing as u64)),
            (
                "suppressed".into(),
                Json::uint((self.diagnostics.len() - firing) as u64),
            ),
            ("diagnostics".into(), Json::Arr(diags)),
        ])
    }

    /// Compact one-line JSON.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(line: u32, lint: Lint, suppressed: bool) -> Diagnostic {
        Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line,
            col: 5,
            lint,
            message: "msg".into(),
            suppressed,
        }
    }

    #[test]
    fn display_format_is_clickable() {
        let s = d(3, Lint::WallClock, false).to_string();
        assert_eq!(s, "crates/x/src/lib.rs:3:5 wall-clock: msg");
        let s = d(3, Lint::WallClock, true).to_string();
        assert!(s.ends_with("[allowed]"));
    }

    #[test]
    fn clean_iff_no_unsuppressed() {
        let mut r = LintReport {
            files_scanned: 1,
            files: Vec::new(),
            diagnostics: vec![d(1, Lint::StrayPrint, true)],
        };
        assert!(r.is_clean());
        r.diagnostics.push(d(2, Lint::StrayPrint, false));
        assert!(!r.is_clean());
        assert_eq!(r.unsuppressed().count(), 1);
    }

    #[test]
    fn human_summary_counts() {
        let r = LintReport {
            files_scanned: 2,
            files: Vec::new(),
            diagnostics: vec![d(1, Lint::StrayPrint, true), d(2, Lint::WallClock, false)],
        };
        let text = r.render_human();
        assert!(text.contains("1 diagnostic (1 allowed), 2 files scanned"));
    }

    #[test]
    fn json_round_trips_through_obs_parser() {
        let r = LintReport {
            files_scanned: 1,
            files: Vec::new(),
            diagnostics: vec![d(1, Lint::AmbientEntropy, false)],
        };
        let v = Json::parse(&r.to_json_string()).expect("valid json");
        assert_eq!(v.get("schema_version").and_then(Json::as_int), Some(1));
        assert_eq!(v.get("tool").and_then(Json::as_str), Some("haec-lint"));
        assert_eq!(v.get("firing").and_then(Json::as_int), Some(1));
        let diags = v.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert_eq!(
            diags[0].get("lint").and_then(Json::as_str),
            Some("ambient-entropy")
        );
        assert_eq!(
            diags[0].get("suppressed").and_then(Json::as_bool),
            Some(false)
        );
    }
}
