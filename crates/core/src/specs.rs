//! Replicated object specifications (Figure 1) plus a counter extension.
//!
//! A replicated object specification determines the return value of every
//! operation from its *operation context* (Definition 7):
//! `rval(e) = f_o(ctxt(A, e))`.

use crate::context::OperationContext;
use haec_model::{ObjectId, Op, ReturnValue, Value};
use std::collections::BTreeSet;
use std::fmt;

/// The specification function `f_o` of a replicated object, as in Figure 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SpecKind {
    /// Figure 1(a): read/write register — a read returns the value of the
    /// *last* write event in the context (in `H'` order).
    LwwRegister,
    /// Figure 1(b): multi-valued register — a read returns the set of values
    /// written by currently conflicting writes (writes in the context not
    /// superseded by another visible write).
    Mvr,
    /// Figure 1(c): observed-remove set — an element is in the set iff some
    /// `add(v)` is in the context with no `remove(v)` that saw it ("add
    /// wins").
    OrSet,
    /// Extension: an operation-based counter — a read returns the number of
    /// `inc` operations in the context.
    Counter,
    /// Extension: an enable-wins flag — a read returns `{1}` iff some
    /// `enable` in the context has no visible `disable` that observed it
    /// ("enable wins", the boolean cousin of the ORset).
    EwFlag,
}

impl fmt::Display for SpecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecKind::LwwRegister => "lww-register",
            SpecKind::Mvr => "mvr",
            SpecKind::OrSet => "orset",
            SpecKind::Counter => "counter",
            SpecKind::EwFlag => "ew-flag",
        };
        f.write_str(s)
    }
}

impl SpecKind {
    /// Does this object type accept the given operation?
    pub fn accepts(&self, op: &Op) -> bool {
        match self {
            SpecKind::LwwRegister | SpecKind::Mvr => {
                matches!(op, Op::Write(_) | Op::Read)
            }
            SpecKind::OrSet => matches!(op, Op::Add(_) | Op::Remove(_) | Op::Read),
            SpecKind::Counter => matches!(op, Op::Inc | Op::Read),
            SpecKind::EwFlag => matches!(op, Op::Enable | Op::Disable | Op::Read),
        }
    }

    /// Evaluates `f_o(ctxt)`: the response the specification requires for
    /// the context's event.
    ///
    /// Update operations always return [`ReturnValue::Ok`]; reads are
    /// computed per Figure 1.
    pub fn expected_rval(&self, ctxt: &OperationContext<'_>) -> ReturnValue {
        let e = ctxt.event();
        if e.op.is_update() {
            return ReturnValue::Ok;
        }
        match self {
            SpecKind::LwwRegister => {
                // Last write event in H' order.
                let mut last: Option<Value> = None;
                for p in ctxt.prior_positions() {
                    if let Op::Write(v) = ctxt.member(p).op {
                        last = Some(v);
                    }
                }
                match last {
                    Some(v) => ReturnValue::values([v]),
                    None => ReturnValue::empty(),
                }
            }
            SpecKind::Mvr => {
                // { v : ∃e1 write(v) ∈ H', ¬∃e2 write(·) ∈ H' with e1 vis' e2 }
                let writes: Vec<usize> = ctxt
                    .prior_positions()
                    .filter(|&p| matches!(ctxt.member(p).op, Op::Write(_)))
                    .collect();
                let mut frontier = BTreeSet::new();
                for &p1 in &writes {
                    let superseded = writes.iter().any(|&p2| ctxt.sees(p1, p2));
                    if !superseded {
                        if let Op::Write(v) = ctxt.member(p1).op {
                            frontier.insert(v);
                        }
                    }
                }
                ReturnValue::Values(frontier)
            }
            SpecKind::OrSet => {
                // { v : ∃e1 add(v) ∈ H', ¬∃e2 remove(v) ∈ H' with e1 vis' e2 }
                let mut live = BTreeSet::new();
                let positions: Vec<usize> = ctxt.prior_positions().collect();
                for &p1 in &positions {
                    if let Op::Add(v) = ctxt.member(p1).op {
                        let removed = positions
                            .iter()
                            .any(|&p2| ctxt.member(p2).op == Op::Remove(v) && ctxt.sees(p1, p2));
                        if !removed {
                            live.insert(v);
                        }
                    }
                }
                ReturnValue::Values(live)
            }
            SpecKind::Counter => {
                let count = ctxt
                    .prior_positions()
                    .filter(|&p| ctxt.member(p).op == Op::Inc)
                    .count();
                ReturnValue::values([Value::new(count as u64)])
            }
            SpecKind::EwFlag => {
                // {1} iff ∃ enable e1 ∈ H', ¬∃ disable e2 ∈ H' with e1 vis' e2.
                let positions: Vec<usize> = ctxt.prior_positions().collect();
                let raised = positions.iter().any(|&p1| {
                    ctxt.member(p1).op == Op::Enable
                        && !positions
                            .iter()
                            .any(|&p2| ctxt.member(p2).op == Op::Disable && ctxt.sees(p1, p2))
                });
                if raised {
                    ReturnValue::values([Value::new(1)])
                } else {
                    ReturnValue::empty()
                }
            }
        }
    }
}

/// Assignment of a [`SpecKind`] to every object of an execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ObjectSpecs {
    uniform: SpecKind,
    overrides: Vec<(ObjectId, SpecKind)>,
}

impl ObjectSpecs {
    /// Every object has the same specification.
    pub fn uniform(kind: SpecKind) -> Self {
        ObjectSpecs {
            uniform: kind,
            overrides: Vec::new(),
        }
    }

    /// Overrides the specification of one object.
    #[must_use]
    pub fn with(mut self, obj: ObjectId, kind: SpecKind) -> Self {
        self.overrides.retain(|(o, _)| *o != obj);
        self.overrides.push((obj, kind));
        self
    }

    /// The specification of `obj`.
    pub fn spec_of(&self, obj: ObjectId) -> SpecKind {
        self.overrides
            .iter()
            .find(|(o, _)| *o == obj)
            .map(|(_, k)| *k)
            .unwrap_or(self.uniform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_execution::{AbstractExecution, AbstractExecutionBuilder};
    use haec_model::ReplicaId;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }

    fn ctx_rval(a: &AbstractExecution, e: usize, kind: SpecKind) -> ReturnValue {
        kind.expected_rval(&OperationContext::of(a, e))
    }

    #[test]
    fn accepts_matrix() {
        assert!(SpecKind::Mvr.accepts(&Op::Write(v(1))));
        assert!(SpecKind::Mvr.accepts(&Op::Read));
        assert!(!SpecKind::Mvr.accepts(&Op::Add(v(1))));
        assert!(SpecKind::OrSet.accepts(&Op::Remove(v(1))));
        assert!(!SpecKind::OrSet.accepts(&Op::Write(v(1))));
        assert!(SpecKind::Counter.accepts(&Op::Inc));
        assert!(!SpecKind::LwwRegister.accepts(&Op::Inc));
    }

    #[test]
    fn mvr_read_empty_context() {
        let mut b = AbstractExecutionBuilder::new();
        let rd = b.push(r(0), x(0), Op::Read, ReturnValue::empty());
        let a = b.build().unwrap();
        assert_eq!(ctx_rval(&a, rd, SpecKind::Mvr), ReturnValue::empty());
    }

    #[test]
    fn mvr_read_single_visible_write() {
        let mut b = AbstractExecutionBuilder::new();
        let w = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let rd = b.push(r(1), x(0), Op::Read, ReturnValue::values([v(1)]));
        b.vis(w, rd);
        let a = b.build().unwrap();
        assert_eq!(ctx_rval(&a, rd, SpecKind::Mvr), ReturnValue::values([v(1)]));
    }

    #[test]
    fn mvr_read_concurrent_writes_both_returned() {
        let mut b = AbstractExecutionBuilder::new();
        let w1 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let w2 = b.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::values([v(1), v(2)]));
        b.vis(w1, rd).vis(w2, rd);
        let a = b.build().unwrap();
        assert_eq!(
            ctx_rval(&a, rd, SpecKind::Mvr),
            ReturnValue::values([v(1), v(2)])
        );
    }

    #[test]
    fn mvr_read_superseding_write_hides_older() {
        let mut b = AbstractExecutionBuilder::new();
        let w1 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let w2 = b.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::values([v(2)]));
        b.vis(w1, w2).vis(w1, rd).vis(w2, rd);
        let a = b.build().unwrap();
        assert_eq!(ctx_rval(&a, rd, SpecKind::Mvr), ReturnValue::values([v(2)]));
    }

    #[test]
    fn mvr_write_returns_ok() {
        let mut b = AbstractExecutionBuilder::new();
        let w = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let a = b.build().unwrap();
        assert_eq!(ctx_rval(&a, w, SpecKind::Mvr), ReturnValue::Ok);
    }

    #[test]
    fn lww_returns_last_write_in_history_order() {
        let mut b = AbstractExecutionBuilder::new();
        let w1 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let w2 = b.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::values([v(2)]));
        b.vis(w1, rd).vis(w2, rd);
        let a = b.build().unwrap();
        // w2 is later in H, so it wins even though concurrent by vis.
        assert_eq!(
            ctx_rval(&a, rd, SpecKind::LwwRegister),
            ReturnValue::values([v(2)])
        );
    }

    #[test]
    fn lww_empty_context_reads_empty() {
        let mut b = AbstractExecutionBuilder::new();
        let rd = b.push(r(0), x(0), Op::Read, ReturnValue::empty());
        let a = b.build().unwrap();
        assert_eq!(
            ctx_rval(&a, rd, SpecKind::LwwRegister),
            ReturnValue::empty()
        );
    }

    #[test]
    fn orset_add_wins_over_concurrent_remove() {
        let mut b = AbstractExecutionBuilder::new();
        let add = b.push(r(0), x(0), Op::Add(v(1)), ReturnValue::Ok);
        let rem = b.push(r(1), x(0), Op::Remove(v(1)), ReturnValue::Ok);
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::values([v(1)]));
        b.vis(add, rd).vis(rem, rd);
        // add and remove concurrent: add wins.
        let a = b.build().unwrap();
        assert_eq!(
            ctx_rval(&a, rd, SpecKind::OrSet),
            ReturnValue::values([v(1)])
        );
    }

    #[test]
    fn orset_observed_remove_removes() {
        let mut b = AbstractExecutionBuilder::new();
        let add = b.push(r(0), x(0), Op::Add(v(1)), ReturnValue::Ok);
        let rem = b.push(r(1), x(0), Op::Remove(v(1)), ReturnValue::Ok);
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::empty());
        b.vis(add, rem).vis(add, rd).vis(rem, rd);
        let a = b.build().unwrap();
        assert_eq!(ctx_rval(&a, rd, SpecKind::OrSet), ReturnValue::empty());
    }

    #[test]
    fn orset_re_add_after_remove_survives() {
        let mut b = AbstractExecutionBuilder::new();
        let add1 = b.push(r(0), x(0), Op::Add(v(1)), ReturnValue::Ok);
        let rem = b.push(r(0), x(0), Op::Remove(v(1)), ReturnValue::Ok);
        let add2 = b.push(r(0), x(0), Op::Add(v(1)), ReturnValue::Ok);
        let rd = b.push(r(0), x(0), Op::Read, ReturnValue::values([v(1)]));
        let a = b.build().unwrap();
        // add1 vis rem, but add2 is not removed by rem.
        assert_eq!(
            ctx_rval(&a, rd, SpecKind::OrSet),
            ReturnValue::values([v(1)])
        );
        let _ = (add1, rem, add2);
    }

    #[test]
    fn counter_counts_visible_incs() {
        let mut b = AbstractExecutionBuilder::new();
        b.push(r(0), x(0), Op::Inc, ReturnValue::Ok);
        b.push(r(0), x(0), Op::Inc, ReturnValue::Ok);
        let i3 = b.push(r(1), x(0), Op::Inc, ReturnValue::Ok); // not visible
        let rd = b.push(r(0), x(0), Op::Read, ReturnValue::values([v(2)]));
        let a = b.build().unwrap();
        assert_eq!(
            ctx_rval(&a, rd, SpecKind::Counter),
            ReturnValue::values([v(2)])
        );
        let _ = i3;
    }

    #[test]
    fn ewflag_enable_wins_over_concurrent_disable() {
        let mut b = AbstractExecutionBuilder::new();
        let en = b.push(r(0), x(0), Op::Enable, ReturnValue::Ok);
        let dis = b.push(r(1), x(0), Op::Disable, ReturnValue::Ok);
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::values([v(1)]));
        b.vis(en, rd).vis(dis, rd);
        let a = b.build().unwrap();
        assert_eq!(
            ctx_rval(&a, rd, SpecKind::EwFlag),
            ReturnValue::values([v(1)]),
            "concurrent disable loses"
        );
    }

    #[test]
    fn ewflag_observed_disable_lowers() {
        let mut b = AbstractExecutionBuilder::new();
        let en = b.push(r(0), x(0), Op::Enable, ReturnValue::Ok);
        let dis = b.push(r(1), x(0), Op::Disable, ReturnValue::Ok);
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::empty());
        b.vis(en, dis).vis(en, rd).vis(dis, rd);
        let a = b.build().unwrap();
        assert_eq!(ctx_rval(&a, rd, SpecKind::EwFlag), ReturnValue::empty());
    }

    #[test]
    fn ewflag_reenable_after_disable() {
        let mut b = AbstractExecutionBuilder::new();
        b.push(r(0), x(0), Op::Enable, ReturnValue::Ok);
        b.push(r(0), x(0), Op::Disable, ReturnValue::Ok);
        b.push(r(0), x(0), Op::Enable, ReturnValue::Ok);
        let rd = b.push(r(0), x(0), Op::Read, ReturnValue::values([v(1)]));
        let a = b.build().unwrap();
        assert_eq!(
            ctx_rval(&a, rd, SpecKind::EwFlag),
            ReturnValue::values([v(1)])
        );
    }

    #[test]
    fn ewflag_empty_context_is_lowered() {
        let mut b = AbstractExecutionBuilder::new();
        let rd = b.push(r(0), x(0), Op::Read, ReturnValue::empty());
        let a = b.build().unwrap();
        assert_eq!(ctx_rval(&a, rd, SpecKind::EwFlag), ReturnValue::empty());
    }

    #[test]
    fn object_specs_overrides() {
        let specs = ObjectSpecs::uniform(SpecKind::Mvr).with(x(1), SpecKind::OrSet);
        assert_eq!(specs.spec_of(x(0)), SpecKind::Mvr);
        assert_eq!(specs.spec_of(x(1)), SpecKind::OrSet);
        let specs2 = specs.with(x(1), SpecKind::Counter);
        assert_eq!(specs2.spec_of(x(1)), SpecKind::Counter);
    }

    #[test]
    fn spec_kind_display() {
        assert_eq!(SpecKind::Mvr.to_string(), "mvr");
        assert_eq!(SpecKind::LwwRegister.to_string(), "lww-register");
    }
}
