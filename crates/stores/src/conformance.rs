//! The conformance matrix: which checks each concrete store is expected
//! to pass, in one place.
//!
//! Both the random fault-matrix suite (`tests/store_fault_matrix.rs`) and
//! the scenario-family suite (`tests/scenario_families.rs`) sweep the
//! same seven stores against the same expectations; keeping the table
//! here means a store's contract is declared once and every consumer
//! pins against it.

use crate::{
    CausalRegisterStore, CopsStore, DvvMvrStore, EwFlagStore, LwwStore, MixedStore, OrSetStore,
};
use haec_core::SpecKind;
use haec_model::StoreFactory;

/// Which checks a store's runs must pass.
#[derive(Copy, Clone, Debug)]
pub struct Conformance {
    /// Object specification driving workloads and the correctness checker.
    pub spec: SpecKind,
    /// Check Definition 8 correctness of the witness (in execution order,
    /// or arbitration order for LWW). Off for the dot-arbitrated register
    /// stores, whose arbitration the execution-order LWW checker
    /// misjudges (see EXPERIMENTS.md E13); their causality is still
    /// asserted.
    pub correct: bool,
    /// Order the history by store arbitration timestamps (LWW-style).
    pub arbitrated: bool,
    /// Check Definition 12 causal consistency of the witness.
    pub causal: bool,
}

/// The seven matrix stores with their expected conformance.
pub fn conformance_matrix() -> Vec<(Box<dyn StoreFactory>, Conformance)> {
    let causal_full = |spec| Conformance {
        spec,
        correct: true,
        arbitrated: false,
        causal: true,
    };
    vec![
        (
            Box::new(DvvMvrStore) as Box<dyn StoreFactory>,
            causal_full(SpecKind::Mvr),
        ),
        (Box::new(CopsStore), causal_full(SpecKind::Mvr)),
        (Box::new(OrSetStore), causal_full(SpecKind::OrSet)),
        (Box::new(EwFlagStore), causal_full(SpecKind::EwFlag)),
        (
            Box::new(LwwStore),
            Conformance {
                spec: SpecKind::LwwRegister,
                correct: true,
                arbitrated: true,
                causal: false, // eventually but not causally consistent
            },
        ),
        (
            Box::new(CausalRegisterStore),
            Conformance {
                spec: SpecKind::LwwRegister,
                correct: false, // dot arbitration vs execution-order checker
                arbitrated: false,
                causal: true,
            },
        ),
        (
            Box::new(MixedStore::new(1)), // object 0 MVR, object 1 register
            Conformance {
                spec: SpecKind::Mvr,
                correct: false, // register half arbitrates by dot
                arbitrated: false,
                causal: true,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_the_seven_stores_with_consistent_flags() {
        let matrix = conformance_matrix();
        assert_eq!(matrix.len(), 7);
        let names: Vec<&str> = matrix.iter().map(|(f, _)| f.name()).collect();
        assert_eq!(names.len(), {
            let mut d = names.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        });
        for (factory, conf) in &matrix {
            // Arbitrated order only makes sense with the correctness check.
            assert!(
                !conf.arbitrated || conf.correct,
                "{}: arbitrated without correct",
                factory.name()
            );
        }
        // Exactly one store is checked in arbitration order (LWW).
        assert_eq!(matrix.iter().filter(|(_, c)| c.arbitrated).count(), 1);
    }
}
