//! Abstract executions `(H, vis)` (Definition 4) and prefixes (Definition 5).

use crate::bits;
use haec_model::{ObjectId, Op, Relation, ReplicaId, ReturnValue, Value};
use std::fmt;

/// Per-replica event bitmasks in [`Relation::row_words`] layout, indexed by
/// `ReplicaId::index()`.
fn replica_masks(events: &[AbstractDo], words: usize) -> Vec<Vec<u64>> {
    let max_r = events
        .iter()
        .map(|e| e.replica.index() + 1)
        .max()
        .unwrap_or(0);
    let mut masks = vec![vec![0u64; words]; max_r];
    for (i, e) in events.iter().enumerate() {
        bits::set(&mut masks[e.replica.index()], i);
    }
    masks
}

/// A `do` event of an abstract execution: the client-observable part of an
/// operation invocation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AbstractDo {
    /// The replica at which the operation was invoked.
    pub replica: ReplicaId,
    /// The object operated on.
    pub obj: ObjectId,
    /// The operation.
    pub op: Op,
    /// The response received.
    pub rval: ReturnValue,
}

impl fmt::Display for AbstractDo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "do_{}({}, {}) -> {}",
            self.replica, self.obj, self.op, self.rval
        )
    }
}

/// Violations of the structural conditions of Definition 4.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AbstractExecutionError {
    /// Condition (1): same-replica events must be related by `vis` in
    /// program order.
    MissingProgramOrderEdge {
        /// The earlier event.
        from: usize,
        /// The later event at the same replica.
        to: usize,
    },
    /// Condition (2): `e1 vis e2` and `e2` precedes `e3` at the same
    /// replica must imply `e1 vis e3`.
    MissingSessionClosureEdge {
        /// The source event `e1`.
        from: usize,
        /// The event `e3` that must see `e1`.
        to: usize,
        /// The intermediate event `e2`.
        via: usize,
    },
    /// Condition (3): `vis` must respect the order of `H`.
    VisAgainstHistoryOrder {
        /// The source event (later in `H`).
        from: usize,
        /// The target event (earlier in `H`).
        to: usize,
    },
    /// The vis relation has the wrong domain size.
    DomainMismatch {
        /// Number of events in `H`.
        events: usize,
        /// Domain size of `vis`.
        vis_domain: usize,
    },
}

impl fmt::Display for AbstractExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractExecutionError::MissingProgramOrderEdge { from, to } => {
                write!(f, "missing program-order vis edge {from} -> {to}")
            }
            AbstractExecutionError::MissingSessionClosureEdge { from, to, via } => {
                write!(
                    f,
                    "missing session-closure vis edge {from} -> {to} (via {via})"
                )
            }
            AbstractExecutionError::VisAgainstHistoryOrder { from, to } => {
                write!(f, "vis edge {from} -> {to} contradicts history order")
            }
            AbstractExecutionError::DomainMismatch { events, vis_domain } => {
                write!(
                    f,
                    "vis domain size {vis_domain} does not match {events} events"
                )
            }
        }
    }
}

impl std::error::Error for AbstractExecutionError {}

/// An abstract execution `A = (H, vis)` (Definition 4): a sequence `H` of
/// `do` events and an acyclic visibility relation over them satisfying
///
/// 1. same-replica program order is contained in `vis`;
/// 2. `vis` is closed under same-replica continuation (`e1 vis e2`, `e2`
///    precedes `e3` at `R(e2)` implies `e1 vis e3`);
/// 3. `vis` respects the order of `H`.
///
/// Construct via [`AbstractExecutionBuilder`], which can auto-insert the
/// edges required by conditions (1) and (2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AbstractExecution {
    events: Vec<AbstractDo>,
    vis: Relation,
}

impl AbstractExecution {
    /// Assembles an abstract execution from parts, validating Definition 4.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found.
    pub fn from_parts(
        events: Vec<AbstractDo>,
        vis: Relation,
    ) -> Result<Self, AbstractExecutionError> {
        let a = AbstractExecution { events, vis };
        a.validate()?;
        Ok(a)
    }

    /// The event sequence `H`.
    pub fn events(&self) -> &[AbstractDo] {
        &self.events
    }

    /// Number of events in `H`.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if `H` is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event at position `i` of `H`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn event(&self, i: usize) -> &AbstractDo {
        &self.events[i]
    }

    /// The visibility relation.
    pub fn vis(&self) -> &Relation {
        &self.vis
    }

    /// Tests `e1 vis e2`.
    pub fn sees(&self, e1: usize, e2: usize) -> bool {
        self.vis.contains(e1, e2)
    }

    /// Validates the conditions of Definition 4.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), AbstractExecutionError> {
        let n = self.events.len();
        if self.vis.domain_size() != n {
            return Err(AbstractExecutionError::DomainMismatch {
                events: n,
                vis_domain: self.vis.domain_size(),
            });
        }
        // (3) vis respects H order (also implies acyclicity/irreflexivity).
        for (i, j) in self.vis.iter_pairs() {
            if i >= j {
                return Err(AbstractExecutionError::VisAgainstHistoryOrder { from: i, to: j });
            }
        }
        let words = bits::words_for(n);
        let masks = replica_masks(&self.events, words);
        // (1) program order within a replica: the same-replica events after
        // `i` must all be in row(i). The first missing one is the lowest set
        // bit of mask(R(i)) & above(i) & !row(i), scanned word-parallel.
        for i in 0..n {
            let mask = &masks[self.events[i].replica.index()];
            let row = self.vis.row_words(i);
            for w in (i / 64)..words {
                let miss = mask[w] & bits::above_word(i, w) & !row[w];
                if miss != 0 {
                    let j = w * 64 + miss.trailing_zeros() as usize;
                    return Err(AbstractExecutionError::MissingProgramOrderEdge { from: i, to: j });
                }
            }
        }
        // (2) session closure: for `e1 vis e2`, the same-replica events
        // after `e2` must all be in row(e1).
        for (e1, e2) in self.vis.iter_pairs() {
            let mask = &masks[self.events[e2].replica.index()];
            let row = self.vis.row_words(e1);
            for w in (e2 / 64)..words {
                let miss = mask[w] & bits::above_word(e2, w) & !row[w];
                if miss != 0 {
                    let e3 = w * 64 + miss.trailing_zeros() as usize;
                    return Err(AbstractExecutionError::MissingSessionClosureEdge {
                        from: e1,
                        to: e3,
                        via: e2,
                    });
                }
            }
        }
        Ok(())
    }

    /// The prefix of length `len` (Definition 5).
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    #[must_use]
    pub fn prefix(&self, len: usize) -> AbstractExecution {
        assert!(len <= self.events.len(), "prefix longer than execution");
        let keep: Vec<usize> = (0..len).collect();
        AbstractExecution {
            events: self.events[..len].to_vec(),
            vis: self.vis.restrict(&keep),
        }
    }

    /// The projection `A|o` onto a single object (Definition 8). Returns the
    /// projected execution together with the original indices of its events.
    #[must_use]
    pub fn project_object(&self, obj: ObjectId) -> (AbstractExecution, Vec<usize>) {
        let keep: Vec<usize> = (0..self.events.len())
            .filter(|&i| self.events[i].obj == obj)
            .collect();
        let events = keep.iter().map(|&i| self.events[i].clone()).collect();
        let vis = self.vis.restrict(&keep);
        (AbstractExecution { events, vis }, keep)
    }

    /// The per-replica projection `H|R` as a sequence of event indices.
    pub fn replica_projection(&self, replica: ReplicaId) -> Vec<usize> {
        (0..self.events.len())
            .filter(|&i| self.events[i].replica == replica)
            .collect()
    }

    /// Equivalence of abstract executions (paper, §3.2): `A ≡ A'` iff each
    /// replica observes the same sequence of operations and responses.
    pub fn is_equivalent(&self, other: &AbstractExecution) -> bool {
        let max_r = self
            .events
            .iter()
            .chain(other.events.iter())
            .map(|e| e.replica.index() + 1)
            .max()
            .unwrap_or(0);
        for r in 0..max_r {
            let rid = ReplicaId::new(r as u32);
            let mine: Vec<&AbstractDo> = self
                .replica_projection(rid)
                .into_iter()
                .map(|i| &self.events[i])
                .collect();
            let theirs: Vec<&AbstractDo> = other
                .replica_projection(rid)
                .into_iter()
                .map(|i| &other.events[i])
                .collect();
            if mine != theirs {
                return false;
            }
        }
        true
    }

    /// Indices of write events on `obj` that wrote `v`.
    ///
    /// Under the paper's distinct-writes assumption the result has at most
    /// one element; the method returns all matches so checkers can detect
    /// violations of that assumption.
    pub fn writes_of_value(&self, obj: ObjectId, v: Value) -> Vec<usize> {
        (0..self.events.len())
            .filter(|&i| self.events[i].obj == obj && self.events[i].op == Op::Write(v))
            .collect()
    }

    /// Indices of update (non-read) events, in `H` order.
    pub fn update_events(&self) -> Vec<usize> {
        (0..self.events.len())
            .filter(|&i| self.events[i].op.is_update())
            .collect()
    }

    /// Renders the execution as a readable multi-line listing.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            let seen: Vec<String> = self.vis.predecessors(i).map(|p| p.to_string()).collect();
            out.push_str(&format!("{i:3}  {e}   vis⁻¹={{{}}}\n", seen.join(",")));
        }
        out
    }
}

/// Incremental builder for [`AbstractExecution`].
///
/// `push` appends events to `H`; `vis` adds visibility edges. [`build`]
/// automatically inserts the edges required by Definition 4 conditions (1)
/// (program order) and (2) (session closure), then validates.
///
/// [`build`]: AbstractExecutionBuilder::build
#[derive(Clone, Debug, Default)]
pub struct AbstractExecutionBuilder {
    events: Vec<AbstractDo>,
    edges: Vec<(usize, usize)>,
}

impl AbstractExecutionBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `do` event to `H` and returns its index.
    pub fn push(&mut self, replica: ReplicaId, obj: ObjectId, op: Op, rval: ReturnValue) -> usize {
        self.events.push(AbstractDo {
            replica,
            obj,
            op,
            rval,
        });
        self.events.len() - 1
    }

    /// Appends an already-assembled event.
    pub fn push_event(&mut self, e: AbstractDo) -> usize {
        self.events.push(e);
        self.events.len() - 1
    }

    /// Number of events pushed so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events were pushed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Declares `from vis to`.
    pub fn vis(&mut self, from: usize, to: usize) -> &mut Self {
        self.edges.push((from, to));
        self
    }

    /// Finalizes the execution: inserts program-order and session-closure
    /// edges, then validates Definition 4.
    ///
    /// # Errors
    ///
    /// Returns an error if an explicit edge contradicts the order of `H`
    /// (condition 3) or refers to an out-of-range event.
    pub fn build(&self) -> Result<AbstractExecution, AbstractExecutionError> {
        let n = self.events.len();
        let mut vis = Relation::new(n);
        for &(i, j) in &self.edges {
            if i >= n || j >= n || i >= j {
                return Err(AbstractExecutionError::VisAgainstHistoryOrder { from: i, to: j });
            }
            vis.insert(i, j);
        }
        let words = bits::words_for(n);
        let masks = replica_masks(&self.events, words);
        let mut targets = vec![0u64; words];
        // Condition (1): program order — OR the same-replica events after
        // `i` into row(i) in one word-parallel pass.
        for i in 0..n {
            let mask = &masks[self.events[i].replica.index()];
            for (w, t) in targets.iter_mut().enumerate() {
                *t = if w < i / 64 {
                    0
                } else {
                    mask[w] & bits::above_word(i, w)
                };
            }
            vis.or_into_row(i, &targets);
        }
        // Condition (2): session closure, to fixpoint. Processing targets in
        // increasing order suffices because closure edges always point
        // forward. Every predecessor of e2 receives the same target row —
        // the same-replica events after e2 — via a bitwise OR.
        for e2 in 0..n {
            let mask = &masks[self.events[e2].replica.index()];
            let mut any = 0u64;
            for (w, t) in targets.iter_mut().enumerate() {
                *t = if w < e2 / 64 {
                    0
                } else {
                    mask[w] & bits::above_word(e2, w)
                };
                any |= *t;
            }
            if any == 0 {
                continue;
            }
            let preds: Vec<usize> = vis.predecessors(e2).collect();
            for &e1 in &preds {
                vis.or_into_row(e1, &targets);
            }
        }
        AbstractExecution::from_parts(self.events.clone(), vis)
    }

    /// Like [`build`](Self::build), but additionally takes the transitive
    /// closure of `vis` — convenient for constructing causally consistent
    /// executions (Definition 12).
    ///
    /// # Errors
    ///
    /// As for [`build`](Self::build).
    pub fn build_transitive(&self) -> Result<AbstractExecution, AbstractExecutionError> {
        let a = self.build()?;
        let vis = a.vis.transitive_closure();
        AbstractExecution::from_parts(a.events, vis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }

    fn two_replica_exec() -> AbstractExecution {
        let mut b = AbstractExecutionBuilder::new();
        let w = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let rd = b.push(r(1), x(0), Op::Read, ReturnValue::values([v(1)]));
        b.vis(w, rd);
        b.build().unwrap()
    }

    #[test]
    fn builder_inserts_program_order() {
        let mut b = AbstractExecutionBuilder::new();
        b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        b.push(r(0), x(0), Op::Write(v(2)), ReturnValue::Ok);
        let a = b.build().unwrap();
        assert!(a.sees(0, 1));
    }

    #[test]
    fn builder_session_closure() {
        // w at R0 visible to e at R1; later event at R1 must also see w.
        let mut b = AbstractExecutionBuilder::new();
        let w = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let e = b.push(r(1), x(0), Op::Read, ReturnValue::values([v(1)]));
        let later = b.push(r(1), x(1), Op::Write(v(2)), ReturnValue::Ok);
        b.vis(w, e);
        let a = b.build().unwrap();
        assert!(a.sees(w, later), "session closure must add w -> later");
    }

    #[test]
    fn vis_against_history_rejected() {
        let mut b = AbstractExecutionBuilder::new();
        let e0 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let e1 = b.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        b.vis(e1, e0);
        assert!(matches!(
            b.build().unwrap_err(),
            AbstractExecutionError::VisAgainstHistoryOrder { .. }
        ));
    }

    #[test]
    fn validate_catches_missing_program_order() {
        let events = vec![
            AbstractDo {
                replica: r(0),
                obj: x(0),
                op: Op::Write(v(1)),
                rval: ReturnValue::Ok,
            },
            AbstractDo {
                replica: r(0),
                obj: x(0),
                op: Op::Write(v(2)),
                rval: ReturnValue::Ok,
            },
        ];
        let vis = Relation::new(2);
        let err = AbstractExecution::from_parts(events, vis).unwrap_err();
        assert!(matches!(
            err,
            AbstractExecutionError::MissingProgramOrderEdge { from: 0, to: 1 }
        ));
    }

    #[test]
    fn validate_catches_domain_mismatch() {
        let events = vec![AbstractDo {
            replica: r(0),
            obj: x(0),
            op: Op::Read,
            rval: ReturnValue::empty(),
        }];
        let err = AbstractExecution::from_parts(events, Relation::new(3)).unwrap_err();
        assert!(matches!(err, AbstractExecutionError::DomainMismatch { .. }));
    }

    #[test]
    fn prefix_is_prefix_closed() {
        let a = two_replica_exec();
        let p = a.prefix(1);
        assert_eq!(p.len(), 1);
        assert!(p.validate().is_ok());
        assert_eq!(a.prefix(2), a);
        assert_eq!(a.prefix(0).len(), 0);
    }

    #[test]
    fn project_object_keeps_indices() {
        let mut b = AbstractExecutionBuilder::new();
        b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        b.push(r(0), x(1), Op::Write(v(2)), ReturnValue::Ok);
        b.push(r(0), x(0), Op::Read, ReturnValue::values([v(1)]));
        let a = b.build().unwrap();
        let (proj, keep) = a.project_object(x(0));
        assert_eq!(keep, vec![0, 2]);
        assert_eq!(proj.len(), 2);
        assert!(proj.sees(0, 1));
        assert!(proj.validate().is_ok());
    }

    #[test]
    fn equivalence_ignores_interleaving() {
        // Same per-replica observations, different global order.
        let mut b1 = AbstractExecutionBuilder::new();
        b1.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        b1.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        let a1 = b1.build().unwrap();

        let mut b2 = AbstractExecutionBuilder::new();
        b2.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        b2.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let a2 = b2.build().unwrap();

        assert!(a1.is_equivalent(&a2));
        assert!(a1.is_equivalent(&a1));
    }

    #[test]
    fn equivalence_detects_response_difference() {
        let mut b1 = AbstractExecutionBuilder::new();
        b1.push(r(0), x(0), Op::Read, ReturnValue::empty());
        let a1 = b1.build().unwrap();
        let mut b2 = AbstractExecutionBuilder::new();
        b2.push(r(0), x(0), Op::Read, ReturnValue::values([v(1)]));
        let a2 = b2.build().unwrap();
        assert!(!a1.is_equivalent(&a2));
    }

    #[test]
    fn writes_of_value_lookup() {
        let a = two_replica_exec();
        assert_eq!(a.writes_of_value(x(0), v(1)), vec![0]);
        assert!(a.writes_of_value(x(0), v(9)).is_empty());
        assert!(a.writes_of_value(x(1), v(1)).is_empty());
    }

    #[test]
    fn update_events_filter() {
        let a = two_replica_exec();
        assert_eq!(a.update_events(), vec![0]);
    }

    #[test]
    fn build_transitive_closes_vis() {
        let mut b = AbstractExecutionBuilder::new();
        let w0 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let w1 = b.push(r(1), x(1), Op::Write(v(2)), ReturnValue::Ok);
        let w2 = b.push(r(2), x(2), Op::Write(v(3)), ReturnValue::Ok);
        b.vis(w0, w1).vis(w1, w2);
        let a = b.build_transitive().unwrap();
        assert!(a.sees(w0, w2));
        let plain = {
            let mut b2 = AbstractExecutionBuilder::new();
            b2.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
            b2.push(r(1), x(1), Op::Write(v(2)), ReturnValue::Ok);
            b2.push(r(2), x(2), Op::Write(v(3)), ReturnValue::Ok);
            b2.vis(0, 1).vis(1, 2);
            b2.build().unwrap()
        };
        assert!(!plain.sees(w0, w2));
    }

    #[test]
    fn display_lists_vis_predecessors() {
        let a = two_replica_exec();
        let s = a.display();
        assert!(s.contains("vis⁻¹={0}"));
    }
}
