//! Firing: raw hash collections — by import, alias, construction and
//! fully-qualified path.

use std::collections::HashMap;
use std::collections::HashSet as Seen;

fn build() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: Seen = Seen::new();
    let q = std::collections::HashSet::<u32>::new();
    m.len() + s.len() + q.len()
}
