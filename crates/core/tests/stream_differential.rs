//! Streaming-vs-batch differential suite.
//!
//! Drives every store of the seven-store conformance matrix through
//! schedules with drop, duplication and partition faults, with the
//! streaming checker attached as an observer, then pins the streaming
//! verdicts — including the exact first-violation witnesses — against the
//! batch checkers run on the assembled witness abstract execution. The
//! batch checkers are the specification; the streaming checker must agree
//! event for event.

use haec_core::consistency::{causal, eventual, sessions};
use haec_core::stream::{StreamConfig, StreamError};
use haec_sim::obs::stream::StreamObserver;
use haec_sim::obs::{self, json::Json};
use haec_sim::{
    explore_with, ExplorationConfig, Partition, ReportConfig, RunReport, ScheduleConfig,
};
use haec_stores::conformance_matrix;

const WINDOW: usize = 32;

fn fault_schedules() -> Vec<(&'static str, ScheduleConfig)> {
    vec![
        (
            "drop",
            ScheduleConfig {
                drop_prob: 0.2,
                dup_prob: 0.0,
                ..ScheduleConfig::default()
            },
        ),
        (
            "duplicate",
            ScheduleConfig {
                drop_prob: 0.0,
                dup_prob: 0.25,
                ..ScheduleConfig::default()
            },
        ),
        (
            "partition",
            ScheduleConfig {
                drop_prob: 0.0,
                dup_prob: 0.0,
                partition: Some(Partition {
                    from_step: 20,
                    to_step: 120,
                    group: vec![0],
                }),
                ..ScheduleConfig::default()
            },
        ),
    ]
}

/// Runs one store under one fault schedule with the streaming checker
/// attached; returns `(violations_seen, events_checked)`.
fn differential_run(
    factory: &dyn haec_model::StoreFactory,
    conf_spec: haec_core::SpecKind,
    schedule: &ScheduleConfig,
    seed: u64,
    label: &str,
) -> (usize, usize) {
    let config = ExplorationConfig {
        spec: conf_spec,
        schedule: schedule.clone(),
        ..ExplorationConfig::default()
    };
    let stream = obs::shared(
        StreamObserver::new(StreamConfig {
            n_replicas: config.n_replicas,
            window: WINDOW,
            gc_window: None,
        })
        .unwrap(),
    );
    let handle = stream.clone();
    let rep = explore_with(factory, &config, seed, move |sim| {
        sim.attach_observer(Box::new(handle));
    });
    let stream = stream.borrow();
    let checker = stream.checker();
    let a = rep
        .abstract_execution
        .as_ref()
        .unwrap_or_else(|e| panic!("{label}: witness failed: {e}"));
    assert_eq!(
        checker.error().cloned(),
        None::<StreamError>,
        "{label}: stream checker errored"
    );
    assert_eq!(checker.len(), a.len(), "{label}: event count");
    // Exact verdict-and-witness equality, checker by checker.
    assert_eq!(checker.causal(), causal::check(a), "{label}: causal");
    assert_eq!(
        checker.eventual(),
        eventual::check_prefix(a, WINDOW),
        "{label}: eventual"
    );
    assert_eq!(
        checker.monotonic_writes(),
        sessions::check_monotonic_writes(a),
        "{label}: monotonic writes"
    );
    assert_eq!(
        checker.writes_follow_reads(),
        sessions::check_writes_follow_reads(a),
        "{label}: writes follow reads"
    );
    assert_eq!(
        checker.sessions(),
        sessions::check_all(a),
        "{label}: sessions"
    );
    let violations = usize::from(checker.causal().is_err())
        + usize::from(checker.eventual().is_err())
        + usize::from(checker.sessions().is_err());
    (violations, checker.len())
}

#[test]
fn streaming_matches_batch_across_the_conformance_matrix() {
    let mut total_events = 0;
    let mut total_violations = 0;
    for (factory, conf) in conformance_matrix() {
        for (fault, schedule) in fault_schedules() {
            for seed in 0..4 {
                let label = format!("{}/{fault}/seed{seed}", factory.name());
                let (violations, events) =
                    differential_run(&*factory, conf.spec, &schedule, seed, &label);
                total_events += events;
                total_violations += violations;
            }
        }
    }
    assert!(
        total_events > 5_000,
        "matrix too small to mean anything: {total_events} events"
    );
    // The matrix includes LWW (causally broken by design) and windowed
    // eventual checks under partitions — agreement on a matrix with zero
    // violations would be vacuous.
    assert!(
        total_violations > 0,
        "differential matrix never exercised a violating verdict"
    );
}

#[test]
fn streaming_gc_window_only_suppresses_violations() {
    // The bounded-window fallback force-retires unstable events; it may
    // therefore miss violations the exact checker pins, but must never
    // invent one, and whenever it does report, the witness must be one the
    // exact checker also reports.
    for (factory, conf) in conformance_matrix() {
        let config = ExplorationConfig {
            spec: conf.spec,
            schedule: ScheduleConfig {
                drop_prob: 0.15,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        let make = |gc_window: Option<usize>| {
            obs::shared(
                StreamObserver::new(StreamConfig {
                    n_replicas: config.n_replicas,
                    window: WINDOW,
                    gc_window,
                })
                .unwrap(),
            )
        };
        let exact = make(None);
        let windowed = make(Some(48));
        for obs_handle in [&exact, &windowed] {
            let handle = obs_handle.clone();
            explore_with(&*factory, &config, 11, move |sim| {
                sim.attach_observer(Box::new(handle));
            });
        }
        let exact = exact.borrow();
        let windowed = windowed.borrow();
        if let Err(v) = windowed.checker().causal() {
            assert_eq!(exact.checker().causal(), Err(v), "{}", factory.name());
        }
        if let Err(v) = windowed.checker().sessions() {
            assert_eq!(exact.checker().sessions(), Err(v), "{}", factory.name());
        }
        assert!(
            windowed.checker().stats().live <= exact.checker().stats().live,
            "{}: forced retirement must not grow the frontier",
            factory.name()
        );
    }
}

#[test]
fn stream_report_section_is_byte_identical_per_seed() {
    // Incremental-feed-order determinism: two full collections from the
    // same seed must render the identical `stream` section (and identical
    // normalized report overall).
    for (factory, conf) in conformance_matrix() {
        let config = ReportConfig {
            exploration: ExplorationConfig {
                spec: conf.spec,
                ..ExplorationConfig::default()
            },
            ..ReportConfig::default()
        };
        let one = RunReport::collect(&*factory, &config, 42);
        let two = RunReport::collect(&*factory, &config, 42);
        assert_eq!(
            one.to_json_normalized(),
            two.to_json_normalized(),
            "{}: normalized reports diverge",
            factory.name()
        );
        let section = |r: &RunReport| {
            Json::parse(&r.to_json_string())
                .expect("valid JSON")
                .get("stream")
                .expect("stream section")
                .render()
        };
        assert_eq!(section(&one), section(&two), "{}", factory.name());
        assert_eq!(one.stream, two.stream, "{}", factory.name());
    }
}
