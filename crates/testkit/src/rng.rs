//! Deterministic pseudo-random numbers: a SplitMix64-seeded xoshiro256++
//! core.
//!
//! The generator is fixed for all time: its output for a given seed is
//! part of the repo's test contract, so a counterexample seed printed by
//! any run (property test, scheduler trace, liveness run) replays the
//! identical behaviour on every platform and in every future version.
//! That is the property an external `rand` dependency cannot give us —
//! its streams change across crate versions.
//!
//! xoshiro256++ (Blackman & Vigna) passes BigCrush and is a few
//! instructions per draw; SplitMix64 turns a single `u64` seed into the
//! 256-bit state, guaranteeing a non-zero state for every seed.

/// Advances a SplitMix64 state and returns the next output.
///
/// Public so derived seed streams (e.g. per-case seeds in the property
/// runner) use the same well-mixed step everywhere.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded deterministic PRNG (xoshiro256++).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is derived from `seed` via
    /// SplitMix64, as the xoshiro authors recommend.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.next_f64() < p
    }

    /// A uniform sample from `range` (integers are unbiased via rejection
    /// sampling).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// An unbiased draw from `[0, span)`.
    ///
    /// This is the one bounded-sampling primitive every harness draw goes
    /// through (directly or via [`gen_range`](Self::gen_range)): power-of-
    /// two spans mask the raw stream, all other spans use Lemire-style
    /// threshold rejection — never a bare `next_u64() % span`, whose
    /// modulo bias favours the low residues of spans that do not divide
    /// 2⁶⁴. The workload samplers pin this with a frequency-distribution
    /// test.
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    pub fn bounded(&mut self, span: u64) -> u64 {
        assert!(span > 0, "bounded: empty span");
        sample_u64_span(self, span)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Splits off an independent generator (for derived streams that must
    /// not perturb the parent's sequence length-sensitively).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`.
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

/// Unbiased `[0, span)` via Lemire-style threshold rejection on the low
/// bits of the 64-bit stream.
fn sample_u64_span(rng: &mut Rng, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        if x >= threshold {
            return x % span;
        }
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                lo + sample_u64_span(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(sample_u64_span(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_int!(i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + rng.next_f64() * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v < hi {
            v
        } else {
            lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 0, so the stream can never drift
    /// silently (these are the xoshiro256++ values for the SplitMix64
    /// expansion of 0 — part of the repo's replay contract).
    #[test]
    fn stream_is_pinned() {
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        // Distinct seeds give distinct streams.
        assert_ne!(first[0], Rng::seed_from_u64(1).next_u64());
    }

    #[test]
    fn splitmix_reference_values() {
        // Known-answer test from the SplitMix64 reference implementation
        // (seed 1234567).
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 0x599e_d017_fb08_fc85);
    }

    #[test]
    fn ranges_are_in_bounds_and_cover() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1000 {
            let v = r.gen_range(10u64..11);
            assert_eq!(v, 10);
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(3u32..3);
    }

    #[test]
    #[should_panic(expected = "empty span")]
    fn bounded_zero_span_panics() {
        let _ = Rng::seed_from_u64(0).bounded(0);
    }

    /// Frequency-distribution pin for the unbiased bounded draw: over a
    /// deliberately awkward span (a non-power-of-two that does not divide
    /// 2⁶⁴), every residue's frequency stays within a fixed tolerance of
    /// uniform. A `next_u64() % span` sampler is biased by ~2⁻⁶⁴ per draw
    /// here — invisible at this sample size — so the real guard is the
    /// code path (threshold rejection) plus this distribution check
    /// catching gross regressions; the seed is fixed, so the counts are
    /// exact and the test can never flake.
    #[test]
    fn bounded_frequency_distribution_is_uniform() {
        let mut r = Rng::seed_from_u64(0xB1A5);
        for span in [3u64, 5, 6, 7, 11, 48] {
            let draws = span * 4_000;
            let mut counts = vec![0u64; span as usize];
            for _ in 0..draws {
                counts[r.bounded(span) as usize] += 1;
            }
            let expect = draws / span;
            for (v, &c) in counts.iter().enumerate() {
                // Fixed tolerance: ±8% of the expected bin count (the
                // worst observed deviation for this seed is under 5%).
                assert!(
                    c.abs_diff(expect) * 100 <= expect * 8,
                    "span {span}, value {v}: {c} draws vs expected {expect}"
                );
            }
        }
    }

    /// The power-of-two fast path and the rejection path agree on range:
    /// both cover every value and stay in bounds.
    #[test]
    fn bounded_covers_both_paths() {
        let mut r = Rng::seed_from_u64(17);
        for span in [4u64, 5] {
            let mut seen = vec![false; span as usize];
            for _ in 0..1000 {
                let v = r.bounded(span);
                assert!(v < span);
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "span {span}: {seen:?}");
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut r = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to id");
        assert!(v.contains(r.choose(&v).unwrap()));
        assert_eq!(r.choose::<u32>(&[]), None);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut a = Rng::seed_from_u64(3);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
