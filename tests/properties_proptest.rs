//! Property-based tests (proptest) over the core data structures and the
//! end-to-end store/checker pipeline.

use haec::prelude::*;
use haec::stores::wire::{BitReader, BitWriter};
use haec_model::Relation;
use proptest::prelude::*;

proptest! {
    /// Elias-gamma roundtrips for arbitrary positive integers.
    #[test]
    fn gamma_roundtrip(v in 1u64..u64::MAX / 2) {
        let mut w = BitWriter::new();
        w.write_gamma(v);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        prop_assert_eq!(r.read_gamma().unwrap(), v);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Mixed bit-stream roundtrips.
    #[test]
    fn mixed_stream_roundtrip(values in prop::collection::vec((0u64..1_000_000, 1u32..21), 1..40)) {
        let mut w = BitWriter::new();
        for &(v, width) in &values {
            let v = v & ((1u64 << width) - 1);
            w.write_bits(v, width);
            w.write_gamma0(v);
        }
        let p = w.finish();
        let mut r = BitReader::new(&p);
        for &(v, width) in &values {
            let v = v & ((1u64 << width) - 1);
            prop_assert_eq!(r.read_bits(width).unwrap(), v);
            prop_assert_eq!(r.read_gamma0().unwrap(), v);
        }
    }

    /// Transitive closure is idempotent, monotone, and preserves acyclicity
    /// of forward-only relations.
    #[test]
    fn closure_properties(edges in prop::collection::vec((0usize..12, 0usize..12), 0..40)) {
        let mut rel = Relation::new(12);
        for &(i, j) in &edges {
            if i < j {
                rel.insert(i, j); // forward edges only: a DAG
            }
        }
        let c1 = rel.transitive_closure();
        let c2 = c1.transitive_closure();
        prop_assert_eq!(&c1, &c2);
        prop_assert!(rel.is_subset_of(&c1));
        prop_assert!(c1.is_acyclic());
        prop_assert!(c1.is_transitive());
    }

    /// Version vectors: merge is a least upper bound.
    #[test]
    fn vv_merge_lub(a in prop::collection::vec(0u32..1000, 4), b in prop::collection::vec(0u32..1000, 4)) {
        use haec::stores::vv::VersionVector;
        let mut va = VersionVector::new(4);
        let mut vb = VersionVector::new(4);
        for i in 0..4 {
            va.set(ReplicaId::new(i as u32), a[i]);
            vb.set(ReplicaId::new(i as u32), b[i]);
        }
        let mut m = va.clone();
        m.merge(&vb);
        prop_assert!(m.dominates(&va));
        prop_assert!(m.dominates(&vb));
        // Least: any dominator of both dominates the merge.
        let mut big = va.clone();
        big.merge(&vb);
        prop_assert!(big.dominates(&m) && m.dominates(&big));
    }

    /// End to end: any random schedule of the DVV MVR store yields a
    /// correct, causally consistent witness abstract execution, and
    /// quiescing it yields replica agreement.
    #[test]
    fn dvv_store_always_causal(seed in 0u64..5000) {
        let config = ExplorationConfig {
            schedule: ScheduleConfig {
                steps: 120,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        let rep = explore(&DvvMvrStore, &config, seed);
        prop_assert!(rep.is_causally_consistent(), "{rep}");
    }

    /// The ORset store under arbitrary schedules is correct and causal.
    #[test]
    fn orset_store_always_causal(seed in 0u64..2000) {
        let config = ExplorationConfig {
            spec: SpecKind::OrSet,
            schedule: ScheduleConfig {
                steps: 100,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        let rep = explore(&OrSetStore, &config, seed);
        prop_assert!(rep.is_causally_consistent(), "{rep}");
    }

    /// The enable-wins flag store under arbitrary schedules is correct and
    /// causal.
    #[test]
    fn ewflag_store_always_causal(seed in 0u64..1500) {
        let config = ExplorationConfig {
            spec: SpecKind::EwFlag,
            schedule: ScheduleConfig {
                steps: 100,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        let rep = explore(&haec::stores::EwFlagStore, &config, seed);
        prop_assert!(rep.is_causally_consistent(), "{rep}");
    }

    /// The COPS-style compressed-dependency store under arbitrary schedules
    /// is correct and causal.
    #[test]
    fn cops_store_always_causal(seed in 0u64..1500) {
        let config = ExplorationConfig {
            schedule: ScheduleConfig {
                steps: 100,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        let rep = explore(&haec::stores::CopsStore, &config, seed);
        prop_assert!(rep.is_causally_consistent(), "{rep}");
    }

    /// Trace serialization round-trips arbitrary simulator runs exactly.
    #[test]
    fn trace_roundtrip_random_runs(seed in 0u64..2000) {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 2));
        let mut wl = Workload::new(SpecKind::Mvr, 3, 2, 0.4, KeyDistribution::Uniform);
        let sched = ScheduleConfig { steps: 60, ..ScheduleConfig::default() };
        run_schedule(&mut sim, &mut wl, &sched, seed);
        let text = haec::sim::trace::to_text(sim.execution());
        let back = haec::sim::trace::parse(&text).unwrap();
        prop_assert_eq!(sim.execution(), &back);
    }

    /// The Theorem 6 construction complies for arbitrary generated causal
    /// executions.
    #[test]
    fn construction_always_complies(seed in 0u64..2000) {
        let config = GeneratorConfig {
            events: 18,
            ..GeneratorConfig::default()
        };
        let a = random_causal(&config, seed);
        let report = construct(&DvvMvrStore, &a);
        prop_assert!(report.complies(), "{:?}", report.mismatches);
    }

    /// The Theorem 12 roundtrip is lossless for arbitrary g.
    #[test]
    fn thm12_roundtrip_lossless(g0 in 1u32..12, g1 in 1u32..12, g2 in 1u32..12) {
        let cfg = Thm12Config { n_replicas: 5, n_objects: 4, k: 12 };
        let rt = roundtrip(&DvvMvrStore, &cfg, &[g0, g1, g2]);
        prop_assert!(rt.is_lossless(), "{:?}", rt.decoded);
        prop_assert!(rt.m_g_bits as f64 >= 0.0);
    }

    /// Payload bit accounting is exact for whole bytes.
    #[test]
    fn payload_bits_exact(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let p = Payload::from_bytes(bytes.clone());
        prop_assert_eq!(p.bits(), bytes.len() * 8);
        prop_assert_eq!(p.bytes(), bytes.as_slice());
    }
}

#[test]
fn proptest_config_note() {
    // proptest defaults to 256 cases per property; the seeds above keep
    // each case fast (< 1 ms – 5 ms). This test exists so a plain
    // `cargo test properties_proptest` run shows at least one plain test.
}
