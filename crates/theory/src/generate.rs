//! Random generation of causally consistent (and OCC) abstract executions.
//!
//! The Theorem 6 experiments need a supply of abstract executions to feed
//! the construction. The generator builds them directly — independent of
//! any store — by assigning each event a causally closed set of visible
//! updates and computing responses from the MVR specification, so every
//! generated execution is correct and causally consistent *by
//! construction*. OCC membership is then decided by the checker
//! (`haec_core::occ`), and a dedicated generator produces Figure 3c-style
//! executions that are OCC with genuinely multi-valued reads.

use haec_core::{occ, AbstractExecution, AbstractExecutionBuilder};
use haec_model::{ObjectId, Op, ReplicaId, ReturnValue, Value};
use haec_testkit::Rng;
use std::collections::BTreeSet;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Number of replicas.
    pub n_replicas: usize,
    /// Number of objects.
    pub n_objects: usize,
    /// Number of events to generate.
    pub events: usize,
    /// Fraction of reads.
    pub read_ratio: f64,
    /// Probability that each previously placed update becomes visible to a
    /// new event (before causal closure).
    pub visibility_prob: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n_replicas: 3,
            n_objects: 3,
            events: 20,
            read_ratio: 0.4,
            visibility_prob: 0.4,
        }
    }
}

struct GenUpdate {
    obj: usize,
    value: Value,
    ctx: u64,
    event: usize,
}

/// Generates a random causally consistent, correct MVR abstract execution.
///
/// Deterministic in `(config, seed)`.
///
/// # Panics
///
/// Panics if the configuration implies more than 64 update events.
pub fn random_causal(config: &GeneratorConfig, seed: u64) -> AbstractExecution {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = AbstractExecutionBuilder::new();
    let mut updates: Vec<GenUpdate> = Vec::new();
    // Visible update mask per replica, and the events of each replica.
    let mut visible = vec![0u64; config.n_replicas];
    let mut events_at: Vec<Vec<usize>> = vec![Vec::new(); config.n_replicas];
    let mut reads_at: Vec<Vec<usize>> = vec![Vec::new(); config.n_replicas];
    let mut next_value = 0u64;
    for _ in 0..config.events {
        let r = rng.gen_range(0..config.n_replicas);
        let obj = rng.gen_range(0..config.n_objects);
        // Grow this replica's visible set: sample updates, then close
        // causally.
        let mut vis_mask = visible[r];
        for (id, u) in updates.iter().enumerate() {
            if vis_mask & (1 << id) == 0 && rng.gen_bool(config.visibility_prob) {
                vis_mask |= 1 << id;
                vis_mask |= u.ctx;
            }
        }
        // Close to a fixpoint (contexts may nest).
        loop {
            let mut grown = vis_mask;
            let mut m = vis_mask;
            while m != 0 {
                let id = m.trailing_zeros() as usize;
                m &= m - 1;
                grown |= updates[id].ctx;
            }
            if grown == vis_mask {
                break;
            }
            vis_mask = grown;
        }
        let is_read = rng.gen_bool(config.read_ratio);
        let (op, rval) = if is_read {
            (Op::Read, mvr_frontier(&updates, vis_mask, obj))
        } else {
            next_value += 1;
            (Op::Write(Value::new(next_value)), ReturnValue::Ok)
        };
        let e = b.push(
            ReplicaId::new(r as u32),
            ObjectId::new(obj as u32),
            op,
            rval,
        );
        // Visibility edges: visible updates, plus the read prefix of each
        // visible update's session (transitivity over reads).
        let mut m = vis_mask;
        while m != 0 {
            let id = m.trailing_zeros() as usize;
            m &= m - 1;
            let u_event = updates[id].event;
            b.vis(u_event, e);
            let u_replica = a_replica(&events_at, u_event);
            for &f in &reads_at[u_replica] {
                if f < u_event {
                    b.vis(f, e);
                }
            }
        }
        if is_read {
            reads_at[r].push(e);
        } else {
            assert!(updates.len() < 64, "generator supports at most 64 updates");
            let id = updates.len();
            updates.push(GenUpdate {
                obj,
                value: Value::new(next_value),
                ctx: vis_mask,
                event: e,
            });
            vis_mask |= 1 << id;
        }
        visible[r] = vis_mask;
        events_at[r].push(e);
    }
    b.build()
        .expect("generated execution is structurally valid")
}

fn a_replica(events_at: &[Vec<usize>], event: usize) -> usize {
    events_at
        .iter()
        .position(|evs| evs.contains(&event))
        .expect("event was placed")
}

fn mvr_frontier(updates: &[GenUpdate], vis_mask: u64, obj: usize) -> ReturnValue {
    let ids: Vec<usize> = (0..updates.len())
        .filter(|&id| vis_mask & (1 << id) != 0 && updates[id].obj == obj)
        .collect();
    let mut frontier = BTreeSet::new();
    for &id in &ids {
        let superseded = ids.iter().any(|&id2| updates[id2].ctx & (1 << id) != 0);
        if !superseded {
            frontier.insert(updates[id].value);
        }
    }
    ReturnValue::Values(frontier)
}

/// Generates a random *OCC* abstract execution by rejection sampling over
/// [`random_causal`] (consecutive seeds derived from `seed`), falling back
/// to a Figure 3c-style construction if none is found within `attempts`.
pub fn random_occ(config: &GeneratorConfig, seed: u64, attempts: usize) -> AbstractExecution {
    for i in 0..attempts {
        let a = random_causal(
            config,
            seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
        );
        if occ::check(&a).is_ok() {
            return a;
        }
    }
    fig3c_style(seed)
}

/// Builds a Figure 3c-style OCC execution with a genuinely multi-valued
/// read, parameterised by seed for value diversity.
pub fn fig3c_style(seed: u64) -> AbstractExecution {
    let base = seed.wrapping_mul(97) % 1000;
    let v = |i: u64| Value::new(base * 100 + i);
    let mut b = AbstractExecutionBuilder::new();
    let w1p = b.push(
        ReplicaId::new(0),
        ObjectId::new(1),
        Op::Write(v(10)),
        ReturnValue::Ok,
    );
    let w0 = b.push(
        ReplicaId::new(0),
        ObjectId::new(0),
        Op::Write(v(1)),
        ReturnValue::Ok,
    );
    let w0p = b.push(
        ReplicaId::new(1),
        ObjectId::new(2),
        Op::Write(v(20)),
        ReturnValue::Ok,
    );
    let w1 = b.push(
        ReplicaId::new(1),
        ObjectId::new(0),
        Op::Write(v(2)),
        ReturnValue::Ok,
    );
    let rd = b.push(
        ReplicaId::new(2),
        ObjectId::new(0),
        Op::Read,
        ReturnValue::values([v(1), v(2)]),
    );
    b.vis(w0, rd).vis(w1, rd).vis(w1p, rd).vis(w0p, rd);
    b.build_transitive().expect("figure 3c pattern is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_core::{causal, check_correct, ObjectSpecs, SpecKind};

    fn specs() -> ObjectSpecs {
        ObjectSpecs::uniform(SpecKind::Mvr)
    }

    #[test]
    fn generated_executions_are_correct_and_causal() {
        let config = GeneratorConfig::default();
        for seed in 0..20 {
            let a = random_causal(&config, seed);
            assert_eq!(a.len(), config.events);
            assert!(a.validate().is_ok(), "seed {seed}");
            assert!(
                check_correct(&a, &specs()).is_ok(),
                "seed {seed}: {}",
                a.display()
            );
            assert!(causal::check(&a).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let config = GeneratorConfig::default();
        assert_eq!(random_causal(&config, 5), random_causal(&config, 5));
    }

    #[test]
    fn different_seeds_differ() {
        let config = GeneratorConfig::default();
        assert_ne!(random_causal(&config, 1), random_causal(&config, 2));
    }

    #[test]
    fn bigger_configs_work() {
        let config = GeneratorConfig {
            n_replicas: 5,
            n_objects: 4,
            events: 60,
            read_ratio: 0.5,
            visibility_prob: 0.3,
        };
        let a = random_causal(&config, 9);
        assert!(check_correct(&a, &specs()).is_ok());
        assert!(causal::check(&a).is_ok());
    }

    #[test]
    fn occ_generator_returns_occ_executions() {
        let config = GeneratorConfig::default();
        for seed in 0..10 {
            let a = random_occ(&config, seed, 20);
            assert!(occ::check(&a).is_ok(), "seed {seed}");
            assert!(causal::check(&a).is_ok(), "seed {seed}");
            assert!(check_correct(&a, &specs()).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn fig3c_style_is_occ_with_multivalued_read() {
        let a = fig3c_style(3);
        assert!(occ::check(&a).is_ok());
        let rd = a.len() - 1;
        assert_eq!(a.event(rd).rval.as_values().unwrap().len(), 2);
    }

    #[test]
    fn some_generated_executions_have_concurrency() {
        // With several replicas and moderate visibility, some read should
        // return multiple values across seeds.
        let config = GeneratorConfig {
            events: 40,
            visibility_prob: 0.5,
            ..GeneratorConfig::default()
        };
        let mut found = false;
        for seed in 0..30 {
            let a = random_causal(&config, seed);
            if a.events()
                .iter()
                .any(|e| e.op.is_read() && e.rval.as_values().is_some_and(|v| v.len() >= 2))
            {
                found = true;
                break;
            }
        }
        assert!(found, "no concurrency ever exposed — generator too tame");
    }
}
