//@ lint-path: crates/sim/src/exhaustive/parallel.rs
//! Clean: the identical worker-pool source as
//! `thread_worker_pool_fire.rs`, linted under the one path where the
//! scoped `std::thread` allowance applies (see `thread_exempt` and
//! DESIGN.md §9). Only the path differs — proving the exemption is
//! keyed on the module, not on the code.

use std::thread;

fn fan_out(jobs: &[fn()]) {
    thread::scope(|scope| {
        for job in jobs {
            scope.spawn(|| job());
        }
    });
    std::thread::yield_now();
}
