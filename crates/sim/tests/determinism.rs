//! Byte-identity determinism suite for the service layer.
//!
//! The contract: a [`ServiceReport`] is a pure function of its config —
//! no wall clock, no ambient entropy, no thread-schedule dependence. The
//! strongest form we can pin is byte equality of the rendered JSON, and
//! that is what these tests compare: across repeated runs, across thread
//! counts {1, 2, 8} for the sweep, and per shard count.

use haec_sim::service::{reports_json, run_service, run_service_sweep, ServiceRunConfig};
use haec_sim::{explore_all_parallel, ExhaustiveConfig, ParallelConfig, Simulator};
use haec_stores::service::ServiceConfig;
use haec_stores::DvvMvrStore;

fn sweep_configs() -> Vec<ServiceRunConfig> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&n_shards| ServiceRunConfig {
            service: ServiceConfig {
                n_replicas: 3,
                n_shards,
                n_objects: 48,
                vnodes: 16,
                ..ServiceConfig::default()
            },
            ops: 500,
            n_clients: 40,
            seed: 0xD15C0,
            ..ServiceRunConfig::default()
        })
        .collect()
}

#[test]
fn service_report_json_is_byte_identical_across_repeated_runs() {
    for cfg in sweep_configs() {
        let a = run_service(&DvvMvrStore, &cfg).to_json_string();
        let b = run_service(&DvvMvrStore, &cfg).to_json_string();
        assert_eq!(a, b, "shard count {}", cfg.service.n_shards);
    }
}

#[test]
fn service_sweep_json_is_byte_identical_across_thread_counts() {
    let configs = sweep_configs();
    let baseline = reports_json(&run_service_sweep(&DvvMvrStore, &configs, 1));
    for threads in [2usize, 8] {
        let wide = reports_json(&run_service_sweep(&DvvMvrStore, &configs, threads));
        assert_eq!(
            baseline, wide,
            "sweep JSON must be byte-identical at {threads} threads"
        );
    }
    // And per report, in config order.
    let solo = run_service_sweep(&DvvMvrStore, &configs, 1);
    let wide = run_service_sweep(&DvvMvrStore, &configs, 8);
    for (i, (a, b)) in solo.iter().zip(wide.iter()).enumerate() {
        assert_eq!(a.n_shards, configs[i].service.n_shards, "order preserved");
        assert_eq!(a, b, "config {i}");
    }
}

#[test]
fn parallel_search_report_is_identical_across_thread_counts() {
    // The exhaustive engine's counters (schedules, dedup hits/misses)
    // with POR, symmetry, and dedup all on are a pure function of the
    // config, not of the work-unit partition — same bar as the service
    // sweep above.
    let cfg = ExhaustiveConfig {
        depth: 5,
        dedup: true,
        por: true,
        symmetry: true,
        ..ExhaustiveConfig::default()
    };
    let check = |sim: &Simulator| sim.execution().validate().is_ok();
    let base = explore_all_parallel(&DvvMvrStore, &cfg, &ParallelConfig::with_threads(1), &check);
    assert!(base.all_passed());
    for threads in [2usize, 8] {
        let wide = explore_all_parallel(
            &DvvMvrStore,
            &cfg,
            &ParallelConfig::with_threads(threads),
            &check,
        );
        assert_eq!(base.schedules, wide.schedules, "{threads} threads");
        assert_eq!(base.dedup_hits, wide.dedup_hits, "{threads} threads");
        assert_eq!(base.dedup_misses, wide.dedup_misses, "{threads} threads");
        assert_eq!(base.counterexample, wide.counterexample);
    }
}

#[test]
fn different_seeds_give_different_runs() {
    // Sanity check that byte equality above is not vacuous: the report
    // actually depends on the seed.
    let mut cfg = sweep_configs().remove(0);
    let a = run_service(&DvvMvrStore, &cfg).to_json_string();
    cfg.seed ^= 1;
    let b = run_service(&DvvMvrStore, &cfg).to_json_string();
    assert_ne!(a, b);
}
