//! E7 / §6: cost of the Theorem 12 sweep as the replica count grows — the
//! vector-clock store's O(n·lg k) message regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haec_stores::DvvMvrStore;
use haec_theory::lower_bound::sweep;
use haec_theory::Thm12Config;
use std::hint::black_box;

fn bench_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_growth_with_n");
    for &n in &[4usize, 8, 16] {
        let cfg = Thm12Config {
            n_replicas: n,
            n_objects: 16,
            k: 64,
        };
        group.bench_with_input(BenchmarkId::new("sweep", n), &n, |b, _| {
            b.iter(|| {
                let row = sweep(&DvvMvrStore, black_box(&cfg), 1, 5);
                assert!(row.max_bits as f64 >= row.bound_bits);
                black_box(row.max_bits)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_growth
}
criterion_main!(benches);
