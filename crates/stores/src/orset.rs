//! Observed-remove set store (add-wins, Figure 1(c)).
//!
//! A write-propagating ORset store on the shared [`CausalEngine`]. Per
//! object, a replica keeps the live *add-instances* `(dot, value)`. A
//! `remove(v)` records the dots of the instances it observed; concurrent
//! adds are unaffected — "add wins".

use crate::engine::{rename_dot, CausalEngine, Update, UpdateOp};
use crate::wire::{gamma_len, width_for};
use haec_model::{
    DoOutcome, Dot, ObjectId, Op, Payload, ReplicaId, ReplicaMachine, ReturnValue, StoreConfig,
    StoreFactory, Value,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Factory for the ORset store.
///
/// ```
/// use haec_stores::OrSetStore;
/// use haec_model::{StoreFactory, StoreConfig, ReplicaId, ObjectId, Op, Value, ReturnValue};
///
/// let mut replica = OrSetStore.spawn(ReplicaId::new(0), StoreConfig::new(2, 1));
/// replica.do_op(ObjectId::new(0), &Op::Add(Value::new(3)));
/// let out = replica.do_op(ObjectId::new(0), &Op::Read);
/// assert_eq!(out.rval, ReturnValue::values([Value::new(3)]));
/// ```
#[derive(Copy, Clone, Default, Debug)]
pub struct OrSetStore;

impl StoreFactory for OrSetStore {
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine> {
        Box::new(OrSetReplica {
            engine: CausalEngine::new(replica, config),
            objects: BTreeMap::new(),
        })
    }

    fn name(&self) -> &str {
        "orset"
    }
}

/// One replica of the ORset store.
#[derive(Clone, Debug)]
pub struct OrSetReplica {
    engine: CausalEngine,
    /// Live add-instances per object.
    objects: BTreeMap<ObjectId, BTreeMap<Dot, Value>>,
}

impl OrSetReplica {
    fn apply(&mut self, u: &Update) {
        match &u.op {
            UpdateOp::Add(v) => {
                self.objects.entry(u.obj).or_default().insert(u.dot, *v);
            }
            UpdateOp::Remove(_, dots) => {
                if let Some(inst) = self.objects.get_mut(&u.obj) {
                    for d in dots {
                        inst.remove(d);
                    }
                }
            }
            _ => {}
        }
    }

    fn read(&self, obj: ObjectId) -> ReturnValue {
        ReturnValue::values(
            self.objects
                .get(&obj)
                .into_iter()
                .flat_map(|m| m.values().copied()),
        )
    }

    fn observed_dots(&self, obj: ObjectId, v: Value) -> Vec<Dot> {
        self.objects
            .get(&obj)
            .into_iter()
            .flat_map(|m| m.iter())
            .filter(|&(_, &val)| val == v)
            .map(|(&d, _)| d)
            .collect()
    }
}

impl ReplicaMachine for OrSetReplica {
    fn boxed_clone(&self) -> Box<dyn ReplicaMachine> {
        Box::new(self.clone())
    }

    /// # Panics
    ///
    /// Panics if the operation is not a set operation (add/remove/read).
    fn do_op(&mut self, obj: ObjectId, op: &Op) -> DoOutcome {
        match op {
            Op::Read => DoOutcome::new(self.read(obj), self.engine.visible_dots()),
            Op::Add(v) => {
                let visible = self.engine.visible_dots();
                let u = self.engine.local_update(obj, UpdateOp::Add(*v));
                self.apply(&u);
                DoOutcome::new(ReturnValue::Ok, visible)
            }
            Op::Remove(v) => {
                let visible = self.engine.visible_dots();
                let observed = self.observed_dots(obj, *v);
                let u = self
                    .engine
                    .local_update(obj, UpdateOp::Remove(*v, observed));
                self.apply(&u);
                DoOutcome::new(ReturnValue::Ok, visible)
            }
            other => panic!("ORset store does not support {other}"),
        }
    }

    fn pending_message(&self) -> Option<Payload> {
        self.engine.pending_message()
    }

    fn on_send(&mut self) {
        self.engine.on_send();
    }

    fn on_receive(&mut self, payload: &Payload) {
        for u in self.engine.on_receive(payload) {
            self.apply(&u);
        }
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.engine.hash_into(&mut h);
        self.objects.hash(&mut h);
        h.finish()
    }

    fn state_bits(&self) -> usize {
        let cfg = self.engine.config();
        let inst_bits: usize = self
            .objects
            .values()
            .flat_map(|m| m.iter())
            .map(|(d, v)| {
                width_for(cfg.n_replicas) as usize
                    + gamma_len(d.seq as u64)
                    + gamma_len(v.as_u64() + 1)
            })
            .sum();
        self.engine.state_bits() + inst_bits
    }

    fn state_fingerprint_renamed(&self, perm: &[u32]) -> Option<u64> {
        let mut h = DefaultHasher::new();
        self.engine.hash_renamed_into(perm, &mut h);
        self.objects.len().hash(&mut h);
        for (obj, inst) in &self.objects {
            obj.hash(&mut h);
            // Instances are keyed by dot; re-key (and re-sort) under the
            // renamed dots.
            let mut renamed: Vec<(Dot, Value)> = inst
                .iter()
                .map(|(&d, &v)| (rename_dot(d, perm), v))
                .collect();
            renamed.sort_unstable();
            renamed.hash(&mut h);
        }
        Some(h.finish())
    }

    fn payload_fingerprint_renamed(&self, payload: &Payload, perm: &[u32]) -> Option<u64> {
        self.engine.payload_fingerprint_renamed(payload, perm)
    }
}

/// Factory for an operation-based counter store (extension object).
///
/// Reads return the number of increments applied at the replica.
#[derive(Copy, Clone, Default, Debug)]
pub struct CounterStore;

impl StoreFactory for CounterStore {
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine> {
        Box::new(CounterReplica {
            engine: CausalEngine::new(replica, config),
            counts: BTreeMap::new(),
        })
    }

    fn name(&self) -> &str {
        "counter"
    }
}

/// One replica of the counter store.
#[derive(Clone, Debug)]
pub struct CounterReplica {
    engine: CausalEngine,
    counts: BTreeMap<ObjectId, u64>,
}

impl ReplicaMachine for CounterReplica {
    fn boxed_clone(&self) -> Box<dyn ReplicaMachine> {
        Box::new(self.clone())
    }

    /// # Panics
    ///
    /// Panics if the operation is not a counter operation (inc/read).
    fn do_op(&mut self, obj: ObjectId, op: &Op) -> DoOutcome {
        match op {
            Op::Read => DoOutcome::new(
                ReturnValue::values([Value::new(self.counts.get(&obj).copied().unwrap_or(0))]),
                self.engine.visible_dots(),
            ),
            Op::Inc => {
                let visible = self.engine.visible_dots();
                self.engine.local_update(obj, UpdateOp::Inc);
                *self.counts.entry(obj).or_default() += 1;
                DoOutcome::new(ReturnValue::Ok, visible)
            }
            other => panic!("counter store does not support {other}"),
        }
    }

    fn pending_message(&self) -> Option<Payload> {
        self.engine.pending_message()
    }

    fn on_send(&mut self) {
        self.engine.on_send();
    }

    fn on_receive(&mut self, payload: &Payload) {
        for u in self.engine.on_receive(payload) {
            if matches!(u.op, UpdateOp::Inc) {
                *self.counts.entry(u.obj).or_default() += 1;
            }
        }
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.engine.hash_into(&mut h);
        self.counts.hash(&mut h);
        h.finish()
    }

    fn state_bits(&self) -> usize {
        let count_bits: usize = self.counts.values().map(|&c| gamma_len(c + 1)).sum();
        self.engine.state_bits() + count_bits
    }

    fn state_fingerprint_renamed(&self, perm: &[u32]) -> Option<u64> {
        let mut h = DefaultHasher::new();
        self.engine.hash_renamed_into(perm, &mut h);
        // Counts carry no replica ids — renaming-invariant as stored.
        self.counts.hash(&mut h);
        Some(h.finish())
    }

    fn payload_fingerprint_renamed(&self, payload: &Payload, perm: &[u32]) -> Option<u64> {
        self.engine.payload_fingerprint_renamed(payload, perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StoreConfig {
        StoreConfig::new(3, 2)
    }
    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }
    fn spawn(i: u32) -> Box<dyn ReplicaMachine> {
        OrSetStore.spawn(r(i), cfg())
    }
    fn relay(from: &mut Box<dyn ReplicaMachine>, to: &mut Box<dyn ReplicaMachine>) {
        let msg = from.pending_message().expect("message pending");
        from.on_send();
        to.on_receive(&msg);
    }

    #[test]
    fn add_then_read() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Add(v(1)));
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
    }

    #[test]
    fn observed_remove_removes() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Add(v(1)));
        a.do_op(x(0), &Op::Remove(v(1)));
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::empty());
    }

    #[test]
    fn add_wins_over_concurrent_remove() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        // Both see an initial add.
        a.do_op(x(0), &Op::Add(v(1)));
        relay(&mut a, &mut b);
        // a re-adds (fresh instance) concurrently with b's remove.
        a.do_op(x(0), &Op::Add(v(1)));
        b.do_op(x(0), &Op::Remove(v(1)));
        relay(&mut a, &mut b);
        relay(&mut b, &mut a);
        // The remove only killed the first instance; the concurrent add
        // survives at both replicas.
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
    }

    #[test]
    fn remove_of_absent_element_is_noop() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Remove(v(9)));
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::empty());
        // Still broadcasts (the remove is an update) but removes nothing.
        let mut b = spawn(1);
        b.do_op(x(0), &Op::Add(v(9)));
        relay(&mut a, &mut b);
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(9)]));
    }

    #[test]
    fn multiple_values() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Add(v(1)));
        a.do_op(x(0), &Op::Add(v(2)));
        assert_eq!(
            a.do_op(x(0), &Op::Read).rval,
            ReturnValue::values([v(1), v(2)])
        );
    }

    #[test]
    fn orset_reads_invisible() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Add(v(1)));
        let fp = a.state_fingerprint();
        a.do_op(x(0), &Op::Read);
        assert_eq!(a.state_fingerprint(), fp);
    }

    #[test]
    fn remove_propagates() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Add(v(1)));
        relay(&mut a, &mut b);
        b.do_op(x(0), &Op::Remove(v(1)));
        relay(&mut b, &mut a);
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::empty());
    }

    #[test]
    fn counter_basics() {
        let mut a = CounterStore.spawn(r(0), cfg());
        let mut b = CounterStore.spawn(r(1), cfg());
        a.do_op(x(0), &Op::Inc);
        a.do_op(x(0), &Op::Inc);
        b.do_op(x(0), &Op::Inc);
        let m = a.pending_message().unwrap();
        a.on_send();
        b.on_receive(&m);
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(3)]));
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(2)]));
    }

    #[test]
    fn counter_duplicate_delivery_counts_once() {
        let mut a = CounterStore.spawn(r(0), cfg());
        let mut b = CounterStore.spawn(r(1), cfg());
        a.do_op(x(0), &Op::Inc);
        let m = a.pending_message().unwrap();
        a.on_send();
        b.on_receive(&m);
        b.on_receive(&m);
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn write_on_orset_panics() {
        spawn(0).do_op(x(0), &Op::Write(v(1)));
    }

    #[test]
    fn factory_names() {
        assert_eq!(OrSetStore.name(), "orset");
        assert_eq!(CounterStore.name(), "counter");
    }
}
