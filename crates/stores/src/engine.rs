//! Shared causal-broadcast engine for the dot-based stores.
//!
//! The engine implements the machinery common to the DVV multi-valued
//! register store, the ORset store and the counter store:
//!
//! * assigning [`Dot`]s to local updates and batching them for the next
//!   `send` (op-driven messages: only client operations enqueue updates);
//! * encoding/decoding update batches with the bit-exact [`wire`] format —
//!   every update carries its dependency version vector, giving
//!   `Θ(min{n,s}·lg k)`-bit messages as discussed in §6 of the paper;
//! * causal delivery: remote updates are buffered until their dependencies
//!   are satisfied, then applied in causal order (the buffering technique
//!   the paper notes real causal stores use, §3.1);
//! * duplicate suppression via the applied version vector, so redelivered
//!   messages are harmless.
//!
//! [`wire`]: crate::wire

use crate::service::batch::{self, BatchDecodeError};
use crate::vv::VersionVector;
use crate::wire::{gamma_len, width_for, BitReader, BitWriter, DecodeError};
use haec_model::{Dot, ObjectId, Payload, ReplicaId, StoreConfig, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Renames a dot under the replica permutation `perm` (`perm[old] = new`).
pub(crate) fn rename_dot(d: Dot, perm: &[u32]) -> Dot {
    Dot::new(ReplicaId::new(perm[d.replica.index()]), d.seq)
}

/// Renames a version vector: the entry of replica `old` moves to slot
/// `perm[old]`.
pub(crate) fn rename_vv(vv: &VersionVector, perm: &[u32]) -> VersionVector {
    let mut out = VersionVector::new(vv.len());
    for (i, &e) in vv.entries().iter().enumerate() {
        out.set(ReplicaId::new(perm[i]), e);
    }
    out
}

/// Renames every dot and re-sorts into canonical (renamed-id) order, so the
/// result is independent of the order the original list was accumulated in.
pub(crate) fn rename_dots(dots: &[Dot], perm: &[u32]) -> Vec<Dot> {
    let mut out: Vec<Dot> = dots.iter().map(|&d| rename_dot(d, perm)).collect();
    out.sort_unstable();
    out
}

/// Renames an update record: its dot, its dependency vector, and any dots
/// embedded in the operation (observed add-instances / enables, re-sorted
/// into canonical order).
fn rename_update(u: &Update, perm: &[u32]) -> Update {
    let op = match &u.op {
        UpdateOp::Remove(v, dots) => UpdateOp::Remove(*v, rename_dots(dots, perm)),
        UpdateOp::Disable(dots) => UpdateOp::Disable(rename_dots(dots, perm)),
        other => other.clone(),
    };
    Update {
        dot: rename_dot(u.dot, perm),
        obj: u.obj,
        op,
        deps: rename_vv(&u.deps, perm),
    }
}

/// The update operations carried in messages.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum UpdateOp {
    /// MVR / register write.
    Write(Value),
    /// ORset add.
    Add(Value),
    /// ORset remove; carries the dots of the add-instances it observed.
    Remove(Value, Vec<Dot>),
    /// Counter increment.
    Inc,
    /// Enable-wins flag raise.
    Enable,
    /// Enable-wins flag lower; carries the dots of the enables it observed.
    Disable(Vec<Dot>),
}

const TAG_WRITE: u64 = 0;
const TAG_ADD: u64 = 1;
const TAG_REMOVE: u64 = 2;
const TAG_INC: u64 = 3;
const TAG_ENABLE: u64 = 4;
const TAG_DISABLE: u64 = 5;
const TAG_BITS: u32 = 3;

/// An update record: a dotted operation plus its causal dependencies.
///
/// `deps` is the origin replica's applied version vector *excluding* this
/// update itself; the update is applicable at a replica whose applied vector
/// dominates `deps` and whose entry for the origin is exactly `dot.seq − 1`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Update {
    /// Globally unique identity.
    pub dot: Dot,
    /// The object updated.
    pub obj: ObjectId,
    /// The operation.
    pub op: UpdateOp,
    /// Causal dependencies.
    pub deps: VersionVector,
}

impl Update {
    /// Encodes the update into `w` using the configured replica/object
    /// widths.
    pub(crate) fn encode(&self, w: &mut BitWriter, config: StoreConfig) {
        w.write_bits(
            self.dot.replica.as_u32() as u64,
            width_for(config.n_replicas),
        );
        w.write_gamma(self.dot.seq as u64);
        w.write_bits(self.obj.as_u32() as u64, width_for(config.n_objects));
        match &self.op {
            UpdateOp::Write(v) => {
                w.write_bits(TAG_WRITE, TAG_BITS);
                w.write_gamma0(v.as_u64());
            }
            UpdateOp::Add(v) => {
                w.write_bits(TAG_ADD, TAG_BITS);
                w.write_gamma0(v.as_u64());
            }
            UpdateOp::Remove(v, dots) => {
                w.write_bits(TAG_REMOVE, TAG_BITS);
                w.write_gamma0(v.as_u64());
                w.write_gamma0(dots.len() as u64);
                for d in dots {
                    w.write_bits(d.replica.as_u32() as u64, width_for(config.n_replicas));
                    w.write_gamma(d.seq as u64);
                }
            }
            UpdateOp::Inc => {
                w.write_bits(TAG_INC, TAG_BITS);
            }
            UpdateOp::Enable => {
                w.write_bits(TAG_ENABLE, TAG_BITS);
            }
            UpdateOp::Disable(dots) => {
                w.write_bits(TAG_DISABLE, TAG_BITS);
                w.write_gamma0(dots.len() as u64);
                for d in dots {
                    w.write_bits(d.replica.as_u32() as u64, width_for(config.n_replicas));
                    w.write_gamma(d.seq as u64);
                }
            }
        }
        for &e in self.deps.entries() {
            w.write_gamma0(e as u64);
        }
    }

    pub(crate) fn decode(
        r: &mut BitReader<'_>,
        config: StoreConfig,
    ) -> Result<Update, DecodeError> {
        let replica = ReplicaId::new(r.read_bits(width_for(config.n_replicas))? as u32);
        let seq = r.read_gamma()? as u32;
        let obj = ObjectId::new(r.read_bits(width_for(config.n_objects))? as u32);
        let tag = r.read_bits(TAG_BITS)?;
        let op = match tag {
            TAG_WRITE => UpdateOp::Write(Value::new(r.read_gamma0()?)),
            TAG_ADD => UpdateOp::Add(Value::new(r.read_gamma0()?)),
            TAG_REMOVE => {
                let v = Value::new(r.read_gamma0()?);
                let count = r.read_gamma0()? as usize;
                let mut dots = Vec::with_capacity(count);
                for _ in 0..count {
                    let dr = ReplicaId::new(r.read_bits(width_for(config.n_replicas))? as u32);
                    let ds = r.read_gamma()? as u32;
                    dots.push(Dot::new(dr, ds));
                }
                UpdateOp::Remove(v, dots)
            }
            TAG_ENABLE => UpdateOp::Enable,
            TAG_DISABLE => {
                let count = r.read_gamma0()? as usize;
                let mut dots = Vec::with_capacity(count);
                for _ in 0..count {
                    let dr = ReplicaId::new(r.read_bits(width_for(config.n_replicas))? as u32);
                    let ds = r.read_gamma()? as u32;
                    dots.push(Dot::new(dr, ds));
                }
                UpdateOp::Disable(dots)
            }
            _ => UpdateOp::Inc,
        };
        let mut deps = VersionVector::new(config.n_replicas);
        for i in 0..config.n_replicas {
            deps.set(ReplicaId::new(i as u32), r.read_gamma0()? as u32);
        }
        Ok(Update {
            dot: Dot::new(replica, seq),
            obj,
            op,
            deps,
        })
    }

    /// Exact encoded size in bits under the given configuration.
    pub fn encoded_bits(&self, config: StoreConfig) -> usize {
        let mut w = BitWriter::new();
        self.encode(&mut w, config);
        w.len_bits()
    }
}

/// The shared causal-broadcast state of one replica.
#[derive(Clone, Debug)]
pub struct CausalEngine {
    replica: ReplicaId,
    config: StoreConfig,
    /// Applied update counts per origin (contiguous).
    vv: VersionVector,
    /// Local updates not yet broadcast.
    outbox: Vec<Update>,
    /// Remote updates waiting for their dependencies.
    buffer: Vec<Update>,
}

impl CausalEngine {
    /// Creates the engine for one replica.
    pub fn new(replica: ReplicaId, config: StoreConfig) -> Self {
        CausalEngine {
            replica,
            config,
            vv: VersionVector::new(config.n_replicas),
            outbox: Vec::new(),
            buffer: Vec::new(),
        }
    }

    /// This replica's id.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The applied version vector.
    pub fn vv(&self) -> &VersionVector {
        &self.vv
    }

    /// Records a local update: assigns the next dot, advances the applied
    /// vector and queues the update for the next broadcast. Returns the
    /// update (the caller applies it to its object state).
    pub fn local_update(&mut self, obj: ObjectId, op: UpdateOp) -> Update {
        let mut deps = self.vv.clone();
        let seq = self.vv.advance(self.replica);
        deps.set(self.replica, seq - 1);
        let upd = Update {
            dot: Dot::new(self.replica, seq),
            obj,
            op,
            deps,
        };
        self.outbox.push(upd.clone());
        upd
    }

    /// The message that would be broadcast from the current state: the
    /// encoded outbox as one update batch (shared header + N records, see
    /// [`service::batch`]), or `None` when the outbox is empty (no message
    /// pending). Deterministic in the state.
    ///
    /// [`service::batch`]: crate::service::batch
    pub fn pending_message(&self) -> Option<Payload> {
        if self.outbox.is_empty() {
            return None;
        }
        Some(batch::encode_batch(&self.outbox, self.config))
    }

    /// Size in bits of the pending message, if any.
    pub fn pending_bits(&self) -> usize {
        self.pending_message().map_or(0, |p| p.bits())
    }

    /// Marks the outbox broadcast: after a `send` nothing is pending.
    ///
    /// # Panics
    ///
    /// Panics if no message was pending (the model only schedules `send`
    /// when one is).
    pub fn on_send(&mut self) {
        assert!(
            !self.outbox.is_empty(),
            "send scheduled with no pending message"
        );
        self.outbox.clear();
    }

    /// Decodes a received message, buffers its updates, and returns the
    /// updates that became applicable, in causal order. Duplicates (dots
    /// already covered) are dropped; malformed payloads are ignored *in
    /// their entirety* (the network is untrusted, the engine is not): the
    /// decode is all-or-nothing, so a truncated batch never applies a
    /// prefix of its updates.
    pub fn on_receive(&mut self, payload: &Payload) -> Vec<Update> {
        self.try_receive(payload).unwrap_or_default()
    }

    /// [`on_receive`](Self::on_receive) with the failure surfaced: a
    /// corrupt or truncated batch returns the [`BatchDecodeError`] naming
    /// the failing update index, and the engine state is untouched — fail
    /// closed, no partial application.
    ///
    /// # Errors
    ///
    /// Returns the batch decode error; the engine buffers nothing on
    /// error.
    pub fn try_receive(&mut self, payload: &Payload) -> Result<Vec<Update>, BatchDecodeError> {
        let updates = batch::decode_batch(payload, self.config)?;
        for u in updates {
            if !self.vv.contains(u.dot) && !self.buffer.iter().any(|b| b.dot == u.dot) {
                self.buffer.push(u);
            }
        }
        Ok(self.drain_ready())
    }

    fn drain_ready(&mut self) -> Vec<Update> {
        let mut applied = Vec::new();
        loop {
            let idx = self.buffer.iter().position(|u| {
                u.dot.seq == self.vv.get(u.dot.replica) + 1 && self.vv.dominates(&u.deps)
            });
            let Some(i) = idx else { break };
            let u = self.buffer.swap_remove(i);
            self.vv.advance(u.dot.replica);
            applied.push(u);
        }
        applied
    }

    /// All dots applied at this replica — the visibility witness.
    pub fn visible_dots(&self) -> Vec<Dot> {
        self.vv.dots().collect()
    }

    /// Hash of the engine state (for fingerprinting).
    pub fn hash_into(&self, h: &mut DefaultHasher) {
        self.vv.hash(h);
        self.outbox.hash(h);
        // Buffer contents are state too; order-insensitive hash.
        let mut dots: Vec<&Update> = self.buffer.iter().collect();
        dots.sort_by_key(|u| u.dot);
        dots.hash(h);
    }

    /// Approximate canonical size in bits of the engine state (vv + outbox
    /// + buffer), for the state-space experiments.
    pub fn state_bits(&self) -> usize {
        let vv_bits: usize = self
            .vv
            .entries()
            .iter()
            .map(|&e| gamma_len(e as u64 + 1))
            .sum();
        let pending: usize = self
            .outbox
            .iter()
            .chain(self.buffer.iter())
            .map(|u| u.encoded_bits(self.config))
            .sum();
        vv_bits + pending
    }

    /// Returns `true` if there are buffered (not yet applicable) updates.
    pub fn has_buffered(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Hash of the engine state under the replica renaming `perm`, feeding
    /// the store-level `state_fingerprint_renamed` implementations. The
    /// buffer is sorted by *renamed* dot so π-related buffers hash equal
    /// regardless of arrival order under the old ids.
    pub fn hash_renamed_into(&self, perm: &[u32], h: &mut DefaultHasher) {
        rename_vv(&self.vv, perm).hash(h);
        // Outbox order is program order — invariant under renaming.
        for u in &self.outbox {
            rename_update(u, perm).hash(h);
        }
        self.outbox.len().hash(h);
        let mut buf: Vec<Update> = self.buffer.iter().map(|u| rename_update(u, perm)).collect();
        buf.sort_by_key(|u| u.dot);
        buf.hash(h);
    }

    /// Fingerprint of a wire payload under the replica renaming `perm`.
    /// Pure in `(payload, perm, config)` — decodes the update sequence,
    /// renames each record, and hashes the renamed sequence. `None` if the
    /// payload does not decode (the identity fingerprint of a π-related
    /// payload would fail identically, so collision safety is preserved).
    pub fn payload_fingerprint_renamed(&self, payload: &Payload, perm: &[u32]) -> Option<u64> {
        let mut r = BitReader::new(payload);
        let count = r.read_gamma0().ok()?;
        let mut h = DefaultHasher::new();
        count.hash(&mut h);
        for _ in 0..count {
            let u = Update::decode(&mut r, self.config).ok()?;
            rename_update(&u, perm).hash(&mut h);
        }
        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StoreConfig {
        StoreConfig::new(3, 2)
    }
    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }

    #[test]
    fn local_update_assigns_contiguous_dots() {
        let mut e = CausalEngine::new(r(0), cfg());
        let u1 = e.local_update(x(0), UpdateOp::Write(v(1)));
        let u2 = e.local_update(x(1), UpdateOp::Write(v(2)));
        assert_eq!(u1.dot, Dot::new(r(0), 1));
        assert_eq!(u2.dot, Dot::new(r(0), 2));
        assert!(u2.deps.contains(u1.dot));
        assert!(!u1.deps.contains(u1.dot));
    }

    #[test]
    fn message_roundtrip() {
        let mut e = CausalEngine::new(r(0), cfg());
        e.local_update(x(0), UpdateOp::Write(v(7)));
        e.local_update(x(1), UpdateOp::Add(v(8)));
        e.local_update(x(1), UpdateOp::Remove(v(8), vec![Dot::new(r(0), 2)]));
        e.local_update(x(0), UpdateOp::Inc);
        let msg = e.pending_message().expect("pending");
        let mut recv = CausalEngine::new(r(1), cfg());
        let applied = recv.on_receive(&msg);
        assert_eq!(applied.len(), 4);
        assert_eq!(applied[0].op, UpdateOp::Write(v(7)));
        assert_eq!(
            applied[2].op,
            UpdateOp::Remove(v(8), vec![Dot::new(r(0), 2)])
        );
        assert_eq!(recv.vv().get(r(0)), 4);
    }

    #[test]
    fn send_clears_pending() {
        let mut e = CausalEngine::new(r(0), cfg());
        e.local_update(x(0), UpdateOp::Inc);
        assert!(e.pending_message().is_some());
        e.on_send();
        assert!(e.pending_message().is_none());
    }

    #[test]
    #[should_panic(expected = "no pending message")]
    fn send_without_pending_panics() {
        CausalEngine::new(r(0), cfg()).on_send();
    }

    #[test]
    fn duplicate_delivery_suppressed() {
        let mut a = CausalEngine::new(r(0), cfg());
        a.local_update(x(0), UpdateOp::Inc);
        let msg = a.pending_message().unwrap();
        let mut b = CausalEngine::new(r(1), cfg());
        assert_eq!(b.on_receive(&msg).len(), 1);
        assert_eq!(b.on_receive(&msg).len(), 0);
        assert_eq!(b.vv().get(r(0)), 1);
    }

    #[test]
    fn out_of_order_delivery_buffers() {
        let mut a = CausalEngine::new(r(0), cfg());
        a.local_update(x(0), UpdateOp::Write(v(1)));
        let m1 = a.pending_message().unwrap();
        a.on_send();
        a.local_update(x(0), UpdateOp::Write(v(2)));
        let m2 = a.pending_message().unwrap();
        a.on_send();

        let mut b = CausalEngine::new(r(1), cfg());
        assert!(b.on_receive(&m2).is_empty(), "m2 depends on m1");
        assert!(b.has_buffered());
        let applied = b.on_receive(&m1);
        assert_eq!(applied.len(), 2, "m1 unblocks m2");
        assert_eq!(applied[0].op, UpdateOp::Write(v(1)));
        assert_eq!(applied[1].op, UpdateOp::Write(v(2)));
        assert!(!b.has_buffered());
    }

    #[test]
    fn cross_replica_dependency_respected() {
        // R1's update depends on R0's; R2 receives R1's first.
        let mut a = CausalEngine::new(r(0), cfg());
        a.local_update(x(0), UpdateOp::Write(v(1)));
        let ma = a.pending_message().unwrap();
        a.on_send();

        let mut b = CausalEngine::new(r(1), cfg());
        b.on_receive(&ma);
        b.local_update(x(0), UpdateOp::Write(v(2)));
        let mb = b.pending_message().unwrap();
        b.on_send();

        let mut c = CausalEngine::new(r(2), cfg());
        assert!(c.on_receive(&mb).is_empty());
        let applied = c.on_receive(&ma);
        assert_eq!(applied.len(), 2);
        assert_eq!(applied[0].dot, Dot::new(r(0), 1));
        assert_eq!(applied[1].dot, Dot::new(r(1), 1));
    }

    #[test]
    fn visible_dots_track_vv() {
        let mut e = CausalEngine::new(r(0), cfg());
        e.local_update(x(0), UpdateOp::Inc);
        e.local_update(x(0), UpdateOp::Inc);
        let dots = e.visible_dots();
        assert_eq!(dots, vec![Dot::new(r(0), 1), Dot::new(r(0), 2)]);
    }

    #[test]
    fn malformed_payload_ignored() {
        let mut e = CausalEngine::new(r(0), cfg());
        let junk = Payload::from_bytes(vec![0xFF, 0xFF, 0xFF]);
        let applied = e.on_receive(&junk);
        assert!(applied.is_empty());
    }

    /// Fail-closed delivery: a batch truncated inside its second record
    /// applies *nothing* — the decodable first record must not slip
    /// through (it used to: the engine buffered records as it decoded
    /// them and kept the prefix on error).
    #[test]
    fn truncated_batch_applies_nothing() {
        use crate::wire::BitReader;
        let mut a = CausalEngine::new(r(0), cfg());
        let u1 = a.local_update(x(0), UpdateOp::Write(v(1)));
        a.local_update(x(1), UpdateOp::Write(v(2)));
        let msg = a.pending_message().unwrap();
        let cut = msg.bits() - (msg.bits() - batch::header_bits(2) - u1.encoded_bits(cfg())) / 2;
        let truncated = BitReader::new(&msg).read_payload(cut).unwrap();

        let mut b = CausalEngine::new(r(1), cfg());
        let err = b.try_receive(&truncated).unwrap_err();
        assert_eq!(err.index, Some(1), "the second record is the culprit");
        assert_eq!(b.vv().get(r(0)), 0, "no prefix applied");
        assert!(!b.has_buffered(), "no prefix buffered");
        assert!(b.on_receive(&truncated).is_empty());
        // The intact batch still delivers both updates afterwards.
        assert_eq!(b.on_receive(&msg).len(), 2);
    }

    /// The engine's broadcast is exactly the batch codec over its outbox.
    #[test]
    fn pending_message_is_the_batch_encoding() {
        let mut e = CausalEngine::new(r(0), cfg());
        e.local_update(x(0), UpdateOp::Inc);
        e.local_update(x(1), UpdateOp::Enable);
        let msg = e.pending_message().unwrap();
        let expected_bits = batch::header_bits(2)
            + batch::decode_batch(&msg, cfg())
                .unwrap()
                .iter()
                .map(|u| u.encoded_bits(cfg()))
                .sum::<usize>();
        assert_eq!(msg.bits(), expected_bits);
    }

    #[test]
    fn deps_grow_with_history_in_bits() {
        // The dependency vector makes update encodings grow ~ lg(seq).
        let cfg = StoreConfig::new(4, 1);
        let mut a = CausalEngine::new(r(0), cfg);
        let mut small = 0;
        let mut large = 0;
        for i in 0..1000u64 {
            let u = a.local_update(x(0), UpdateOp::Write(v(i)));
            if i == 1 {
                small = u.encoded_bits(cfg);
            }
            if i == 999 {
                large = u.encoded_bits(cfg);
            }
            a.on_send();
        }
        assert!(large > small, "encodings must grow with sequence numbers");
        assert!(
            large >= small + 2 * ((1000f64).log2() as usize - 2),
            "growth should be logarithmic-ish: {small} -> {large}"
        );
    }

    #[test]
    fn state_bits_positive_after_updates() {
        let mut e = CausalEngine::new(r(0), cfg());
        let empty = e.state_bits();
        e.local_update(x(0), UpdateOp::Write(v(1)));
        assert!(e.state_bits() > empty);
    }
}
