//! Scaling of the brute-force explanation search — the exponential ground
//! truth behind Figures 2 and 3. Measures the verdict cost for the actual
//! figure scenarios and for growing synthetic histories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haec_core::search::{Observation, SearchProblem};
use haec_core::{ObjectSpecs, SpecKind};
use haec_model::{ObjectId, Op, ReturnValue, Value};
use haec_theory::figures::{fig2_verdict, fig3c_verdict};
use std::hint::black_box;

fn synthetic_problem(updates: usize) -> SearchProblem {
    // `updates` writers each write once; one reader observes everything.
    let x = ObjectId::new(0);
    let mut p = SearchProblem::new(ObjectSpecs::uniform(SpecKind::Mvr));
    for i in 0..updates {
        p.session([Observation::new(
            x,
            Op::Write(Value::new(i as u64 + 1)),
            ReturnValue::Ok,
        )]);
    }
    p.session([Observation::new(
        x,
        Op::Read,
        ReturnValue::values((0..updates).map(|i| Value::new(i as u64 + 1))),
    )]);
    p
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("explanation_search");
    for &updates in &[2usize, 3, 4] {
        let p = synthetic_problem(updates);
        group.bench_with_input(
            BenchmarkId::new("all_concurrent", updates),
            &updates,
            |b, _| b.iter(|| black_box(p.is_explainable())),
        );
    }
    group.bench_function("fig2_verdict", |b| {
        b.iter(|| black_box(fig2_verdict().candidates.len()))
    });
    group.bench_function("fig3c_verdict", |b| {
        b.iter(|| black_box(fig3c_verdict().candidates.len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search
}
criterion_main!(benches);
