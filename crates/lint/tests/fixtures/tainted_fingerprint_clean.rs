//! Non-firing: the same call shape as the firing twin, but the helper
//! chain bottoms out in a constant — nothing nondeterministic reaches
//! the fingerprint.

fn sample_ns() -> u64 {
    0x9e37_79b9
}

fn mix(seed: u64) -> u64 {
    seed ^ sample_ns()
}

pub fn fingerprint(state: &[u64]) -> u64 {
    let mut acc = mix(0);
    for w in state {
        acc = acc.wrapping_mul(31).wrapping_add(*w);
    }
    acc
}
