//! The experiment driver: regenerates every figure/theorem of the paper as
//! a table.
//!
//! Usage:
//!   experiments            # run everything
//!   experiments --fig1 --thm12 ...   # selected experiments
//!   experiments --cost --json        # E12 metric rows as JSON
//!
//! Flags: --fig1 --figures --thm6 --thm12 --growth --sec53 --lemmas
//!        --space --ablation --sessions --cost --classify
//!
//! `--json` switches the output to machine-readable JSON: one object with a
//! `cost` key holding the E12 per-store metric rows (the experiment with
//! structured data worth scripting against). Table-only experiments are
//! skipped in JSON mode.

use haec_bench as bench;
use haec_sim::obs::json::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let flags: Vec<&String> = args.iter().filter(|a| a.as_str() != "--json").collect();
    let all = flags.is_empty() || flags.iter().any(|a| a.as_str() == "--all");
    let want = |flag: &str| all || flags.iter().any(|a| a.as_str() == flag);

    if json {
        // Machine-readable mode: emit the structured experiment data.
        let rows = bench::cost_rows(3);
        let out = Json::Obj(vec![("cost".into(), bench::cost_rows_json(&rows))]);
        println!("{}", out.render());
        return;
    }

    let mut tables = Vec::new();
    if want("--fig1") {
        tables.push(bench::fig1_spec_table());
    }
    if want("--figures") || want("--fig2") || want("--fig3") {
        tables.push(bench::figures_table());
    }
    if want("--thm6") {
        tables.push(bench::thm6_table(20));
    }
    if want("--thm12") {
        tables.push(bench::thm12_table(6));
    }
    if want("--growth") {
        tables.push(bench::growth_table(3));
    }
    if want("--sec53") {
        tables.push(bench::sec53_table());
    }
    if want("--lemmas") {
        tables.push(bench::lemmas_table(3));
    }
    if want("--space") {
        tables.push(bench::space_table());
        tables.push(bench::space_lower_table());
    }
    if want("--ablation") {
        tables.push(bench::ablation_table());
    }
    if want("--sessions") {
        tables.push(bench::sessions_table(5));
    }
    if want("--cost") {
        tables.push(bench::cost_table(3));
    }
    if want("--classify") {
        tables.push(bench::classify_table(6));
    }
    if tables.is_empty() {
        eprintln!("unknown flags {args:?}; running everything");
        tables = bench::all_experiments();
    }
    for t in tables {
        print!("{}", t.render());
    }
}
