//! The exploration pipeline: run a store under a random schedule, build the
//! witness abstract execution, and check every property at once.

use crate::obs::hist::Histogram;
use crate::scheduler::{run_schedule, ScheduleConfig};
use crate::simulator::Simulator;
use crate::workload::{KeyDistribution, Workload};
use haec_core::consistency::{causal, eventual, occ};
use haec_core::witness::WitnessError;
use haec_core::{check_correct, AbstractExecution, ObjectSpecs, SpecKind};
use haec_model::{StoreConfig, StoreFactory};
use std::fmt;

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExplorationConfig {
    /// Cluster size.
    pub n_replicas: usize,
    /// Object count.
    pub n_objects: usize,
    /// Object specification (drives the workload and the checkers).
    pub spec: SpecKind,
    /// Fraction of reads.
    pub read_ratio: f64,
    /// Key skew.
    pub keys: KeyDistribution,
    /// Schedule parameters.
    pub schedule: ScheduleConfig,
    /// Order `H` by store arbitration timestamps instead of execution order
    /// (use for LWW-style stores).
    pub arbitrated_order: bool,
}

impl Default for ExplorationConfig {
    fn default() -> Self {
        ExplorationConfig {
            n_replicas: 3,
            n_objects: 2,
            spec: SpecKind::Mvr,
            read_ratio: 0.4,
            keys: KeyDistribution::Uniform,
            schedule: ScheduleConfig::default(),
            arbitrated_order: false,
        }
    }
}

/// Everything learned from one exploration run.
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    /// Store name.
    pub store: String,
    /// Seed used.
    pub seed: u64,
    /// Number of `do` events generated.
    pub do_events: usize,
    /// The witness abstract execution, if it could be assembled.
    pub abstract_execution: Result<AbstractExecution, WitnessError>,
    /// Correctness (Definition 8) of the witness.
    pub correct: Option<String>,
    /// Causal consistency (Definition 12) of the witness.
    pub causal: Option<String>,
    /// OCC (Definition 18) of the witness.
    pub occ: Option<String>,
    /// Residual staleness: max events an update stayed invisible to a
    /// same-object event.
    pub max_staleness: usize,
    /// Full per-update staleness distribution (one sample per update, the
    /// aggregated form of [`eventual::staleness`]).
    pub staleness: Histogram,
}

impl ConsistencyReport {
    /// Correct + causal: the witness passed both safety checks.
    pub fn is_causally_consistent(&self) -> bool {
        self.abstract_execution.is_ok() && self.correct.is_none() && self.causal.is_none()
    }

    /// Additionally OCC.
    pub fn is_occ(&self) -> bool {
        self.is_causally_consistent() && self.occ.is_none()
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (seed {}): {} do events",
            self.store, self.seed, self.do_events
        )?;
        let fmt_check = |o: &Option<String>| o.clone().unwrap_or_else(|| "ok".into());
        writeln!(
            f,
            "  witness:  {}",
            if self.abstract_execution.is_ok() {
                "ok"
            } else {
                "FAILED"
            }
        )?;
        writeln!(f, "  correct:  {}", fmt_check(&self.correct))?;
        writeln!(f, "  causal:   {}", fmt_check(&self.causal))?;
        writeln!(f, "  occ:      {}", fmt_check(&self.occ))?;
        writeln!(f, "  staleness: {}", self.staleness)?;
        write!(f, "  max staleness: {}", self.max_staleness)
    }
}

/// Runs one exploration: schedule → witness → checkers.
pub fn explore(
    factory: &dyn StoreFactory,
    config: &ExplorationConfig,
    seed: u64,
) -> ConsistencyReport {
    explore_with(factory, config, seed, |_| {})
}

/// Like [`explore`], but hands the fresh simulator to `attach` first so the
/// caller can register [observers](crate::obs::Observer) (or otherwise
/// inspect it) before the schedule runs.
pub fn explore_with(
    factory: &dyn StoreFactory,
    config: &ExplorationConfig,
    seed: u64,
    attach: impl FnOnce(&mut Simulator),
) -> ConsistencyReport {
    let store_config = StoreConfig::new(config.n_replicas, config.n_objects);
    let mut sim = Simulator::new(factory, store_config);
    attach(&mut sim);
    let mut workload = Workload::new(
        config.spec,
        config.n_replicas,
        config.n_objects,
        config.read_ratio,
        config.keys,
    );
    run_schedule(&mut sim, &mut workload, &config.schedule, seed);
    report_on(&sim, config, seed)
}

/// Samples one member of `scenario` (retrying rejected draws, see
/// [`Scenario::sample`](crate::scenario::Scenario::sample)) and runs it
/// through the standard witness/checker pipeline. Returns `None` when no
/// in-depth member was found within the retry budget — e.g. an
/// unsatisfiable family.
///
/// This is the random-exploration twin of
/// [`explore_family`](crate::scenario::explore_family): the sampled
/// member is driven by the same [`run_member`](crate::scenario::run_member)
/// as the exhaustive sweep, so both consumers classify any shared member
/// identically.
pub fn explore_sampled(
    factory: &dyn StoreFactory,
    config: &ExplorationConfig,
    scenario: &crate::scenario::Scenario,
    depth: usize,
    seed: u64,
) -> Option<ConsistencyReport> {
    let mut rng = haec_testkit::Rng::seed_from_u64(seed);
    let member = scenario.sample(&mut rng, depth)?;
    let store_config = StoreConfig::new(config.n_replicas, config.n_objects);
    let mut sim = Simulator::new(factory, store_config);
    crate::scenario::run_member(&mut sim, &member);
    Some(report_on(&sim, config, seed))
}

/// Builds a report for an already-driven simulator.
pub fn report_on(sim: &Simulator, config: &ExplorationConfig, seed: u64) -> ConsistencyReport {
    let specs = ObjectSpecs::uniform(config.spec);
    let abstract_execution = if config.arbitrated_order {
        sim.abstract_execution_arbitrated()
    } else {
        sim.abstract_execution()
    };
    let (correct, causal_res, occ_res, staleness) = match &abstract_execution {
        Ok(a) => {
            let mut hist = Histogram::new();
            for s in eventual::staleness(a) {
                hist.record(s as u64);
            }
            (
                check_correct(a, &specs).err().map(|e| e.to_string()),
                causal::check(a).err().map(|e| e.to_string()),
                occ::check(a).err().map(|e| e.to_string()),
                hist,
            )
        }
        Err(_) => (None, None, None, Histogram::new()),
    };
    ConsistencyReport {
        store: sim.store_name().to_owned(),
        seed,
        do_events: sim.execution().do_events().len(),
        abstract_execution,
        correct,
        causal: causal_res,
        occ: occ_res,
        max_staleness: staleness.max().unwrap_or(0) as usize,
        staleness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_stores::{BoundedStore, DvvMvrStore, LwwStore, OrSetStore};

    #[test]
    fn dvv_mvr_explorations_are_causally_consistent() {
        let config = ExplorationConfig::default();
        for seed in 0..8 {
            let rep = explore(&DvvMvrStore, &config, seed);
            assert!(rep.is_causally_consistent(), "seed {seed}:\n{rep}");
        }
    }

    #[test]
    fn orset_explorations_are_causally_consistent() {
        let config = ExplorationConfig {
            spec: SpecKind::OrSet,
            ..ExplorationConfig::default()
        };
        for seed in 0..5 {
            let rep = explore(&OrSetStore, &config, seed);
            assert!(rep.is_causally_consistent(), "seed {seed}:\n{rep}");
        }
    }

    #[test]
    fn lww_with_arbitrated_order_is_correct_but_not_causal() {
        let config = ExplorationConfig {
            spec: SpecKind::LwwRegister,
            arbitrated_order: true,
            ..ExplorationConfig::default()
        };
        let mut correct_runs = 0;
        let mut causal_failures = 0;
        for seed in 0..10 {
            let rep = explore(&LwwStore, &config, seed);
            assert!(rep.abstract_execution.is_ok(), "seed {seed}");
            if rep.correct.is_none() {
                correct_runs += 1;
            }
            if rep.causal.is_some() {
                causal_failures += 1;
            }
        }
        assert_eq!(correct_runs, 10, "LWW must be correct in arbitration order");
        assert!(
            causal_failures > 0,
            "random schedules should expose LWW's causality violations"
        );
    }

    #[test]
    fn bounded_store_fails_safety_under_exploration() {
        let config = ExplorationConfig::default();
        let mut failures = 0;
        for seed in 0..10 {
            let rep = explore(&BoundedStore, &config, seed);
            let broken =
                rep.abstract_execution.is_err() || rep.correct.is_some() || rep.causal.is_some();
            if broken {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "bounded messages must break correctness or causality somewhere"
        );
    }

    #[test]
    fn explore_sampled_draws_family_members_deterministically() {
        use crate::scenario::{concurrent_write_pair, Scenario, ScenarioFilter};
        let config = ExplorationConfig::default();
        let family = concurrent_write_pair(SpecKind::Mvr, 3);
        let rep =
            explore_sampled(&DvvMvrStore, &config, &family, 12, 5).expect("satisfiable family");
        assert!(rep.is_causally_consistent(), "{rep}");
        let again = explore_sampled(&DvvMvrStore, &config, &family, 12, 5).unwrap();
        assert_eq!(rep.to_string(), again.to_string(), "same seed, same run");
        // An unsatisfiable family yields no report.
        let empty = Scenario::filter(ScenarioFilter::MinLen(99), Scenario::empty());
        assert!(explore_sampled(&DvvMvrStore, &config, &empty, 12, 5).is_none());
    }

    #[test]
    fn report_display_smoke() {
        let rep = explore(&DvvMvrStore, &ExplorationConfig::default(), 1);
        let s = rep.to_string();
        assert!(s.contains("dvv-mvr"));
        assert!(s.contains("causal"));
    }
}
