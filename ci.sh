#!/usr/bin/env sh
# Hermetic CI gate. The workspace has zero external dependencies, so the
# whole pipeline runs with --offline against the committed Cargo.lock —
# no registry, no network, no vendor directory.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== build (release, locked, offline) =="
cargo build --release --locked --offline

echo "== test (locked, offline) =="
cargo test -q --workspace --locked --offline

echo "== clippy (locked, offline, deny warnings) =="
cargo clippy --workspace --locked --offline -- -D warnings

echo "== haec-lint (interprocedural taint + token lints, deny mode, self-hosting) =="
# The linter gates the whole workspace, its own sources included. The
# --json report is archived, run twice, and byte-compared: the analysis
# itself must be deterministic. Both runs together stay under a 10s
# wall-clock budget — the pass is a fixpoint over function summaries,
# not a whole-program blowup.
mkdir -p target/lint
lint_t0=$(date +%s)
cargo run -q --release --locked --offline -p haec-lint -- --json > target/lint/report.json
cargo run -q --release --locked --offline -p haec-lint -- --json > target/lint/report-again.json
lint_t1=$(date +%s)
cmp target/lint/report.json target/lint/report-again.json || {
    echo "ci: haec-lint --json is not byte-identical across two runs" >&2
    exit 1
}
if [ $((lint_t1 - lint_t0)) -ge 10 ]; then
    echo "ci: haec-lint exceeded its 10s wall-clock budget ($((lint_t1 - lint_t0))s for two runs)" >&2
    exit 1
fi

echo "== haec-lint fixtures (known-answer corpus) =="
cargo test -q --locked --offline -p haec-lint --test fixtures > /dev/null

echo "== report smoke (fixed seed, JSON must re-parse) =="
cargo run -q --release --locked --offline -p haec-bench --bin report -- \
    --json --check --seed 42 > /dev/null

echo "== explore smoke (all engines incl. par-2 agree at depth 3; reduced engines match dfs-dedup verdicts on all seven stores) =="
cargo bench -q --locked --offline -p haec-bench --bench explore -- \
    --smoke --threads 2 --por --symmetry > /dev/null

echo "== scenario smoke (fixture families enumerate, family sweep seq==par-2) =="
cargo bench -q --locked --offline -p haec-bench --bench scenario -- \
    --smoke --threads 2 > /dev/null

echo "== stream smoke (online checkers: sublinear residency, lossless feed clean) =="
cargo bench -q --locked --offline -p haec-bench --bench stream -- \
    --smoke > /dev/null

echo "== service smoke (sharded batched service: exact wire accounting, run-to-run byte-identical JSON) =="
# Two runs, byte-compared: --smoke zeroes the wall-clock fields, so any
# difference means the service pipeline (sharding, batching, open-loop
# workload, reconciliation, observers) picked up nondeterminism.
mkdir -p target/service
cargo bench -q --locked --offline -p haec-bench --bench service -- \
    --smoke --json > target/service/smoke.json
cargo bench -q --locked --offline -p haec-bench --bench service -- \
    --smoke --json > target/service/smoke-again.json
cmp target/service/smoke.json target/service/smoke-again.json || {
    echo "ci: service --smoke --json is not byte-identical across two runs" >&2
    exit 1
}

echo "== fmt =="
cargo fmt --check

echo "ci: ok"
