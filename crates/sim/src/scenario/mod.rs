//! Compositional scenario DSL: enumerable, samplable, shrinkable
//! execution families.
//!
//! The random [`scheduler`](crate::scheduler) and the
//! [`exhaustive`](crate::exhaustive) engine both consume *one* schedule
//! shape each: uniform-random interleavings and the full schedule tree.
//! The adversarial schedules behind the paper's separations — a
//! concurrent-write pair, a partition window that heals before
//! quiescence, a duplication storm — sit in neither sweet spot: random
//! schedules hit them only by luck, and the full tree buries them in
//! noise. This module makes such *families* of executions first-class
//! values, in the style of ruler's `enumo` workload algebra (`Workload`
//! = atoms + `Plug` + `Filter`), transplanted from term enumeration to
//! schedule enumeration.
//!
//! A [`Scenario`] is a combinator tree over schedule [`Pat`]terns:
//!
//! - [`Scenario::Atom`] — one concrete pattern (an op, a flush, a
//!   delivery, a fault, a partition edge, a quiescence drive);
//! - [`Scenario::Seq`] — concatenation of sub-scenarios;
//! - [`Scenario::Choice`] — ordered alternative;
//! - [`Scenario::Plug`] — splice every member of one scenario into each
//!   occurrence of a named [`Pat::Hole`] of another (enumo's `plug`);
//! - [`Scenario::Filter`] — keep only members satisfying a
//!   [`ScenarioFilter`] predicate.
//!
//! Three consumers share one member representation (`Vec<Pat>`):
//!
//! 1. [`Scenario::iter_to_depth`] enumerates every member up to a length
//!    bound, in a **deterministic canonical order** (first occurrence in
//!    the structural enumeration order), for the exhaustive engine's
//!    [`explore_family`](family::explore_family) and its thread-invariant
//!    parallel twin.
//! 2. [`Scenario::sample`] draws one member with the seeded testkit RNG,
//!    for the random explorer
//!    ([`explore_sampled`](crate::explorer::explore_sampled)). Every
//!    sample is a member of the enumerated set for the same depth.
//! 3. [`prop::FamilyGen`] implements `haec_testkit::prop::Gen`: shrinking
//!    walks the family lattice (canonical members that are strict
//!    subsequences of the failing member), so every shrink step stays
//!    inside the family and `HAEC_PROP_SEED` replay is preserved.
//!
//! ## Filter pushdown
//!
//! Monotone filters ([`ScenarioFilter::monotone`]) admit *enumeration
//! pruning*: while a `Seq` accumulates a member left-to-right, any
//! in-scope filter may declare a hole-free prefix
//! [`dead`](ScenarioFilter::dead) — no extension within the remaining
//! length budget can ever satisfy it — and the whole subtree is skipped.
//! The AST-level rewrite [`Scenario::pushdown`] additionally distributes
//! `Filter` over `Choice` and flattens nested `Seq`/`Choice`; both
//! transformations preserve the member set *and* the canonical order
//! exactly (pinned by tests). Unlike enumo's term setting, pushing a
//! filter through `Plug` is unsound here — a spliced fragment that fails
//! a filter can still be part of a passing whole — so `Plug` is a
//! pushdown barrier.

mod family;
mod filter;
mod fixtures;
pub mod prop;
mod run;

pub use family::{
    explore_family, explore_family_observed, FamilyConfig, FamilyConfigError, FamilyReport,
};
pub use filter::ScenarioFilter;
pub use fixtures::{concurrent_write_pair, dup_storm, heal_before_quiesce, update_op};
pub use run::run_member;

use haec_core::det::DetSet;
use haec_model::{ObjectId, Op, ReplicaId};
use haec_testkit::Rng;
use std::fmt;

/// Rejection-sampling budget for [`Scenario::sample`] (per `Filter` node
/// and for the top-level length/hole check).
const SAMPLE_RETRIES: usize = 64;

/// One step pattern of a scenario member. A member (`Vec<Pat>`) is run
/// against a fresh simulator by [`run_member`], which resolves the
/// oldest/newest indirections against the live in-flight list and
/// uniquifies written values exactly like the exhaustive engine.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Pat {
    /// A named splice point, filled by [`Scenario::Plug`]. Members fed to
    /// [`run_member`] must be hole-free.
    Hole(String),
    /// A client operation at a replica. Written/added values are
    /// placeholders: [`run_member`] uniquifies them by step position.
    Op(ReplicaId, ObjectId, Op),
    /// Broadcast a replica's pending update (if any).
    Flush(ReplicaId),
    /// Deliver the oldest in-flight copy not blocked by the active
    /// partition (no-op if none).
    DeliverOldest,
    /// Deliver the newest such copy (no-op if none).
    DeliverNewest,
    /// Drop the oldest in-flight copy (no-op if none).
    DropOldest,
    /// Duplicate the oldest in-flight copy (no-op if none).
    DupOldest,
    /// Open a partition isolating the given replica indices from the
    /// rest. An already-open partition is healed first.
    PartitionStart(Vec<u32>),
    /// Heal the active partition (no-op if none).
    PartitionHeal,
    /// Heal any active partition, then drive flush-and-deliver rounds to
    /// quiescence.
    Quiesce,
}

impl Pat {
    /// Whether this pattern is an unplugged [`Pat::Hole`].
    pub fn is_hole(&self) -> bool {
        matches!(self, Pat::Hole(_))
    }
}

impl fmt::Display for Pat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pat::Hole(name) => write!(f, "?{name}"),
            Pat::Op(r, x, op) => write!(f, "do({r},{x},{op})"),
            Pat::Flush(r) => write!(f, "flush({r})"),
            Pat::DeliverOldest => write!(f, "deliver-oldest"),
            Pat::DeliverNewest => write!(f, "deliver-newest"),
            Pat::DropOldest => write!(f, "drop-oldest"),
            Pat::DupOldest => write!(f, "dup-oldest"),
            Pat::PartitionStart(group) => {
                write!(f, "partition(")?;
                for (i, g) in group.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Pat::PartitionHeal => write!(f, "heal"),
            Pat::Quiesce => write!(f, "quiesce"),
        }
    }
}

/// Renders a member as a single canonical line (used by the
/// known-answer enumeration pins).
pub fn member_string(member: &[Pat]) -> String {
    let mut out = String::from("[");
    for (i, p) in member.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&p.to_string());
    }
    out.push(']');
    out
}

/// A compositional family of schedule members. See the [module
/// docs](self) for the algebra and its consumers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// One concrete pattern.
    Atom(Pat),
    /// Concatenation: every member is the concatenation of one member
    /// from each part, in order.
    Seq(Vec<Scenario>),
    /// Ordered alternative: the members of each option in turn.
    Choice(Vec<Scenario>),
    /// `Plug(outer, name, inner)`: for each member of `outer`, splice
    /// each member of `inner` into **every** occurrence of
    /// `Pat::Hole(name)` (uniform substitution). Outer members without
    /// the hole pass through unchanged.
    Plug(Box<Scenario>, String, Box<Scenario>),
    /// Keep only members accepted by the predicate.
    Filter(ScenarioFilter, Box<Scenario>),
}

impl Scenario {
    /// A single-pattern scenario.
    pub fn atom(pat: Pat) -> Scenario {
        Scenario::Atom(pat)
    }

    /// A named hole, to be filled by [`Scenario::plug`].
    pub fn hole(name: &str) -> Scenario {
        Scenario::Atom(Pat::Hole(name.to_owned()))
    }

    /// The scenario whose only member is the empty schedule.
    pub fn empty() -> Scenario {
        Scenario::Seq(Vec::new())
    }

    /// Concatenation of `parts`.
    pub fn seq(parts: Vec<Scenario>) -> Scenario {
        Scenario::Seq(parts)
    }

    /// Ordered alternative over `options`.
    pub fn choice(options: Vec<Scenario>) -> Scenario {
        Scenario::Choice(options)
    }

    /// Splices `inner`'s members into each `Pat::Hole(name)` of
    /// `outer`'s members.
    pub fn plug(outer: Scenario, name: &str, inner: Scenario) -> Scenario {
        Scenario::Plug(Box::new(outer), name.to_owned(), Box::new(inner))
    }

    /// Restricts to members accepted by `filter`.
    pub fn filter(filter: ScenarioFilter, inner: Scenario) -> Scenario {
        Scenario::Filter(filter, Box::new(inner))
    }

    /// The filters wrapping the root of this scenario, outermost first.
    /// Every member of [`iter_to_depth`](Self::iter_to_depth) satisfies
    /// all of them — the self-consistency property test pins this.
    pub fn top_filters(&self) -> Vec<&ScenarioFilter> {
        let mut out = Vec::new();
        let mut cur = self;
        while let Scenario::Filter(f, inner) = cur {
            out.push(f);
            cur = inner;
        }
        out
    }

    /// Enumerates every member with at most `depth` patterns, in
    /// canonical order: the structural enumeration order (`Seq`
    /// lexicographic by part, `Choice` by option position, `Plug`
    /// outer-major/inner-minor), keeping the first occurrence of each
    /// distinct member. The result is a pure function of `(self, depth)`
    /// — byte-identical across runs and thread counts.
    pub fn iter_to_depth(&self, depth: usize) -> Vec<Vec<Pat>> {
        let mut seen: DetSet<Vec<Pat>> = DetSet::new();
        let mut out = Vec::new();
        for m in self.enumerate(depth, &[]) {
            if seen.insert(m.clone()) {
                out.push(m);
            }
        }
        out
    }

    /// Number of distinct members at `depth` (the E16 table rows).
    pub fn count_to_depth(&self, depth: usize) -> usize {
        self.iter_to_depth(depth).len()
    }

    /// Structural enumeration with filter pushdown. `live` carries the
    /// filters whose candidate members are exactly the members produced
    /// at this node (propagated through `Filter` and `Choice`, *not*
    /// into `Seq` parts or `Plug` sides, whose outputs are fragments);
    /// they prune hole-free partial members via
    /// [`ScenarioFilter::dead`].
    fn enumerate(&self, depth: usize, live: &[&ScenarioFilter]) -> Vec<Vec<Pat>> {
        match self {
            Scenario::Atom(p) => {
                if depth == 0 {
                    Vec::new()
                } else {
                    vec![vec![p.clone()]]
                }
            }
            Scenario::Seq(parts) => {
                let mut acc: Vec<Vec<Pat>> = vec![Vec::new()];
                for (k, part) in parts.iter().enumerate() {
                    let last = k + 1 == parts.len();
                    let mut next = Vec::new();
                    for prefix in &acc {
                        let budget = depth - prefix.len();
                        for sub in part.enumerate(budget, &[]) {
                            let mut m = prefix.clone();
                            m.extend(sub);
                            // A partial member is a true prefix of every
                            // completed member it leads to, so a dead
                            // verdict kills the whole subtree. The last
                            // part's output is complete; leave its
                            // verdict to the Filter's `accepts`.
                            if !last && pruned(live, &m, depth - m.len()) {
                                continue;
                            }
                            next.push(m);
                        }
                    }
                    acc = next;
                }
                acc
            }
            Scenario::Choice(options) => {
                let mut out = Vec::new();
                for opt in options {
                    out.extend(opt.enumerate(depth, live));
                }
                out
            }
            Scenario::Plug(outer, name, inner) => {
                let outers = outer.enumerate(depth, &[]);
                let inners = inner.enumerate(depth, &[]);
                let mut out = Vec::new();
                for o in &outers {
                    if !o.iter().any(|p| matches!(p, Pat::Hole(h) if h == name)) {
                        out.push(o.clone());
                        continue;
                    }
                    for i in &inners {
                        let m = splice(o, name, i);
                        // Remaining holes may still splice to the empty
                        // fragment, so only non-hole patterns count
                        // against the depth budget.
                        let floor = m.iter().filter(|p| !p.is_hole()).count();
                        if floor <= depth && !pruned(live, &m, depth - floor) {
                            out.push(m);
                        }
                    }
                }
                out
            }
            Scenario::Filter(f, inner) => {
                let mut live2 = live.to_vec();
                live2.push(f);
                inner
                    .enumerate(depth, &live2)
                    .into_iter()
                    .filter(|m| f.accepts(m))
                    .collect()
            }
        }
    }

    /// Draws one member with at most `depth` patterns, or `None` if the
    /// rejection budget runs out (over-constrained filters, unfillable
    /// holes). Every returned member belongs to
    /// [`iter_to_depth(depth)`](Self::iter_to_depth); the draw is a pure
    /// function of the RNG state.
    pub fn sample(&self, rng: &mut Rng, depth: usize) -> Option<Vec<Pat>> {
        for _ in 0..SAMPLE_RETRIES {
            if let Some(m) = self.sample_once(rng) {
                if m.len() <= depth && !m.iter().any(Pat::is_hole) {
                    return Some(m);
                }
            }
        }
        None
    }

    fn sample_once(&self, rng: &mut Rng) -> Option<Vec<Pat>> {
        match self {
            Scenario::Atom(p) => Some(vec![p.clone()]),
            Scenario::Seq(parts) => {
                let mut m = Vec::new();
                for part in parts {
                    m.extend(part.sample_once(rng)?);
                }
                Some(m)
            }
            Scenario::Choice(options) => {
                if options.is_empty() {
                    return None;
                }
                let i = rng.gen_range(0..options.len());
                options[i].sample_once(rng)
            }
            Scenario::Plug(outer, name, inner) => {
                let o = outer.sample_once(rng)?;
                if !o.iter().any(|p| matches!(p, Pat::Hole(h) if h == name)) {
                    return Some(o);
                }
                let i = inner.sample_once(rng)?;
                Some(splice(&o, name, &i))
            }
            Scenario::Filter(f, inner) => {
                for _ in 0..SAMPLE_RETRIES {
                    let m = inner.sample_once(rng)?;
                    if f.accepts(&m) {
                        return Some(m);
                    }
                }
                None
            }
        }
    }

    /// The always-sound AST rewrites: distribute `Filter` over `Choice`,
    /// flatten nested `Seq`/`Choice`, and collapse singleton wrappers.
    /// Preserves the member set and the canonical enumeration order
    /// exactly — `pushdown().iter_to_depth(d) == iter_to_depth(d)` for
    /// every depth (pinned by a property test). `Plug` is a barrier: a
    /// fragment failing a filter can still be part of a passing whole,
    /// so no filter moves through it.
    pub fn pushdown(&self) -> Scenario {
        match self {
            Scenario::Atom(p) => Scenario::Atom(p.clone()),
            Scenario::Seq(parts) => {
                let mut flat = Vec::new();
                for part in parts {
                    match part.pushdown() {
                        Scenario::Seq(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    Scenario::Seq(flat)
                }
            }
            Scenario::Choice(options) => {
                let mut flat = Vec::new();
                for opt in options {
                    match opt.pushdown() {
                        Scenario::Choice(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    Scenario::Choice(flat)
                }
            }
            Scenario::Plug(outer, name, inner) => Scenario::Plug(
                Box::new(outer.pushdown()),
                name.clone(),
                Box::new(inner.pushdown()),
            ),
            Scenario::Filter(f, inner) => match inner.pushdown() {
                Scenario::Choice(options) => Scenario::Choice(
                    options
                        .into_iter()
                        .map(|opt| Scenario::Filter(f.clone(), Box::new(opt)))
                        .collect(),
                ),
                other => Scenario::Filter(f.clone(), Box::new(other)),
            },
        }
    }
}

/// Whether a hole-free partial member is dead under any in-scope filter.
/// Members still containing holes are never pruned: a later `Plug`
/// rewrites their middle, so they are not prefixes of what the filter
/// will eventually judge.
fn pruned(live: &[&ScenarioFilter], m: &[Pat], remaining: usize) -> bool {
    !m.iter().any(Pat::is_hole) && live.iter().any(|f| f.dead(m, remaining))
}

/// Uniform substitution: every `Hole(name)` in `outer` is replaced by
/// (one copy of) `inner`.
fn splice(outer: &[Pat], name: &str, inner: &[Pat]) -> Vec<Pat> {
    let mut out = Vec::with_capacity(outer.len() + inner.len());
    for p in outer {
        match p {
            Pat::Hole(h) if h == name => out.extend(inner.iter().cloned()),
            other => out.push(other.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_model::Value;

    fn op(r: u32) -> Pat {
        Pat::Op(
            ReplicaId::new(r),
            ObjectId::new(0),
            Op::Write(Value::new(0)),
        )
    }

    fn atoms(pats: &[Pat]) -> Scenario {
        Scenario::seq(pats.iter().cloned().map(Scenario::atom).collect())
    }

    #[test]
    fn atom_seq_choice_enumerate_structurally() {
        let s = Scenario::seq(vec![
            Scenario::atom(op(0)),
            Scenario::choice(vec![Scenario::atom(op(1)), Scenario::atom(op(2))]),
        ]);
        let ms = s.iter_to_depth(4);
        assert_eq!(ms, vec![vec![op(0), op(1)], vec![op(0), op(2)]]);
    }

    #[test]
    fn depth_bounds_prune_long_members() {
        let s = Scenario::choice(vec![
            atoms(&[op(0)]),
            atoms(&[op(0), op(1)]),
            atoms(&[op(0), op(1), op(2)]),
        ]);
        assert_eq!(s.count_to_depth(2), 2);
        assert_eq!(s.count_to_depth(3), 3);
        assert_eq!(s.count_to_depth(0), 0);
    }

    #[test]
    fn empty_yields_the_empty_member() {
        assert_eq!(Scenario::empty().iter_to_depth(3), vec![Vec::<Pat>::new()]);
    }

    #[test]
    fn choice_dedups_first_occurrence_keeping_order() {
        let s = Scenario::choice(vec![
            Scenario::atom(op(1)),
            Scenario::atom(op(0)),
            Scenario::atom(op(1)), // duplicate of the first option
        ]);
        assert_eq!(s.iter_to_depth(1), vec![vec![op(1)], vec![op(0)]]);
    }

    #[test]
    fn plug_splices_every_occurrence_uniformly() {
        let body = Scenario::seq(vec![
            Scenario::hole("h"),
            Scenario::atom(Pat::Quiesce),
            Scenario::hole("h"),
        ]);
        let s = Scenario::plug(
            body,
            "h",
            Scenario::choice(vec![Scenario::atom(op(0)), Scenario::atom(op(1))]),
        );
        let ms = s.iter_to_depth(5);
        assert_eq!(
            ms,
            vec![
                vec![op(0), Pat::Quiesce, op(0)],
                vec![op(1), Pat::Quiesce, op(1)],
            ]
        );
    }

    #[test]
    fn plug_passes_holeless_members_through() {
        let s = Scenario::plug(Scenario::atom(op(0)), "missing", Scenario::atom(op(1)));
        assert_eq!(s.iter_to_depth(2), vec![vec![op(0)]]);
    }

    #[test]
    fn filter_restricts_members() {
        let s = Scenario::filter(
            ScenarioFilter::MinLen(2),
            Scenario::choice(vec![atoms(&[op(0)]), atoms(&[op(0), op(1)])]),
        );
        assert_eq!(s.iter_to_depth(4), vec![vec![op(0), op(1)]]);
    }

    #[test]
    fn filter_pushdown_prunes_without_changing_members() {
        // MaxLen(1) under a Seq of two mandatory atoms: every completed
        // member has length 2, so the family is empty — and the prefix
        // pruning must not change that verdict.
        let s = Scenario::filter(
            ScenarioFilter::MaxLen(1),
            Scenario::seq(vec![Scenario::atom(op(0)), Scenario::atom(op(1))]),
        );
        assert!(s.iter_to_depth(5).is_empty());
    }

    #[test]
    fn pushdown_rewrite_preserves_members_and_order() {
        let nested = Scenario::filter(
            ScenarioFilter::MinLen(2),
            Scenario::choice(vec![
                Scenario::seq(vec![
                    Scenario::atom(op(0)),
                    Scenario::seq(vec![Scenario::atom(op(1)), Scenario::atom(op(2))]),
                ]),
                Scenario::choice(vec![atoms(&[op(2)]), atoms(&[op(2), op(0)])]),
            ]),
        );
        let rewritten = nested.pushdown();
        for depth in 0..5 {
            assert_eq!(
                nested.iter_to_depth(depth),
                rewritten.iter_to_depth(depth),
                "depth {depth}"
            );
        }
        // The rewrite actually distributed the filter over the choice.
        assert!(matches!(rewritten, Scenario::Choice(_)));
    }

    #[test]
    fn samples_are_members_of_the_enumeration() {
        let s = Scenario::filter(
            ScenarioFilter::MinLen(2),
            Scenario::seq(vec![
                Scenario::choice(vec![Scenario::atom(op(0)), Scenario::atom(op(1))]),
                Scenario::choice(vec![Scenario::empty(), Scenario::atom(op(2))]),
                Scenario::atom(Pat::Quiesce),
            ]),
        );
        let members = s.iter_to_depth(3);
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..50 {
            let m = s.sample(&mut rng, 3).expect("satisfiable family");
            assert!(
                members.contains(&m),
                "sampled non-member {}",
                member_string(&m)
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let s = Scenario::choice(vec![
            Scenario::atom(op(0)),
            Scenario::atom(op(1)),
            Scenario::atom(op(2)),
        ]);
        let draw = |seed: u64| {
            let mut rng = Rng::seed_from_u64(seed);
            (0..20).map(|_| s.sample(&mut rng, 1)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4), "different seeds should diverge");
    }

    #[test]
    fn unsatisfiable_sample_returns_none() {
        let s = Scenario::filter(ScenarioFilter::MinLen(5), Scenario::atom(op(0)));
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(s.sample(&mut rng, 8), None);
        // A scenario with an unfillable hole is unsatisfiable too.
        let holey = Scenario::hole("never-plugged");
        assert_eq!(holey.sample(&mut rng, 8), None);
    }

    #[test]
    fn member_string_is_stable() {
        let m = vec![
            Pat::PartitionStart(vec![2]),
            op(0),
            Pat::Flush(ReplicaId::new(0)),
            Pat::DeliverOldest,
            Pat::PartitionHeal,
            Pat::Quiesce,
        ];
        assert_eq!(
            member_string(&m),
            "[partition(2) do(R0,x0,write(v0)) flush(R0) deliver-oldest heal quiesce]"
        );
    }
}
