//! Client operations and their return values.

use crate::ids::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A client operation on a replicated object.
///
/// The paper concentrates on multi-valued registers (`Write`/`Read`), and
/// also specifies read/write registers and observed-remove sets
/// (`Add`/`Remove`/`Read`) in Figure 1. `Inc` supports the counter
/// extension.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Op {
    /// Write a value to a register (LWW or multi-valued).
    Write(Value),
    /// Read the current value(s) of the object.
    Read,
    /// Add an element to an observed-remove set.
    Add(Value),
    /// Remove an element from an observed-remove set (removes only the
    /// add-instances visible to the remove — "add wins").
    Remove(Value),
    /// Increment a counter (extension beyond the paper's Figure 1).
    Inc,
    /// Raise an enable-wins flag (extension).
    Enable,
    /// Lower an enable-wins flag; concurrent enables win (extension).
    Disable,
}

/// The coarse classification of an operation: *read* operations return
/// information and (in stores with invisible reads, Definition 16) leave the
/// replica state unchanged; *update* operations modify the object.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// A query that must not change replica state in a store with invisible
    /// reads.
    Read,
    /// A state-changing operation (write/add/remove/inc).
    Update,
}

impl Op {
    /// Classifies the operation.
    ///
    /// ```
    /// use haec_model::{Op, OpKind, Value};
    /// assert_eq!(Op::Read.kind(), OpKind::Read);
    /// assert_eq!(Op::Write(Value::new(1)).kind(), OpKind::Update);
    /// ```
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Read => OpKind::Read,
            Op::Write(_) | Op::Add(_) | Op::Remove(_) | Op::Inc | Op::Enable | Op::Disable => {
                OpKind::Update
            }
        }
    }

    /// Returns `true` for `Op::Read`.
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read)
    }

    /// Returns `true` for update (non-read) operations.
    pub fn is_update(&self) -> bool {
        !self.is_read()
    }

    /// The value carried by the operation, if any.
    pub fn value(&self) -> Option<Value> {
        match self {
            Op::Write(v) | Op::Add(v) | Op::Remove(v) => Some(*v),
            Op::Read | Op::Inc | Op::Enable | Op::Disable => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Write(v) => write!(f, "write({v})"),
            Op::Read => write!(f, "read"),
            Op::Add(v) => write!(f, "add({v})"),
            Op::Remove(v) => write!(f, "remove({v})"),
            Op::Inc => write!(f, "inc"),
            Op::Enable => write!(f, "enable"),
            Op::Disable => write!(f, "disable"),
        }
    }
}

/// The response a client receives from a `do` event.
///
/// Updates return [`ReturnValue::Ok`]; reads return a set of values. A read
/// of a multi-valued register returns the set of currently conflicting
/// writes; a read of a LWW register returns at most one value; a read of an
/// ORset returns the set of live elements; a counter read returns a
/// singleton count.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ReturnValue {
    /// The acknowledgement returned by update operations.
    Ok,
    /// The set of values returned by a read.
    Values(BTreeSet<Value>),
}

impl ReturnValue {
    /// Builds a `Values` return from an iterator of values.
    ///
    /// ```
    /// use haec_model::{ReturnValue, Value};
    /// let rv = ReturnValue::values([Value::new(1), Value::new(2)]);
    /// assert_eq!(rv.as_values().unwrap().len(), 2);
    /// ```
    pub fn values<I: IntoIterator<Item = Value>>(vals: I) -> Self {
        ReturnValue::Values(vals.into_iter().collect())
    }

    /// The empty read response (e.g. a read of a never-written register).
    pub fn empty() -> Self {
        ReturnValue::Values(BTreeSet::new())
    }

    /// Returns the value set if this is a read response.
    pub fn as_values(&self) -> Option<&BTreeSet<Value>> {
        match self {
            ReturnValue::Ok => None,
            ReturnValue::Values(s) => Some(s),
        }
    }

    /// Returns `true` if this is `Ok`.
    pub fn is_ok(&self) -> bool {
        matches!(self, ReturnValue::Ok)
    }

    /// Returns `true` if the response contains the given value.
    pub fn contains(&self, v: Value) -> bool {
        self.as_values().is_some_and(|s| s.contains(&v))
    }
}

impl fmt::Display for ReturnValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReturnValue::Ok => write!(f, "ok"),
            ReturnValue::Values(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl FromIterator<Value> for ReturnValue {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        ReturnValue::values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kinds() {
        assert!(Op::Read.is_read());
        assert!(!Op::Read.is_update());
        assert!(Op::Write(Value::new(0)).is_update());
        assert!(Op::Add(Value::new(0)).is_update());
        assert!(Op::Remove(Value::new(0)).is_update());
        assert!(Op::Inc.is_update());
        assert_eq!(Op::Inc.kind(), OpKind::Update);
    }

    #[test]
    fn op_value_extraction() {
        assert_eq!(Op::Write(Value::new(3)).value(), Some(Value::new(3)));
        assert_eq!(Op::Read.value(), None);
        assert_eq!(Op::Inc.value(), None);
    }

    #[test]
    fn flag_ops_are_updates() {
        assert!(Op::Enable.is_update());
        assert!(Op::Disable.is_update());
        assert_eq!(Op::Enable.value(), None);
        assert_eq!(Op::Enable.to_string(), "enable");
        assert_eq!(Op::Disable.to_string(), "disable");
    }

    #[test]
    fn op_display() {
        assert_eq!(Op::Write(Value::new(1)).to_string(), "write(v1)");
        assert_eq!(Op::Read.to_string(), "read");
        assert_eq!(Op::Remove(Value::new(2)).to_string(), "remove(v2)");
    }

    #[test]
    fn return_value_display_and_query() {
        let rv = ReturnValue::values([Value::new(2), Value::new(1)]);
        // BTreeSet orders values.
        assert_eq!(rv.to_string(), "{v1,v2}");
        assert!(rv.contains(Value::new(1)));
        assert!(!rv.contains(Value::new(3)));
        assert_eq!(ReturnValue::Ok.to_string(), "ok");
        assert!(ReturnValue::Ok.is_ok());
        assert!(!ReturnValue::Ok.contains(Value::new(1)));
    }

    #[test]
    fn empty_read_response() {
        let rv = ReturnValue::empty();
        assert_eq!(rv.as_values().unwrap().len(), 0);
        assert_eq!(rv.to_string(), "{}");
    }

    #[test]
    fn from_iterator() {
        let rv: ReturnValue = [Value::new(5)].into_iter().collect();
        assert!(rv.contains(Value::new(5)));
    }
}
