//! Exhaustive exploration of a scenario family: run every member.
//!
//! [`explore_family`] is the family analogue of
//! [`explore_all`](crate::exhaustive::explore_all): it enumerates the
//! family to the configured depth and drives every member (up to the
//! [`max_members`](FamilyConfig::max_members) cap) on a fresh simulator,
//! classifying each with the caller's predicate. Unlike the schedule-tree
//! DFS it is a **sweep** — it never stops at the first failure. That
//! choice is what makes the parallel twin
//! ([`explore_family_parallel`](crate::exhaustive::explore_family_parallel))
//! trivially bit-identical for every thread count: every member's verdict
//! is computed unconditionally, the cap truncates the *enumeration* (a
//! pure function of the scenario), and the counterexample is defined as
//! the first failing member in canonical order, not the first found.

use super::{run_member, Pat, Scenario};
use crate::obs::Observer;
use crate::simulator::Simulator;
use haec_model::{StoreConfig, StoreFactory};
use std::fmt;

/// Parameters of a family exploration.
#[derive(Clone, Copy, Debug)]
pub struct FamilyConfig {
    /// Cluster shape for every member run.
    pub store_config: StoreConfig,
    /// Enumeration depth: members longer than this are not generated.
    pub depth: usize,
    /// Cap on members *run*. The enumeration itself is never truncated
    /// mid-member: the first `max_members` members in canonical order
    /// run, the rest are reported via
    /// [`cap_hit`](FamilyReport::cap_hit) — so the cap accounting is
    /// exact and thread-invariant (compare the schedule-granular cap of
    /// [`ExhaustiveConfig::max_schedules`](crate::exhaustive::ExhaustiveConfig)).
    pub max_members: usize,
}

impl Default for FamilyConfig {
    fn default() -> Self {
        FamilyConfig {
            store_config: StoreConfig::new(3, 2),
            depth: 12,
            max_members: 4096,
        }
    }
}

/// Why a [`FamilyConfig`] is unusable.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FamilyConfigError {
    /// `depth` is 0: no member, not even the empty one's extensions.
    ZeroDepth,
    /// `max_members` is 0: nothing would run.
    ZeroMaxMembers,
}

impl fmt::Display for FamilyConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FamilyConfigError::ZeroDepth => write!(f, "depth must be nonzero"),
            FamilyConfigError::ZeroMaxMembers => write!(f, "max_members must be nonzero"),
        }
    }
}

impl FamilyConfig {
    /// Checks the configuration, mirroring
    /// [`ExhaustiveConfig::validate`](crate::exhaustive::ExhaustiveConfig::validate).
    pub fn validate(&self) -> Result<(), FamilyConfigError> {
        if self.depth == 0 {
            return Err(FamilyConfigError::ZeroDepth);
        }
        if self.max_members == 0 {
            return Err(FamilyConfigError::ZeroMaxMembers);
        }
        Ok(())
    }
}

/// Outcome of a family sweep. Fully deterministic in
/// `(store, config, scenario)` — byte-identical across runs and thread
/// counts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FamilyReport {
    /// Family name (as passed to the exploration).
    pub family: String,
    /// Distinct members the family enumerates at the configured depth.
    pub enumerated: usize,
    /// Members actually run (`min(enumerated, max_members)`).
    pub run: usize,
    /// Whether the cap truncated the sweep.
    pub cap_hit: bool,
    /// Members whose run failed the predicate.
    pub failures: usize,
    /// The first failing member in canonical enumeration order.
    pub counterexample: Option<Vec<Pat>>,
}

impl FamilyReport {
    /// Did every member that ran satisfy the predicate?
    pub fn all_passed(&self) -> bool {
        self.failures == 0
    }
}

/// Runs every member of `scenario` (in canonical order, up to the cap)
/// on a fresh simulator and classifies it with `check`.
///
/// # Panics
///
/// Panics if `config` fails [`FamilyConfig::validate`].
pub fn explore_family(
    factory: &dyn StoreFactory,
    config: &FamilyConfig,
    name: &str,
    scenario: &Scenario,
    check: &mut dyn FnMut(&Simulator) -> bool,
) -> FamilyReport {
    struct NullObserver;
    impl Observer for NullObserver {}
    explore_family_observed(factory, config, name, scenario, check, &mut NullObserver)
}

/// Like [`explore_family`], but announces every member run to `obs` via
/// [`Observer::on_family_member`], in canonical order.
///
/// # Panics
///
/// Panics if `config` fails [`FamilyConfig::validate`].
pub fn explore_family_observed<O: Observer>(
    factory: &dyn StoreFactory,
    config: &FamilyConfig,
    name: &str,
    scenario: &Scenario,
    check: &mut dyn FnMut(&Simulator) -> bool,
    obs: &mut O,
) -> FamilyReport {
    config.validate().expect("invalid FamilyConfig");
    let members = scenario.iter_to_depth(config.depth);
    let enumerated = members.len();
    let run = enumerated.min(config.max_members);
    let mut failures = 0;
    let mut counterexample = None;
    for member in &members[..run] {
        let mut sim = Simulator::new(factory, config.store_config);
        run_member(&mut sim, member);
        let passed = check(&sim);
        obs.on_family_member(name, member.len(), passed);
        if !passed {
            failures += 1;
            if counterexample.is_none() {
                counterexample = Some(member.clone());
            }
        }
    }
    FamilyReport {
        family: name.to_owned(),
        enumerated,
        run,
        cap_hit: enumerated > config.max_members,
        failures,
        counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::stats::StatsObserver;
    use crate::scenario::{concurrent_write_pair, ScenarioFilter};
    use haec_core::{causal, check_correct, ObjectSpecs, SpecKind};
    use haec_stores::DvvMvrStore;

    fn causal_check(sim: &Simulator) -> bool {
        let Ok(a) = sim.abstract_execution() else {
            return false;
        };
        check_correct(&a, &ObjectSpecs::uniform(SpecKind::Mvr)).is_ok() && causal::check(&a).is_ok()
    }

    #[test]
    fn sweep_counts_and_cap_accounting() {
        let family = concurrent_write_pair(SpecKind::Mvr, 3);
        let config = FamilyConfig::default();
        let report = explore_family(&DvvMvrStore, &config, "cwp", &family, &mut causal_check);
        assert_eq!(report.family, "cwp");
        assert_eq!(report.enumerated, 6, "3 replicas, ordered distinct pairs");
        assert_eq!(report.run, 6);
        assert!(!report.cap_hit);
        assert!(report.all_passed(), "dvv-mvr is causally consistent");

        let capped = FamilyConfig {
            max_members: 2,
            ..config
        };
        let report = explore_family(&DvvMvrStore, &capped, "cwp", &family, &mut causal_check);
        assert_eq!(report.enumerated, 6);
        assert_eq!(report.run, 2);
        assert!(report.cap_hit);
    }

    #[test]
    fn counterexample_is_first_failing_in_canonical_order_without_early_exit() {
        // A predicate that fails every member: the sweep still visits all
        // of them (no early exit), and the counterexample is member 0.
        let family = concurrent_write_pair(SpecKind::Mvr, 3);
        let members = family.iter_to_depth(FamilyConfig::default().depth);
        let mut seen = 0;
        let report = explore_family(
            &DvvMvrStore,
            &FamilyConfig::default(),
            "cwp",
            &family,
            &mut |_| {
                seen += 1;
                false
            },
        );
        assert_eq!(seen, members.len(), "sweep must not stop early");
        assert_eq!(report.failures, members.len());
        assert_eq!(report.counterexample.as_ref(), members.first());
    }

    #[test]
    fn observer_sees_every_member_in_order() {
        let family = concurrent_write_pair(SpecKind::Mvr, 3);
        let mut stats = StatsObserver::new();
        let report = explore_family_observed(
            &DvvMvrStore,
            &FamilyConfig::default(),
            "cwp",
            &family,
            &mut causal_check,
            &mut stats,
        );
        let tally = stats.families().get("cwp").expect("family recorded");
        assert_eq!(tally.members, report.run as u64);
        assert_eq!(tally.failures, report.failures as u64);
    }

    #[test]
    fn empty_family_reports_cleanly() {
        let family = crate::scenario::Scenario::filter(
            ScenarioFilter::MinLen(99),
            crate::scenario::Scenario::empty(),
        );
        let report = explore_family(
            &DvvMvrStore,
            &FamilyConfig::default(),
            "empty",
            &family,
            &mut causal_check,
        );
        assert_eq!(report.enumerated, 0);
        assert_eq!(report.run, 0);
        assert!(!report.cap_hit);
        assert!(report.all_passed());
    }

    #[test]
    fn validate_rejects_zero_fields() {
        let ok = FamilyConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        let bad = FamilyConfig { depth: 0, ..ok };
        assert_eq!(bad.validate(), Err(FamilyConfigError::ZeroDepth));
        let bad = FamilyConfig {
            max_members: 0,
            ..ok
        };
        assert_eq!(bad.validate(), Err(FamilyConfigError::ZeroMaxMembers));
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("max_members"));
    }
}
