//! Determinism regression: a scheduler run is a pure function of
//! `(store, workload, config, seed)`.
//!
//! The whole scientific value of seeded exploration rests on this — a
//! counterexample seed printed months ago must replay the identical
//! execution trace byte for byte, across platforms and releases. The
//! trace text format is the canonical serialization, so byte equality of
//! `trace::to_text` is the strongest practical statement of "identical
//! run".

use haec::prelude::*;
use haec::sim::trace;

fn run(steps: usize, seed: u64, spec: SpecKind, factory: &dyn StoreFactory) -> String {
    let mut sim = Simulator::new(factory, StoreConfig::new(3, 2));
    let mut wl = Workload::new(spec, 3, 2, 0.4, KeyDistribution::Uniform);
    let cfg = ScheduleConfig {
        steps,
        ..ScheduleConfig::default()
    };
    run_schedule(&mut sim, &mut wl, &cfg, seed);
    trace::to_text(sim.execution())
}

#[test]
fn same_seed_same_trace_bytes() {
    for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        let a = run(250, seed, SpecKind::Mvr, &DvvMvrStore);
        let b = run(250, seed, SpecKind::Mvr, &DvvMvrStore);
        assert_eq!(a.as_bytes(), b.as_bytes(), "seed {seed} not reproducible");
    }
}

#[test]
fn same_seed_same_trace_across_stores() {
    // Determinism is not an MVR accident: every store family replays.
    let factories: [(&dyn StoreFactory, SpecKind); 3] = [
        (&OrSetStore, SpecKind::OrSet),
        (&LwwStore, SpecKind::LwwRegister),
        (&CounterStore, SpecKind::Counter),
    ];
    for (factory, spec) in factories {
        let a = run(150, 7, spec, factory);
        let b = run(150, 7, spec, factory);
        assert_eq!(
            a.as_bytes(),
            b.as_bytes(),
            "{} not reproducible",
            factory.name()
        );
    }
}

#[test]
fn different_seeds_different_schedules() {
    let traces: Vec<String> = (0..5)
        .map(|s| run(250, s, SpecKind::Mvr, &DvvMvrStore))
        .collect();
    for i in 0..traces.len() {
        for j in i + 1..traces.len() {
            assert_ne!(
                traces[i], traces[j],
                "seeds {i} and {j} produced identical schedules"
            );
        }
    }
}

#[test]
fn det_collections_iterate_in_stable_order() {
    // The haec_core::det wrappers are the sanctioned replacement for raw
    // hash collections (enforced by haec-lint): whatever order entries
    // arrive in — here, two seeded shuffles of the same key set — the
    // iteration order is ascending and therefore identical.
    use haec::core::det::{DetMap, DetSet};
    use haec_testkit::Rng;

    let mut keys: Vec<u64> = (0..64).collect();
    let mut shuffled = keys.clone();
    let mut rng = Rng::seed_from_u64(99);
    for i in (1..shuffled.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        shuffled.swap(i, j);
    }
    assert_ne!(keys, shuffled, "shuffle must change insertion order");

    let a: DetMap<u64, u64> = keys.iter().map(|&k| (k, k * 2)).collect();
    let b: DetMap<u64, u64> = shuffled.iter().map(|&k| (k, k * 2)).collect();
    let order_a: Vec<u64> = a.keys().copied().collect();
    let order_b: Vec<u64> = b.keys().copied().collect();
    keys.sort_unstable();
    assert_eq!(order_a, keys, "DetMap iterates in ascending key order");
    assert_eq!(order_a, order_b, "insertion order is invisible");

    let sa: DetSet<u64> = keys.iter().copied().collect();
    let sb: DetSet<u64> = shuffled.iter().copied().collect();
    let items_a: Vec<u64> = sa.iter().copied().collect();
    let items_b: Vec<u64> = sb.iter().copied().collect();
    assert_eq!(items_a, keys);
    assert_eq!(items_a, items_b);
}

#[test]
fn report_json_is_byte_identical_across_same_seed_runs() {
    // The structured run report — the same path `report --json` drives —
    // must serialize byte-identically for the same (store, config, seed).
    // The normalized form zeroes the wall-clock span nanoseconds, which
    // are the one sanctioned nondeterministic field.
    use haec::sim::{ReportConfig, RunReport};

    let config = ReportConfig {
        exploration: ExplorationConfig {
            schedule: ScheduleConfig {
                steps: 200,
                drop_prob: 0.05,
                dup_prob: 0.05,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        },
        log_capacity: 16,
        ..ReportConfig::default()
    };
    for seed in [7u64, 42] {
        let a = RunReport::collect(&DvvMvrStore, &config, seed).to_json_normalized();
        let b = RunReport::collect(&DvvMvrStore, &config, seed).to_json_normalized();
        assert_eq!(
            a.as_bytes(),
            b.as_bytes(),
            "report JSON for seed {seed} not byte-identical"
        );
    }
}

#[test]
fn parallel_exploration_report_json_is_byte_identical_across_thread_counts() {
    // The parallel explorer's whole claim: the run-report JSON assembled
    // from its observer stream is byte-for-byte the sequential report, at
    // every thread count. Nothing about worker scheduling may leak into
    // the serialized output.
    use haec::sim::exhaustive::{explore_all_observed, explore_all_parallel_observed};
    use haec::sim::exhaustive::{ExhaustiveConfig, ParallelConfig};
    use haec::sim::obs::stats::StatsObserver;
    use haec::sim::{ReportConfig, RunReport};

    let config = ExhaustiveConfig {
        store_config: StoreConfig::new(2, 1),
        ops: vec![Op::Write(Value::new(0)), Op::Read],
        depth: 4,
        max_schedules: usize::MAX,
        dedup: false,
        por: false,
        symmetry: false,
    };
    let report_json = |stats: StatsObserver| {
        let mut rep = RunReport::collect(&DvvMvrStore, &ReportConfig::default(), 7);
        rep.stats = stats;
        rep.to_json_normalized()
    };

    let mut seq_stats = StatsObserver::new();
    let seq = explore_all_observed(&DvvMvrStore, &config, &mut |_| true, &mut seq_stats);
    let seq_json = report_json(seq_stats);

    for threads in [1usize, 2, 8] {
        let mut par_stats = StatsObserver::new();
        let par = explore_all_parallel_observed(
            &DvvMvrStore,
            &config,
            &ParallelConfig::with_threads(threads),
            &|_| true,
            &mut par_stats,
        );
        assert_eq!(seq.schedules, par.schedules, "threads={threads}");
        let par_json = report_json(par_stats);
        assert_eq!(
            seq_json.as_bytes(),
            par_json.as_bytes(),
            "report JSON diverges from sequential at threads={threads}"
        );
    }
}

#[test]
fn reduced_search_json_with_dedup_counters_is_thread_invariant() {
    // The shared dedup table's contract, serialized: with POR, symmetry
    // canonicalization, and dedup all on, the run-report JSON — including
    // the `search` section's dedup_hits / dedup_misses counters, which
    // before the level-barrier table depended on worker timing — is
    // byte-identical at thread counts 1, 2, and 8 for a fixed
    // (config, split_depth, level_width).
    use haec::sim::exhaustive::{explore_all_parallel_observed, ExhaustiveConfig, ParallelConfig};
    use haec::sim::obs::stats::StatsObserver;
    use haec::sim::{ReportConfig, RunReport};

    let config = ExhaustiveConfig {
        store_config: StoreConfig::new(3, 2),
        ops: vec![Op::Write(Value::new(0)), Op::Read],
        depth: 4,
        max_schedules: usize::MAX,
        dedup: true,
        por: true,
        symmetry: true,
    };
    let mut baseline: Option<(String, u64, u64)> = None;
    for threads in [1usize, 2, 8] {
        let mut stats = StatsObserver::new();
        explore_all_parallel_observed(
            &DvvMvrStore,
            &config,
            &ParallelConfig::with_threads(threads),
            &|_| true,
            &mut stats,
        );
        let (hits, misses) = (stats.dedup_hits(), stats.dedup_misses());
        let mut rep = RunReport::collect(&DvvMvrStore, &ReportConfig::default(), 7);
        rep.stats = stats;
        let json = rep.to_json_normalized();
        match &baseline {
            None => {
                assert!(misses > 0, "dedup must be exercised for the pin to bite");
                baseline = Some((json, hits, misses));
            }
            Some((base_json, base_hits, base_misses)) => {
                assert_eq!(
                    (&hits, &misses),
                    (base_hits, base_misses),
                    "threads={threads}"
                );
                assert_eq!(
                    base_json.as_bytes(),
                    json.as_bytes(),
                    "search JSON diverges at threads={threads}"
                );
            }
        }
    }
}

#[test]
fn workload_stream_is_deterministic_standalone() {
    // The workload PRNG stream itself (not just the end-to-end trace) is
    // stable: the same seed yields the same operation sequence.
    use haec_testkit::Rng;
    let mut w1 = Workload::new(
        SpecKind::OrSet,
        4,
        3,
        0.5,
        KeyDistribution::Zipf { theta: 1.0 },
    );
    let mut w2 = Workload::new(
        SpecKind::OrSet,
        4,
        3,
        0.5,
        KeyDistribution::Zipf { theta: 1.0 },
    );
    let mut r1 = Rng::seed_from_u64(1234);
    let mut r2 = Rng::seed_from_u64(1234);
    for _ in 0..200 {
        assert_eq!(w1.next_op(&mut r1), w2.next_op(&mut r2));
    }
    let mut r3 = Rng::seed_from_u64(1235);
    let ops1: Vec<_> = (0..50).map(|_| w1.next_op(&mut r1)).collect();
    let ops3: Vec<_> = (0..50).map(|_| w2.next_op(&mut r3)).collect();
    assert_ne!(ops1, ops3, "adjacent seeds should not collide");
}

#[test]
fn parallel_counterexample_is_thread_invariant() {
    // Regression for the `relaxed-ordering-decision` finding the taint
    // pass surfaced in the parallel explorer's worker loop: the unit
    // claim / cancellation atomics now use `SeqCst`, and the surviving
    // counterexample must be the sequential engine's *first* one at
    // every thread count — which worker happened to fail first may not
    // influence which schedule is reported.
    use haec::sim::exhaustive::{
        explore_all, explore_all_parallel, ExhaustiveConfig, ParallelConfig,
    };

    fn causal_check(sim: &Simulator) -> bool {
        let Ok(a) = sim.abstract_execution() else {
            return false;
        };
        check_correct(&a, &ObjectSpecs::uniform(SpecKind::Mvr)).is_ok() && causal::check(&a).is_ok()
    }

    let config = ExhaustiveConfig {
        store_config: StoreConfig::new(3, 2),
        depth: 5,
        max_schedules: usize::MAX,
        ..ExhaustiveConfig::default()
    };
    let sequential = explore_all(&BoundedStore, &config, &mut |sim| causal_check(sim));
    assert!(
        sequential.counterexample.is_some(),
        "bounded store must fail somewhere at depth 5"
    );
    for threads in [1usize, 2, 8] {
        let par = explore_all_parallel(
            &BoundedStore,
            &config,
            &ParallelConfig::with_threads(threads),
            &causal_check,
        );
        assert_eq!(par.schedules, sequential.schedules, "threads={threads}");
        assert_eq!(
            par.counterexample, sequential.counterexample,
            "counterexample diverges from sequential at threads={threads}"
        );
    }
}

#[test]
fn workspace_is_lint_clean_and_lint_json_is_byte_identical() {
    // The determinism contract applies to the linter too: the workspace
    // gates on zero unsuppressed findings, and the `--json` report —
    // which CI archives and byte-compares across consecutive runs — must
    // serialize identically for an unchanged tree.
    use haec_lint::lint_workspace;

    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let a = lint_workspace(&root).expect("workspace scan");
    assert!(
        a.is_clean(),
        "unsuppressed lint findings:\n{:#?}",
        a.diagnostics
            .iter()
            .filter(|d| !d.suppressed)
            .collect::<Vec<_>>()
    );
    let b = lint_workspace(&root).expect("workspace scan");
    assert_eq!(
        a.to_json_string().as_bytes(),
        b.to_json_string().as_bytes(),
        "lint JSON report is not byte-identical across two runs"
    );
}
