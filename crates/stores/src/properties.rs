//! Dynamic verification of the write-propagating properties (paper, §4).
//!
//! A store is *write-propagating* if it has **invisible reads**
//! (Definition 16) and **op-driven messages** (Definition 15). The paper's
//! model also assumes message content is a deterministic function of the
//! state and that a send relays everything pending. These are properties of
//! implementations, so this module checks them *dynamically*: it drives the
//! store through seeded pseudo-random schedules and observes fingerprints
//! and pending messages at every step.
//!
//! A passing report is evidence (not proof) of the property; a failing
//! report is a concrete counterexample schedule.

use haec_model::{
    ObjectId, Op, Payload, ReplicaId, ReplicaMachine, StoreConfig, StoreFactory, Value,
};
use std::fmt;

/// A property violation found while driving a store.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PropertyViolation {
    /// A read changed the replica state (violates Definition 16).
    VisibleRead {
        /// The step index of the offending read.
        step: usize,
        /// The replica whose state changed.
        replica: ReplicaId,
    },
    /// A replica had a message pending in its initial state (violates
    /// Definition 15 condition 1).
    InitialPending {
        /// The replica.
        replica: ReplicaId,
    },
    /// A receive created a pending message where none existed (violates
    /// Definition 15 condition 2).
    ReceiveCreatedPending {
        /// The step index of the offending receive.
        step: usize,
        /// The replica.
        replica: ReplicaId,
    },
    /// `pending_message` returned different payloads for the same state.
    NondeterministicMessage {
        /// The step index.
        step: usize,
        /// The replica.
        replica: ReplicaId,
    },
    /// A message was still pending immediately after a send.
    PendingAfterSend {
        /// The step index of the send.
        step: usize,
        /// The replica.
        replica: ReplicaId,
    },
}

impl fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyViolation::VisibleRead { step, replica } => {
                write!(f, "step {step}: read changed state of {replica}")
            }
            PropertyViolation::InitialPending { replica } => {
                write!(f, "{replica} has a message pending in its initial state")
            }
            PropertyViolation::ReceiveCreatedPending { step, replica } => {
                write!(
                    f,
                    "step {step}: receive created pending message at {replica}"
                )
            }
            PropertyViolation::NondeterministicMessage { step, replica } => {
                write!(
                    f,
                    "step {step}: nondeterministic pending message at {replica}"
                )
            }
            PropertyViolation::PendingAfterSend { step, replica } => {
                write!(
                    f,
                    "step {step}: message still pending after send at {replica}"
                )
            }
        }
    }
}

impl std::error::Error for PropertyViolation {}

/// The outcome of a property-check run.
#[derive(Clone, Debug)]
pub struct PropertyReport {
    /// The store checked.
    pub store: String,
    /// Steps executed.
    pub steps: usize,
    /// Violations found (empty for a write-propagating store).
    pub violations: Vec<PropertyViolation>,
}

impl PropertyReport {
    /// Returns `true` if no violations were found.
    pub fn is_write_propagating(&self) -> bool {
        self.violations.is_empty()
    }

    /// Returns `true` if a visible-read violation was found.
    pub fn has_visible_reads(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, PropertyViolation::VisibleRead { .. }))
    }

    /// Returns `true` if an op-driven-messages violation was found.
    pub fn violates_op_driven(&self) -> bool {
        self.violations.iter().any(|v| {
            matches!(
                v,
                PropertyViolation::InitialPending { .. }
                    | PropertyViolation::ReceiveCreatedPending { .. }
            )
        })
    }
}

/// A tiny deterministic xorshift generator so this crate needs no RNG
/// dependency; schedules are replayable from the seed.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Drives `factory`'s store through `steps` pseudo-random events (client
/// ops, sends, deliveries with drops/duplicates) and checks all
/// write-propagating properties along the way.
///
/// The operation mix uses MVR-style writes and reads; stores with other
/// interfaces can be checked with [`check_with_ops`].
pub fn check_write_propagating(
    factory: &dyn StoreFactory,
    config: StoreConfig,
    seed: u64,
    steps: usize,
) -> PropertyReport {
    let ops: Vec<Op> = (0..8u64)
        .map(|i| {
            if i < 4 {
                Op::Write(Value::new(i))
            } else {
                Op::Read
            }
        })
        .collect();
    check_with_ops(factory, config, seed, steps, &ops)
}

/// Like [`check_write_propagating`], but drawing client operations from
/// `ops` (values are made unique automatically for write-like operations).
pub fn check_with_ops(
    factory: &dyn StoreFactory,
    config: StoreConfig,
    seed: u64,
    steps: usize,
    ops: &[Op],
) -> PropertyReport {
    let mut rng = XorShift::new(seed);
    let mut machines: Vec<Box<dyn ReplicaMachine>> = (0..config.n_replicas)
        .map(|i| factory.spawn(ReplicaId::new(i as u32), config))
        .collect();
    let mut violations = Vec::new();
    for (i, m) in machines.iter().enumerate() {
        if m.pending_message().is_some() {
            violations.push(PropertyViolation::InitialPending {
                replica: ReplicaId::new(i as u32),
            });
        }
    }
    let mut inflight: Vec<(usize, Payload)> = Vec::new(); // (target, payload)
    let mut fresh_value = 1_000_000u64;
    for step in 0..steps {
        let r = rng.below(config.n_replicas);
        let replica = ReplicaId::new(r as u32);
        match rng.below(4) {
            0 | 1 => {
                // Client operation.
                let obj = ObjectId::new(rng.below(config.n_objects) as u32);
                let mut op = ops[rng.below(ops.len())].clone();
                if let Op::Write(_) = op {
                    fresh_value += 1;
                    op = Op::Write(Value::new(fresh_value));
                }
                if op.is_read() {
                    let before = machines[r].state_fingerprint();
                    machines[r].do_op(obj, &op);
                    if machines[r].state_fingerprint() != before {
                        violations.push(PropertyViolation::VisibleRead { step, replica });
                    }
                } else {
                    machines[r].do_op(obj, &op);
                }
            }
            2 => {
                // Send, if pending. Check determinism and post-send state.
                let p1 = machines[r].pending_message();
                let p2 = machines[r].pending_message();
                if p1 != p2 {
                    violations.push(PropertyViolation::NondeterministicMessage { step, replica });
                }
                if let Some(p) = p1 {
                    machines[r].on_send();
                    if machines[r].pending_message().is_some() {
                        violations.push(PropertyViolation::PendingAfterSend { step, replica });
                    }
                    for t in 0..config.n_replicas {
                        if t != r && rng.below(10) > 0 {
                            // 10% drop rate per target.
                            inflight.push((t, p.clone()));
                            if rng.below(10) == 0 {
                                inflight.push((t, p.clone())); // duplicate
                            }
                        }
                    }
                }
            }
            _ => {
                // Deliver a random in-flight message.
                if !inflight.is_empty() {
                    let i = rng.below(inflight.len());
                    let (t, p) = inflight.swap_remove(i);
                    let target = ReplicaId::new(t as u32);
                    let had_pending = machines[t].pending_message().is_some();
                    machines[t].on_receive(&p);
                    if !had_pending && machines[t].pending_message().is_some() {
                        violations.push(PropertyViolation::ReceiveCreatedPending {
                            step,
                            replica: target,
                        });
                    }
                }
            }
        }
        if violations.len() > 16 {
            break; // enough evidence
        }
    }
    PropertyReport {
        store: factory.name().to_owned(),
        steps,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterexamples::{BoundedStore, KDelayedStore, SequencedStore};
    use crate::lww::LwwStore;
    use crate::mvr::DvvMvrStore;
    use crate::orset::{CounterStore, OrSetStore};

    fn cfg() -> StoreConfig {
        StoreConfig::new(3, 2)
    }

    #[test]
    fn dvv_mvr_is_write_propagating() {
        for seed in 1..=5 {
            let rep = check_write_propagating(&DvvMvrStore, cfg(), seed, 400);
            assert!(
                rep.is_write_propagating(),
                "seed {seed}: {:?}",
                rep.violations
            );
        }
    }

    #[test]
    fn lww_is_write_propagating() {
        let rep = check_write_propagating(&LwwStore, cfg(), 7, 400);
        assert!(rep.is_write_propagating(), "{:?}", rep.violations);
    }

    #[test]
    fn orset_is_write_propagating() {
        let ops = vec![
            Op::Add(Value::new(1)),
            Op::Add(Value::new(2)),
            Op::Remove(Value::new(1)),
            Op::Read,
            Op::Read,
        ];
        let rep = check_with_ops(&OrSetStore, cfg(), 9, 400, &ops);
        assert!(rep.is_write_propagating(), "{:?}", rep.violations);
    }

    #[test]
    fn counter_is_write_propagating() {
        let ops = vec![Op::Inc, Op::Inc, Op::Read];
        let rep = check_with_ops(&CounterStore, cfg(), 11, 300, &ops);
        assert!(rep.is_write_propagating(), "{:?}", rep.violations);
    }

    #[test]
    fn bounded_store_is_write_propagating() {
        // Bounded messages break causality, not write-propagation.
        let rep = check_write_propagating(&BoundedStore, cfg(), 13, 400);
        assert!(rep.is_write_propagating(), "{:?}", rep.violations);
    }

    #[test]
    fn k_delayed_store_has_visible_reads() {
        let rep = check_write_propagating(&KDelayedStore::new(2), cfg(), 17, 400);
        assert!(rep.has_visible_reads(), "reads must be caught mutating");
        assert!(!rep.violates_op_driven());
    }

    #[test]
    fn sequenced_store_violates_op_driven_messages() {
        let rep = check_write_propagating(&SequencedStore, cfg(), 19, 600);
        assert!(
            rep.violates_op_driven(),
            "sequencer must be caught creating pending on receive: {:?}",
            rep.violations
        );
    }

    #[test]
    fn report_metadata() {
        let rep = check_write_propagating(&DvvMvrStore, cfg(), 1, 50);
        assert_eq!(rep.store, "dvv-mvr");
        assert_eq!(rep.steps, 50);
    }

    #[test]
    fn violation_display() {
        let v = PropertyViolation::VisibleRead {
            step: 3,
            replica: ReplicaId::new(1),
        };
        assert_eq!(v.to_string(), "step 3: read changed state of R1");
    }
}
