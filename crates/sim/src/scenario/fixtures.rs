//! The named fixture families used by the conformance matrix, the
//! determinism pins, CI smoke, and the docs.
//!
//! All three are parameterised by [`SpecKind`] so every store in the
//! matrix exercises them with its own update operation; enumeration
//! counts are spec-independent (pinned in `tests/scenario_families.rs`).

use super::{Pat, Scenario, ScenarioFilter};
use haec_core::SpecKind;
use haec_model::{ObjectId, Op, ReplicaId, Value};

/// The canonical update operation for a spec. Payload values are
/// placeholders — [`run_member`](super::run_member) uniquifies them by
/// step position.
pub fn update_op(spec: SpecKind) -> Op {
    match spec {
        SpecKind::Mvr | SpecKind::LwwRegister => Op::Write(Value::new(0)),
        SpecKind::OrSet => Op::Add(Value::new(0)),
        SpecKind::Counter => Op::Inc,
        SpecKind::EwFlag => Op::Enable,
    }
}

fn x() -> ObjectId {
    ObjectId::new(0)
}

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}

/// **concurrent-write-pair**: two updates to the same object from a
/// choice of replicas, then quiescence, filtered to genuinely concurrent
/// pairs (distinct replicas, no delivery between). With `n_replicas = 3`
/// this enumerates 6 members — the ordered distinct pairs.
///
/// This is the shape behind the paper's Theorem 6 separation: a
/// concurrent-write pair is exactly what an MVR must keep and an LWW
/// register must arbitrate.
pub fn concurrent_write_pair(spec: SpecKind, n_replicas: usize) -> Scenario {
    let writes = Scenario::choice(
        (0..n_replicas)
            .map(|i| Scenario::atom(Pat::Op(r(i as u32), x(), update_op(spec))))
            .collect(),
    );
    let body = Scenario::seq(vec![
        Scenario::hole("a"),
        Scenario::hole("b"),
        Scenario::atom(Pat::Quiesce),
    ]);
    Scenario::filter(
        ScenarioFilter::ConcurrentWritePairs { min: 1 },
        Scenario::plug(Scenario::plug(body, "a", writes.clone()), "b", writes),
    )
}

/// **heal-before-quiesce**: replica 2 is partitioned off while a causal
/// chain of two updates forms on the majority side; the window heals and
/// the *newest* copy — the causally later update — reaches replica 2
/// first, read there before quiescence. 4 members: writer order
/// (R0→R1 / R1→R0) × an optional duplication of the stale copy.
///
/// Causally consistent stores buffer the out-of-order delivery; an LWW
/// register applies it immediately, so the pre-quiescence read exposes
/// the Definition 12 violation (the paper's Theorem 12 shape).
pub fn heal_before_quiesce(spec: SpecKind) -> Scenario {
    let chain = |w1: u32, w2: u32| {
        Scenario::seq(vec![
            Scenario::atom(Pat::Op(r(w1), x(), update_op(spec))),
            Scenario::atom(Pat::Flush(r(w1))),
            Scenario::atom(Pat::DeliverOldest),
            Scenario::atom(Pat::Op(r(w2), x(), update_op(spec))),
            Scenario::atom(Pat::Flush(r(w2))),
        ])
    };
    let body = Scenario::seq(vec![
        Scenario::atom(Pat::PartitionStart(vec![2])),
        Scenario::hole("chain"),
        Scenario::atom(Pat::PartitionHeal),
        Scenario::hole("dup"),
        Scenario::atom(Pat::DeliverNewest),
        Scenario::atom(Pat::Op(r(2), x(), Op::Read)),
        Scenario::atom(Pat::Quiesce),
    ]);
    Scenario::filter(
        ScenarioFilter::HealsBeforeQuiesce,
        Scenario::plug(
            Scenario::plug(
                body,
                "chain",
                Scenario::choice(vec![chain(0, 1), chain(1, 0)]),
            ),
            "dup",
            Scenario::choice(vec![Scenario::empty(), Scenario::atom(Pat::DupOldest)]),
        ),
    )
}

/// **dup-storm**: one update broadcast, its oldest copy duplicated one
/// to three times, then quiescence delivers every copy. 3 members.
/// Idempotent delivery (every store's duplicate-tolerance obligation)
/// must keep the outcome identical to a single delivery.
pub fn dup_storm(spec: SpecKind) -> Scenario {
    let dups = |k: usize| Scenario::seq(vec![Scenario::atom(Pat::DupOldest); k]);
    Scenario::filter(
        ScenarioFilter::MinDuplicates(1),
        Scenario::seq(vec![
            Scenario::atom(Pat::Op(r(0), x(), update_op(spec))),
            Scenario::atom(Pat::Flush(r(0))),
            Scenario::choice(vec![dups(1), dups(2), dups(3)]),
            Scenario::atom(Pat::Quiesce),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_op_matches_each_spec() {
        assert_eq!(update_op(SpecKind::Mvr), Op::Write(Value::new(0)));
        assert_eq!(update_op(SpecKind::LwwRegister), Op::Write(Value::new(0)));
        assert_eq!(update_op(SpecKind::OrSet), Op::Add(Value::new(0)));
        assert_eq!(update_op(SpecKind::Counter), Op::Inc);
        assert_eq!(update_op(SpecKind::EwFlag), Op::Enable);
    }

    #[test]
    fn fixture_counts_are_spec_independent() {
        for spec in [
            SpecKind::Mvr,
            SpecKind::LwwRegister,
            SpecKind::OrSet,
            SpecKind::Counter,
            SpecKind::EwFlag,
        ] {
            assert_eq!(concurrent_write_pair(spec, 3).count_to_depth(12), 6);
            assert_eq!(heal_before_quiesce(spec).count_to_depth(12), 4);
            assert_eq!(dup_storm(spec).count_to_depth(12), 3);
        }
    }

    #[test]
    fn every_member_satisfies_the_family_filters() {
        let families = [
            concurrent_write_pair(SpecKind::Mvr, 3),
            heal_before_quiesce(SpecKind::Mvr),
            dup_storm(SpecKind::OrSet),
        ];
        for family in &families {
            let filters = family.top_filters();
            assert!(!filters.is_empty());
            for m in family.iter_to_depth(12) {
                for f in &filters {
                    assert!(f.accepts(&m), "{f:?} rejects member {m:?}");
                }
            }
        }
    }

    #[test]
    fn depth_gates_the_longer_members() {
        // heal-before-quiesce members have lengths 10 and 11; at depth 10
        // only the two no-dup members survive.
        let family = heal_before_quiesce(SpecKind::Mvr);
        let lens: Vec<usize> = family.iter_to_depth(12).iter().map(Vec::len).collect();
        assert_eq!(lens, [10, 11, 10, 11]);
        assert_eq!(family.count_to_depth(10), 2);
        assert_eq!(family.count_to_depth(9), 0);
    }
}
