//! Revealing executions (paper, §5.2.1).
//!
//! An MVR abstract execution is *revealing* if every write `w` is
//! immediately preceded, at its replica, by a read `r_w` of the same object
//! that is identical to `w` with respect to visibility. The read "reveals"
//! the state of the MVR at the moment of the write, which lets the
//! Theorem 6 proof reason about which writes are visible to `w`.
//!
//! The paper argues the revealing assumption is without loss of generality:
//! because reads are invisible, inserting the `r_w` operations does not
//! affect any other response, and stripping them from a complying concrete
//! execution yields one complying with the original. [`make_revealing`]
//! performs the insertion; [`is_revealing`] checks the property.

use haec_core::{AbstractExecution, AbstractExecutionBuilder, OperationContext, SpecKind};
use haec_model::{Op, ReturnValue};

/// The result of [`make_revealing`]: the transformed execution plus the
/// mapping from original event indices to their new positions.
#[derive(Clone, Debug)]
pub struct RevealingExecution {
    /// The revealing execution `A'`.
    pub execution: AbstractExecution,
    /// `new_index[i]` is the position in `A'` of event `i` of `A`.
    pub new_index: Vec<usize>,
    /// Positions in `A'` of the inserted `r_w` reads (parallel to the
    /// writes they reveal, in `H` order).
    pub inserted_reads: Vec<usize>,
}

/// Tests whether `a` is revealing: every write `w` is immediately preceded
/// at its replica by a read of `obj(w)` whose visibility relations mirror
/// `w`'s exactly.
pub fn is_revealing(a: &AbstractExecution) -> bool {
    for w in 0..a.len() {
        if !matches!(a.event(w).op, Op::Write(_)) {
            continue;
        }
        // Find the previous event at the same replica.
        let prev = (0..w)
            .rev()
            .find(|&i| a.event(i).replica == a.event(w).replica);
        let Some(r) = prev else { return false };
        let re = a.event(r);
        if !re.op.is_read() || re.obj != a.event(w).obj {
            return false;
        }
        // Mirror condition: r_w vis e ⟺ w vis e (e ≠ w), e vis r_w ⟺
        // e vis w (e ≠ r_w).
        for e in 0..a.len() {
            if e != w && e != r {
                if a.sees(r, e) != a.sees(w, e) {
                    return false;
                }
                if a.sees(e, r) != a.sees(e, w) {
                    return false;
                }
            }
        }
    }
    true
}

/// Inserts a revealing read `r_w` before every write of `a`, mirroring the
/// write's visibility, and computes each `r_w`'s response from the MVR
/// specification (so the result is correct whenever `a` is).
///
/// # Panics
///
/// Panics if `a` is not structurally valid for the insertion (cannot happen
/// for causally consistent inputs produced by this crate's generators).
pub fn make_revealing(a: &AbstractExecution) -> RevealingExecution {
    let mut b = AbstractExecutionBuilder::new();
    let mut new_index = vec![0usize; a.len()];
    let mut read_of_write: Vec<(usize, usize)> = Vec::new(); // (write old ix, read new ix)
    #[allow(clippy::needless_range_loop)] // i indexes both A and new_index
    for i in 0..a.len() {
        let e = a.event(i);
        if matches!(e.op, Op::Write(_)) {
            let r = b.push(e.replica, e.obj, Op::Read, ReturnValue::empty());
            read_of_write.push((i, r));
        }
        new_index[i] = b.push(e.replica, e.obj, e.op.clone(), e.rval.clone());
    }
    // Original edges.
    for (i, j) in a.vis().iter_pairs() {
        b.vis(new_index[i], new_index[j]);
    }
    // Mirror edges for each inserted read.
    for &(w, r_new) in &read_of_write {
        #[allow(clippy::needless_range_loop)] // e indexes both A and new_index
        for e in 0..a.len() {
            if e == w {
                continue;
            }
            if a.sees(w, e) {
                b.vis(r_new, new_index[e]);
            }
            if a.sees(e, w) {
                b.vis(new_index[e], r_new);
            }
        }
        // Between inserted reads: r_{w'} relates to r_w as w' relates to w.
        for &(w2, r2_new) in &read_of_write {
            if w2 != w && a.sees(w2, w) && r2_new < r_new {
                b.vis(r2_new, r_new);
            }
        }
    }
    let skeleton = b
        .build_transitive()
        .expect("revealing insertion preserves structure");
    // Second pass: compute each r_w's response from its context.
    let mut events: Vec<_> = skeleton.events().to_vec();
    let inserted: Vec<usize> = read_of_write.iter().map(|&(_, r)| r).collect();
    for &r in &inserted {
        let ctx = OperationContext::of(&skeleton, r);
        events[r].rval = SpecKind::Mvr.expected_rval(&ctx);
    }
    let execution = AbstractExecution::from_parts(events, skeleton.vis().clone())
        .expect("rval fixup preserves structure");
    RevealingExecution {
        execution,
        new_index,
        inserted_reads: inserted,
    }
}

/// Strips the events at the given positions from an abstract execution —
/// the inverse of [`make_revealing`] on the inserted reads.
#[must_use]
pub fn strip_events(a: &AbstractExecution, remove: &[usize]) -> AbstractExecution {
    let keep: Vec<usize> = (0..a.len()).filter(|i| !remove.contains(i)).collect();
    let events = keep.iter().map(|&i| a.event(i).clone()).collect();
    let vis = a.vis().restrict(&keep);
    AbstractExecution::from_parts(events, vis).expect("stripping reads preserves structure")
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_core::{causal, check_correct, ObjectSpecs};
    use haec_model::{ObjectId, ReplicaId, Value};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }
    fn specs() -> ObjectSpecs {
        ObjectSpecs::uniform(SpecKind::Mvr)
    }

    fn sample() -> AbstractExecution {
        let mut b = AbstractExecutionBuilder::new();
        let w1 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let w2 = b.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        let rd = b.push(r(2), x(0), Op::Read, ReturnValue::values([v(1), v(2)]));
        b.vis(w1, rd).vis(w2, rd);
        b.build_transitive().unwrap()
    }

    #[test]
    fn sample_is_not_revealing() {
        assert!(!is_revealing(&sample()));
    }

    #[test]
    fn transform_produces_revealing_execution() {
        let rev = make_revealing(&sample());
        assert!(is_revealing(&rev.execution), "{}", rev.execution.display());
        assert_eq!(rev.execution.len(), 5); // 3 original + 2 inserted
        assert_eq!(rev.inserted_reads.len(), 2);
    }

    #[test]
    fn transform_preserves_correctness_and_causality() {
        let rev = make_revealing(&sample());
        assert!(check_correct(&rev.execution, &specs()).is_ok());
        assert!(causal::check(&rev.execution).is_ok());
    }

    #[test]
    fn inserted_reads_reveal_write_context() {
        // R0 writes v1; R1 sees it and overwrites with v2. The revealing
        // read before v2's write must return {v1}.
        let mut b = AbstractExecutionBuilder::new();
        let w1 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let w2 = b.push(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        b.vis(w1, w2);
        let a = b.build_transitive().unwrap();
        let rev = make_revealing(&a);
        let r_w2 = rev.new_index[w2] - 1;
        assert!(rev.inserted_reads.contains(&r_w2));
        assert_eq!(rev.execution.event(r_w2).rval, ReturnValue::values([v(1)]));
        // And the read before w1 sees nothing.
        let r_w1 = rev.new_index[w1] - 1;
        assert_eq!(rev.execution.event(r_w1).rval, ReturnValue::empty());
    }

    #[test]
    fn strip_recovers_original() {
        let a = sample();
        let rev = make_revealing(&a);
        let stripped = strip_events(&rev.execution, &rev.inserted_reads);
        assert_eq!(stripped.len(), a.len());
        assert!(stripped.is_equivalent(&a));
    }

    #[test]
    fn empty_execution_is_trivially_revealing() {
        let a = AbstractExecutionBuilder::new().build().unwrap();
        assert!(is_revealing(&a));
        let rev = make_revealing(&a);
        assert!(rev.execution.is_empty());
    }

    #[test]
    fn already_revealing_execution_detected() {
        let a = sample();
        let rev = make_revealing(&a);
        // Transforming again inserts more reads but the input is already
        // revealing.
        assert!(is_revealing(&rev.execution));
    }
}
