//! Per-run cost metrics: message counts and sizes, staleness, convergence.
//!
//! The paper's lower bounds are about inherent *costs* — message bits,
//! replica state. This module extracts the measurable costs from a
//! simulated run so stores can be compared like systems in an evaluation
//! section: operations executed, messages broadcast, total and maximum
//! message bits, delivery counts, and bits-per-update ratios.

use crate::simulator::Simulator;
use haec_model::EventKind;
use std::fmt;

/// Cost statistics of one execution.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RunMetrics {
    /// Client operations executed.
    pub do_events: usize,
    /// Update (non-read) operations.
    pub updates: usize,
    /// Messages broadcast.
    pub sends: usize,
    /// Message copies delivered.
    pub receives: usize,
    /// Total bits across all broadcast messages.
    pub total_message_bits: usize,
    /// Largest single message, in bits.
    pub max_message_bits: usize,
    /// Replica state size (bits) summed over replicas at the end.
    pub final_state_bits: usize,
    /// Largest summed replica state (bits) sampled after any event during
    /// the run — state that was later garbage-collected still counts.
    pub peak_state_bits: usize,
}

impl RunMetrics {
    /// Average message size in bits (0 if no messages).
    pub fn avg_message_bits(&self) -> f64 {
        if self.sends == 0 {
            0.0
        } else {
            self.total_message_bits as f64 / self.sends as f64
        }
    }

    /// Total message bits divided by update count — the propagation cost
    /// per update (0 if no updates).
    pub fn bits_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.total_message_bits as f64 / self.updates as f64
        }
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops ({} updates), {} sends / {} receives, {} total bits \
             (max {}, avg {:.1}, {:.1} bits/update), {} state bits (peak {})",
            self.do_events,
            self.updates,
            self.sends,
            self.receives,
            self.total_message_bits,
            self.max_message_bits,
            self.avg_message_bits(),
            self.bits_per_update(),
            self.final_state_bits,
            self.peak_state_bits
        )
    }
}

/// Computes the metrics of a simulator's execution so far.
pub fn measure(sim: &Simulator) -> RunMetrics {
    let ex = sim.execution();
    let mut m = RunMetrics::default();
    for e in ex.events() {
        match &e.kind {
            EventKind::Do { op, .. } => {
                m.do_events += 1;
                if op.is_update() {
                    m.updates += 1;
                }
            }
            EventKind::Send { msg } => {
                m.sends += 1;
                let bits = ex.message(*msg).payload.bits();
                m.total_message_bits += bits;
                m.max_message_bits = m.max_message_bits.max(bits);
            }
            EventKind::Receive { .. } => m.receives += 1,
        }
    }
    for r in 0..sim.config().n_replicas {
        m.final_state_bits += sim
            .machine(haec_model::ReplicaId::new(r as u32))
            .state_bits();
    }
    // The simulator samples total state after every mutating event; the
    // peak can exceed the final snapshot when state is later compacted.
    m.peak_state_bits = sim.peak_state_bits().max(m.final_state_bits);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_schedule, KeyDistribution, ScheduleConfig, Simulator, Workload};
    use haec_core::SpecKind;
    use haec_model::{ObjectId, Op, ReplicaId, StoreConfig, Value};
    use haec_stores::{CopsStore, DvvMvrStore};

    #[test]
    fn counts_are_consistent_with_execution() {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(2, 1));
        sim.do_op(
            ReplicaId::new(0),
            ObjectId::new(0),
            Op::Write(Value::new(1)),
        );
        sim.flush(ReplicaId::new(0));
        sim.deliver_all();
        sim.read(ReplicaId::new(1), ObjectId::new(0));
        let m = measure(&sim);
        assert_eq!(m.do_events, 2);
        assert_eq!(m.updates, 1);
        assert_eq!(m.sends, 1);
        assert_eq!(m.receives, 1);
        assert!(m.total_message_bits > 0);
        assert_eq!(m.max_message_bits, m.total_message_bits);
        assert!(m.final_state_bits > 0);
        assert!(m.to_string().contains("1 sends"));
    }

    #[test]
    fn empty_run_metrics_are_zero() {
        let sim = Simulator::new(&DvvMvrStore, StoreConfig::new(2, 1));
        let m = measure(&sim);
        assert_eq!(m.do_events, 0);
        assert_eq!(m.sends, 0);
        assert_eq!(m.receives, 0);
        assert_eq!(m.total_message_bits, 0);
        assert_eq!(m.avg_message_bits(), 0.0);
        assert_eq!(m.bits_per_update(), 0.0);
        // An empty version vector still occupies a few canonical bits.
        assert!(m.final_state_bits > 0);
    }

    #[test]
    fn peak_state_bits_sees_transient_growth() {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(2, 1));
        // Grow the outbox without flushing, then drain it: the peak must
        // remember the pre-flush high-water mark.
        for i in 0..10 {
            sim.do_op(
                ReplicaId::new(0),
                ObjectId::new(0),
                Op::Write(Value::new(i)),
            );
        }
        let before_flush = sim.total_state_bits();
        sim.flush(ReplicaId::new(0));
        sim.deliver_all();
        let m = measure(&sim);
        assert!(m.peak_state_bits >= before_flush);
        assert!(m.peak_state_bits >= m.final_state_bits);
        assert!(m.to_string().contains("peak"));
    }

    #[test]
    fn cops_cheaper_per_update_than_dvv_on_batchy_workloads() {
        // Low flush weight → big batches → dependency compression pays.
        let sched = ScheduleConfig {
            steps: 300,
            op_weight: 8,
            flush_weight: 1,
            deliver_weight: 4,
            drop_prob: 0.0,
            ..ScheduleConfig::default()
        };
        let run = |factory: &dyn haec_model::StoreFactory| {
            let mut sim = Simulator::new(factory, StoreConfig::new(4, 2));
            let mut wl = Workload::new(SpecKind::Mvr, 4, 2, 0.2, KeyDistribution::Uniform);
            run_schedule(&mut sim, &mut wl, &sched, 5);
            measure(&sim).bits_per_update()
        };
        let dvv = run(&DvvMvrStore);
        let cops = run(&CopsStore);
        assert!(
            cops < dvv,
            "compression should pay on batches: cops {cops:.1} vs dvv {dvv:.1}"
        );
    }
}
