//! The coalescing envelope: one wire message carrying the pending
//! payloads of many shards.
//!
//! When a replica node flushes, each of its shard instances may have a
//! pending message (an update batch for the engine-based stores, an
//! opaque payload for any other [`ReplicaMachine`]). Instead of sending
//! one network message per shard, the service coalesces them into a
//! single envelope:
//!
//! ```text
//! gamma0(n_groups)
//! repeat n_groups times:
//!     shard      : width_for(n_shards) bits
//!     length     : gamma0(payload bits)
//!     payload    : that many raw bits, verbatim
//! ```
//!
//! The sub-payloads are embedded bit-exactly (no byte padding), so the
//! accounting is exact and auditable:
//!
//! ```text
//! envelope.bits() == gamma0_len(n_groups)
//!                  + Σ (width_for(n_shards) + gamma0_len(p.bits()) + p.bits())
//! ```
//!
//! Like the update batch, decoding **fails closed**: a truncated or
//! corrupt envelope reports the failing group index and yields nothing.
//!
//! [`ReplicaMachine`]: haec_model::ReplicaMachine

use crate::wire::{gamma0_len, width_for, BitReader, BitWriter};
use haec_model::Payload;
use std::fmt;

/// Exact envelope size in bits for the given group payload sizes.
pub fn envelope_bits(group_payload_bits: &[usize], n_shards: usize) -> usize {
    let w = width_for(n_shards) as usize;
    gamma0_len(group_payload_bits.len() as u64)
        + group_payload_bits
            .iter()
            .map(|&b| w + gamma0_len(b as u64) + b)
            .sum::<usize>()
}

/// Encodes shard-tagged payload groups into one envelope.
///
/// # Panics
///
/// Panics if a group names a shard `>= n_shards`.
pub fn encode_envelope(groups: &[(usize, Payload)], n_shards: usize) -> Payload {
    let w = width_for(n_shards);
    let mut writer = BitWriter::new();
    writer.write_gamma0(groups.len() as u64);
    for (shard, payload) in groups {
        assert!(*shard < n_shards, "shard {shard} out of range");
        writer.write_bits(*shard as u64, w);
        writer.write_gamma0(payload.bits() as u64);
        writer.append_payload(payload);
    }
    writer.finish()
}

/// Why an envelope failed to decode, and where.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EnvelopeDecodeError {
    /// Index of the group whose framing failed; `None` when the group
    /// count header or trailing framing is at fault.
    pub group: Option<usize>,
    /// Bit offset at which decoding failed.
    pub at_bit: usize,
}

impl fmt::Display for EnvelopeDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.group {
            Some(g) => write!(f, "envelope group {g} malformed at bit {}", self.at_bit),
            None => write!(f, "envelope framing malformed at bit {}", self.at_bit),
        }
    }
}

impl std::error::Error for EnvelopeDecodeError {}

/// Decodes an envelope into its shard-tagged payload groups,
/// all-or-nothing.
///
/// # Errors
///
/// Fails closed with the failing group index on truncation, an
/// out-of-range shard id, or trailing bits after the final group.
pub fn decode_envelope(
    payload: &Payload,
    n_shards: usize,
) -> Result<Vec<(usize, Payload)>, EnvelopeDecodeError> {
    let w = width_for(n_shards);
    let mut r = BitReader::new(payload);
    let framing = |at_bit| EnvelopeDecodeError {
        group: None,
        at_bit,
    };
    let count = r.read_gamma0().map_err(|e| framing(e.at_bit))? as usize;
    if count > r.remaining() {
        return Err(framing(r.position()));
    }
    let mut groups = Vec::with_capacity(count);
    for g in 0..count {
        let at = |e: crate::wire::DecodeError| EnvelopeDecodeError {
            group: Some(g),
            at_bit: e.at_bit,
        };
        let shard = r.read_bits(w).map_err(at)? as usize;
        if shard >= n_shards {
            return Err(EnvelopeDecodeError {
                group: Some(g),
                at_bit: r.position(),
            });
        }
        let bits = r.read_gamma0().map_err(at)? as usize;
        let sub = r.read_payload(bits).map_err(at)?;
        groups.push((shard, sub));
    }
    if r.remaining() != 0 {
        return Err(framing(r.position()));
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload_of_bits(bits: &[bool]) -> Payload {
        let mut w = BitWriter::new();
        for &b in bits {
            w.write_bit(b);
        }
        w.finish()
    }

    #[test]
    fn roundtrip_and_exact_accounting() {
        let groups = vec![
            (0usize, payload_of_bits(&[true, false, true])),
            (3, payload_of_bits(&[])),
            (2, payload_of_bits(&[false; 17])),
        ];
        let n_shards = 4;
        let env = encode_envelope(&groups, n_shards);
        let sizes: Vec<usize> = groups.iter().map(|(_, p)| p.bits()).collect();
        assert_eq!(env.bits(), envelope_bits(&sizes, n_shards));
        assert_eq!(decode_envelope(&env, n_shards).unwrap(), groups);
    }

    #[test]
    fn empty_envelope_is_one_header() {
        let env = encode_envelope(&[], 8);
        assert_eq!(env.bits(), envelope_bits(&[], 8));
        assert_eq!(decode_envelope(&env, 8).unwrap(), Vec::new());
    }

    #[test]
    fn truncation_names_the_failing_group() {
        let groups = vec![
            (1usize, payload_of_bits(&[true; 9])),
            (0, payload_of_bits(&[false; 9])),
        ];
        let env = encode_envelope(&groups, 2);
        // Cut inside the second group's payload.
        let cut = env.bits() - 4;
        let prefix = BitReader::new(&env).read_payload(cut).unwrap();
        let err = decode_envelope(&prefix, 2).unwrap_err();
        assert_eq!(err.group, Some(1));
    }

    #[test]
    fn out_of_range_shard_fails_closed() {
        // Hand-craft a group naming shard 3 where only 0..3 are valid
        // (width_for(3) = 2 bits, so the id parses but is out of range).
        let mut w = BitWriter::new();
        w.write_gamma0(1);
        w.write_bits(3, 2);
        w.write_gamma0(1);
        w.write_bit(true);
        let err = decode_envelope(&w.finish(), 3).unwrap_err();
        assert_eq!(err.group, Some(0));
    }

    #[test]
    fn trailing_bits_fail_closed() {
        let env = encode_envelope(&[(0, payload_of_bits(&[true, true]))], 2);
        let mut w = BitWriter::new();
        w.append_payload(&env);
        w.write_bit(false);
        let err = decode_envelope(&w.finish(), 2).unwrap_err();
        assert_eq!(err.group, None);
        assert_eq!(err.at_bit, env.bits());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encoding_out_of_range_shard_panics() {
        let _ = encode_envelope(&[(5, Payload::default())], 4);
    }
}
