//! Non-firing: the same helper shape keyed on the value's contents
//! instead of its address — stable across runs, so nothing flows.

fn node_key(node: &Vec<u8>) -> usize {
    node.len()
}

pub fn fingerprint(nodes: &[Vec<u8>]) -> u64 {
    let mut acc = 0u64;
    for n in nodes {
        acc = acc.wrapping_mul(31).wrapping_add(node_key(n) as u64);
    }
    acc
}
