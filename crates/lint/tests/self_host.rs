//! The self-hosting gate: the linter must hold itself to the same
//! standard it holds the rest of the workspace to.
//!
//! `lint_workspace` over the real repository root must come back clean
//! (every remaining diagnostic suppressed, with a reason, and every
//! suppression leg alive — `dead-allow` polices the latter), and the
//! scanned file list must include this crate's own sources, so "clean"
//! cannot be achieved by quietly skipping the linter.

use haec_lint::lint_workspace;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("repo root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(&repo_root()).expect("workspace scan");
    let loud: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| !d.suppressed)
        .collect();
    assert!(
        report.is_clean(),
        "workspace has unsuppressed findings:\n{loud:#?}"
    );
}

#[test]
fn the_linter_lints_itself() {
    let report = lint_workspace(&repo_root()).expect("workspace scan");
    for own in [
        "crates/lint/src/driver.rs",
        "crates/lint/src/callgraph.rs",
        "crates/lint/src/taint.rs",
        "crates/lint/src/parse.rs",
        "crates/lint/src/tokenizer.rs",
    ] {
        assert!(
            report.files.iter().any(|f| f == own),
            "self-hosting hole: {own} was not scanned (scanned {} files)",
            report.files.len()
        );
    }
}

#[test]
fn every_workspace_suppression_carries_a_reason() {
    // `malformed-allow` already rejects reason-less allows at parse time;
    // this test pins the end state: whatever *is* suppressed in the real
    // tree got there through a well-formed, justified allow.
    let report = lint_workspace(&repo_root()).expect("workspace scan");
    for d in report.diagnostics.iter().filter(|d| d.suppressed) {
        assert!(
            !d.message.is_empty(),
            "suppressed diagnostic with no surviving message: {d:?}"
        );
    }
    // The one sanctioned flow today: span wall-clock telemetry into the
    // run report, zeroed by `to_json_normalized` before byte-comparison.
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.suppressed && d.file == "crates/sim/src/obs/report.rs"),
        "expected the documented span-telemetry suppression to be present"
    );
}
