//! Bounded model checking across object types: *every* schedule up to the
//! depth bound keeps the causal stores correct and causally consistent —
//! not a sampled claim, an enumerated one.

use haec::prelude::*;
use haec::sim::exhaustive::{explore_all, ExhaustiveConfig};
use haec::sim::Simulator;

fn check_against(spec: SpecKind) -> impl FnMut(&Simulator) -> bool {
    move |sim: &Simulator| {
        let Ok(a) = sim.abstract_execution() else {
            return false;
        };
        check_correct(&a, &ObjectSpecs::uniform(spec)).is_ok() && causal::check(&a).is_ok()
    }
}

#[test]
fn orset_store_exhaustive_depth4() {
    let config = ExhaustiveConfig {
        store_config: StoreConfig::new(2, 1),
        ops: vec![Op::Add(Value::new(0)), Op::Remove(Value::new(0)), Op::Read],
        depth: 4,
        max_schedules: 400_000,
        dedup: false,
        por: false,
        symmetry: false,
    };
    let report = explore_all(&OrSetStore, &config, &mut check_against(SpecKind::OrSet));
    assert!(
        report.all_passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.schedules > 500, "explored only {}", report.schedules);
}

#[test]
fn ewflag_store_exhaustive_depth4() {
    let config = ExhaustiveConfig {
        store_config: StoreConfig::new(2, 1),
        ops: vec![Op::Enable, Op::Disable, Op::Read],
        depth: 4,
        max_schedules: 400_000,
        dedup: false,
        por: false,
        symmetry: false,
    };
    let report = explore_all(
        &haec::stores::EwFlagStore,
        &config,
        &mut check_against(SpecKind::EwFlag),
    );
    assert!(
        report.all_passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn counter_store_exhaustive_depth4() {
    let config = ExhaustiveConfig {
        store_config: StoreConfig::new(2, 1),
        ops: vec![Op::Inc, Op::Read],
        depth: 4,
        max_schedules: 400_000,
        dedup: false,
        por: false,
        symmetry: false,
    };
    let report = explore_all(
        &CounterStore,
        &config,
        &mut check_against(SpecKind::Counter),
    );
    assert!(
        report.all_passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn cops_store_exhaustive_depth4() {
    let config = ExhaustiveConfig {
        store_config: StoreConfig::new(2, 2),
        ops: vec![Op::Write(Value::new(0)), Op::Read],
        depth: 4,
        max_schedules: 400_000,
        dedup: false,
        por: false,
        symmetry: false,
    };
    let report = explore_all(
        &haec::stores::CopsStore,
        &config,
        &mut check_against(SpecKind::Mvr),
    );
    assert!(
        report.all_passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn arbitration_store_exhaustively_caught_as_mvr_imposter() {
    // Claiming the MVR interface while arbitrating: exhaustive search
    // finds a schedule whose witness fails the MVR correctness check.
    let config = ExhaustiveConfig {
        store_config: StoreConfig::new(3, 1),
        ops: vec![Op::Write(Value::new(0)), Op::Read],
        depth: 6,
        max_schedules: 400_000,
        dedup: false,
        por: false,
        symmetry: false,
    };
    let report = explore_all(
        &ArbitrationStore,
        &config,
        &mut check_against(SpecKind::Mvr),
    );
    assert!(
        !report.all_passed(),
        "the imposter must be caught within {} schedules",
        report.schedules
    );
}
