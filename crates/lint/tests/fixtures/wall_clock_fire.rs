//! Firing: wall-clock reads — by aliased import, plain import and
//! fully-qualified path.

use std::time::{Instant as Clock, SystemTime};

fn stamp() -> (Clock, SystemTime, std::time::Instant) {
    (Clock::now(), SystemTime::now(), std::time::Instant::now())
}
