//! The service layer across the store×fault matrix.
//!
//! Two pillars:
//!
//! 1. **Batched-vs-unbatched visibility equivalence** over the seven
//!    conformance-matrix stores: with a constant network delay, whether a
//!    replica's pending shards travel as one coalescing envelope or as
//!    one message per shard must not change *anything* observable —
//!    per-shard op routing, payload bits, visibility-lag and staleness
//!    histograms, convergence. The only permitted difference is the
//!    envelope framing overhead, and even that is pinned exactly:
//!    `batched.message_bits == unbatched.message_bits + overhead`.
//! 2. **Reconciliation × fault determinism**: every strategy under every
//!    fault regime yields byte-identical reports on repeated runs, and
//!    regimes that lose nothing (clean, duplicates, healing partitions)
//!    converge.

use haec_model::ReplicaId;
use haec_sim::service::{run_service, ServicePartition, ServiceRunConfig};
use haec_stores::conformance_matrix;
use haec_stores::service::{Reconciliation, ServiceConfig};
use haec_stores::DvvMvrStore;

fn matrix_config(spec: haec_core::SpecKind, batched: bool) -> ServiceRunConfig {
    ServiceRunConfig {
        service: ServiceConfig {
            n_replicas: 3,
            n_shards: 4,
            n_objects: 32,
            vnodes: 16,
            reconciliation: Reconciliation::WriteRepair,
        },
        spec,
        ops: 300,
        n_clients: 12,
        read_ratio: 0.4,
        batched,
        // Constant delay: `bounded(1)` is always 0, so both wire modes
        // deliver every flushed group at t+1 and stay tick-for-tick
        // comparable even though they draw different fault-rng counts.
        delay_max: 1,
        seed: 0x7EA_5E7,
        ..ServiceRunConfig::default()
    }
}

#[test]
fn batched_and_unbatched_are_visibility_equivalent_across_the_matrix() {
    for (factory, conformance) in conformance_matrix() {
        let batched = run_service(factory.as_ref(), &matrix_config(conformance.spec, true));
        let unbatched = run_service(factory.as_ref(), &matrix_config(conformance.spec, false));
        let name = factory.name();
        assert_eq!(
            batched.per_shard, unbatched.per_shard,
            "{name}: same routing, same payload bits per shard"
        );
        assert_eq!(
            batched.visibility_lag, unbatched.visibility_lag,
            "{name}: same visibility timeline"
        );
        assert_eq!(
            batched.read_staleness, unbatched.read_staleness,
            "{name}: same staleness"
        );
        assert_eq!(batched.updates, unbatched.updates, "{name}");
        assert_eq!(
            batched.converged, unbatched.converged,
            "{name}: same quiescent outcome"
        );
        assert!(batched.converged, "{name}: fault-free runs converge");
        // Exact cross-mode accounting: coalescing costs exactly the
        // envelope framing, not one payload bit more.
        assert_eq!(unbatched.envelope_overhead_bits, 0, "{name}");
        assert_eq!(
            batched.message_bits,
            unbatched.message_bits + batched.envelope_overhead_bits,
            "{name}: batching adds framing bits only"
        );
        assert!(batched.messages <= unbatched.messages, "{name}: coalescing");
    }
}

#[test]
fn per_shard_determinism_holds_for_every_store_in_the_matrix() {
    for (factory, conformance) in conformance_matrix() {
        let cfg = matrix_config(conformance.spec, true);
        let a = run_service(factory.as_ref(), &cfg).to_json_string();
        let b = run_service(factory.as_ref(), &cfg).to_json_string();
        assert_eq!(a, b, "{} report must be reproducible", factory.name());
    }
}

#[test]
fn reconciliation_by_fault_matrix_is_deterministic_and_converges_when_lossless() {
    let strategies = [
        Reconciliation::WriteRepair,
        Reconciliation::ReadRepair,
        Reconciliation::AntiEntropy { period: 16 },
    ];
    #[derive(Clone, Copy, PartialEq, Debug)]
    enum Fault {
        Clean,
        Drop,
        Duplicate,
        Partition,
    }
    let faults = [
        Fault::Clean,
        Fault::Drop,
        Fault::Duplicate,
        Fault::Partition,
    ];
    for strategy in strategies {
        for fault in faults {
            let cfg = ServiceRunConfig {
                service: ServiceConfig {
                    n_replicas: 3,
                    n_shards: 2,
                    n_objects: 16,
                    vnodes: 16,
                    reconciliation: strategy,
                },
                ops: 320,
                n_clients: 12,
                drop_prob: if fault == Fault::Drop { 0.25 } else { 0.0 },
                dup_prob: if fault == Fault::Duplicate { 0.4 } else { 0.0 },
                partition: (fault == Fault::Partition).then(|| ServicePartition {
                    from_op: 60,
                    to_op: 220,
                    group: vec![ReplicaId::new(0)],
                }),
                seed: 0xFA_117,
                ..ServiceRunConfig::default()
            };
            let label = format!("{} × {fault:?}", strategy.name());
            let a = run_service(&DvvMvrStore, &cfg);
            let b = run_service(&DvvMvrStore, &cfg);
            assert_eq!(
                a.to_json_string(),
                b.to_json_string(),
                "{label}: reports must be byte-identical"
            );
            match fault {
                Fault::Drop => assert!(a.dropped > 0, "{label}: drops happen"),
                Fault::Duplicate => {
                    assert!(a.duplicated > 0, "{label}: duplicates happen");
                    assert!(a.converged, "{label}: duplicates are idempotent");
                }
                Fault::Partition => {
                    assert!(a.delayed_by_partition > 0, "{label}: cut is exercised");
                    assert!(a.converged, "{label}: partitions heal, nothing lost");
                }
                Fault::Clean => assert!(a.converged, "{label}: clean runs converge"),
            }
        }
    }
}

#[test]
fn stream_checkers_hold_for_causal_stores_under_clean_service_runs() {
    for (factory, conformance) in conformance_matrix() {
        if !conformance.causal {
            continue; // LWW is eventually, not causally, consistent.
        }
        let cfg = ServiceRunConfig {
            stream_window: Some(1 << 20),
            ..matrix_config(conformance.spec, true)
        };
        let report = run_service(factory.as_ref(), &cfg);
        let name = factory.name();
        let v = report.stream.expect("verdicts requested");
        assert_eq!(report.stream_errors, 0, "{name}: witnesses resolve");
        assert!(v.causal, "{name}: per-shard causal consistency");
        assert!(v.eventual, "{name}: windowed eventual consistency");
        assert!(v.sessions, "{name}: session guarantees");
    }
}
