//! Long-run liveness: eventual consistency (Definitions 13/14) on fair
//! infinite schedules, approximated by bounded-staleness monitoring.
//!
//! Definition 13 says: for every event, only finitely many later
//! same-object events fail to see it. On an infinite *fair* schedule
//! (every pending message eventually flushed, every in-flight copy
//! eventually delivered — Definition 3's sufficient connectivity) a store
//! is eventually consistent iff the staleness of every update stays
//! bounded as the run grows. [`fair_run`] drives such a schedule in rounds
//! and tracks the *oldest unseen update*: how far back the most-stale
//! visible-to-nobody update sits. For an eventually consistent store this
//! lag is bounded by the fairness window; for the sequencer store with an
//! idle sequencer it grows without bound.

use crate::simulator::Simulator;
use crate::workload::Workload;
use haec_core::consistency::eventual;
use haec_model::{ReplicaId, StoreFactory};
use haec_testkit::Rng;

/// Configuration of a fair long run.
#[derive(Clone, Debug)]
pub struct FairRunConfig {
    /// Number of rounds.
    pub rounds: usize,
    /// Client operations per round.
    pub ops_per_round: usize,
    /// After each round every replica flushes and every in-flight copy is
    /// delivered (the fairness guarantee). When `false`, only a random
    /// subset is, modelling an unfair network.
    pub fair: bool,
}

impl Default for FairRunConfig {
    fn default() -> Self {
        FairRunConfig {
            rounds: 20,
            ops_per_round: 10,
            fair: true,
        }
    }
}

/// The staleness trajectory of a long run: after each round, the maximum
/// number of later same-object events an update was still invisible to.
#[derive(Clone, Debug)]
pub struct LivenessReport {
    /// Max staleness per round (monotone growth signals a liveness bug).
    pub staleness_per_round: Vec<usize>,
}

impl LivenessReport {
    /// The largest staleness observed anywhere in the run.
    pub fn max_staleness(&self) -> usize {
        self.staleness_per_round.iter().copied().max().unwrap_or(0)
    }

    /// Heuristic liveness verdict: staleness in the last quarter of the
    /// run does not exceed the bound.
    pub fn bounded_by(&self, bound: usize) -> bool {
        let tail = self.staleness_per_round.len() / 4;
        self.staleness_per_round
            .iter()
            .rev()
            .take(tail.max(1))
            .all(|&s| s <= bound)
    }
}

/// Runs `workload` in rounds against a fresh cluster, with round-end
/// fairness, and reports the staleness trajectory of the witness abstract
/// execution.
///
/// # Panics
///
/// Panics if the store's witness cannot be resolved (a store bug).
pub fn fair_run(
    factory: &dyn StoreFactory,
    workload: &mut Workload,
    config: &FairRunConfig,
    seed: u64,
) -> LivenessReport {
    fair_run_with(factory, workload, config, seed, |_| {})
}

/// Like [`fair_run`], but hands the fresh simulator to `attach` first so
/// the caller can register [observers](crate::obs::Observer) before the
/// rounds start.
///
/// # Panics
///
/// Panics if the store's witness cannot be resolved (a store bug).
pub fn fair_run_with(
    factory: &dyn StoreFactory,
    workload: &mut Workload,
    config: &FairRunConfig,
    seed: u64,
    attach: impl FnOnce(&mut Simulator),
) -> LivenessReport {
    let store_config = haec_model::StoreConfig::new(3, 2);
    let mut sim = Simulator::new(factory, store_config);
    attach(&mut sim);
    let mut rng = Rng::seed_from_u64(seed);
    let mut staleness_per_round = Vec::with_capacity(config.rounds);
    for _ in 0..config.rounds {
        for _ in 0..config.ops_per_round {
            let (replica, obj, op) = workload.next_op(&mut rng);
            sim.do_op(replica, obj, op);
        }
        if config.fair {
            for r in 0..store_config.n_replicas {
                sim.flush(ReplicaId::new(r as u32));
            }
            sim.deliver_all();
        } else {
            // Unfair: flush only replica 0 and deliver only half the copies.
            sim.flush(ReplicaId::new(0));
            let deliver = sim.inflight().len() / 2;
            for _ in 0..deliver {
                let i = rng.gen_range(0..sim.inflight().len());
                sim.deliver(i);
            }
        }
        let a = sim
            .abstract_execution()
            .expect("witness resolves for instrumented stores");
        staleness_per_round.push(eventual::staleness(&a).into_iter().max().unwrap_or(0));
    }
    LivenessReport {
        staleness_per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::KeyDistribution;
    use haec_core::SpecKind;
    use haec_stores::{DvvMvrStore, SequencedStore};

    #[test]
    fn dvv_store_staleness_bounded_under_fairness() {
        let mut wl = Workload::new(SpecKind::Mvr, 3, 2, 0.3, KeyDistribution::Uniform);
        let report = fair_run(&DvvMvrStore, &mut wl, &FairRunConfig::default(), 7);
        // With full delivery each round, an update is stale for at most
        // roughly one round's worth of same-object events.
        assert!(
            report.bounded_by(2 * 10),
            "staleness ran away: {:?}",
            report.staleness_per_round
        );
    }

    #[test]
    fn sequencer_with_idle_sequencer_starves() {
        // The workload only uses replicas 1 and 2 (the sequencer, R0,
        // never performs operations, so it never broadcasts its ordering
        // on its own behalf... but fairness flushes it). To model the
        // §5.3 liveness weakness precisely, use unfair rounds where only
        // R0 flushes — announcements never reach it, nothing sequences.
        let mut wl = Workload::new(SpecKind::LwwRegister, 3, 2, 0.3, KeyDistribution::Uniform);
        let config = FairRunConfig {
            rounds: 16,
            ops_per_round: 8,
            fair: false,
        };
        let report = fair_run(&SequencedStore, &mut wl, &config, 9);
        // Staleness grows with the run: updates stay invisible.
        let first = report.staleness_per_round[2];
        let last = *report.staleness_per_round.last().unwrap();
        assert!(
            last > first + 10,
            "sequencer starvation should grow staleness: {:?}",
            report.staleness_per_round
        );
    }

    #[test]
    fn fair_sequencer_recovers() {
        let mut wl = Workload::new(SpecKind::LwwRegister, 3, 2, 0.3, KeyDistribution::Uniform);
        let report = fair_run(&SequencedStore, &mut wl, &FairRunConfig::default(), 11);
        // With fairness (every replica flushes, everything delivered) the
        // sequencer's two-hop pipeline keeps staleness bounded by about two
        // rounds of events.
        assert!(
            report.bounded_by(3 * 10),
            "fair sequencer should keep up: {:?}",
            report.staleness_per_round
        );
    }

    #[test]
    fn report_helpers() {
        let r = LivenessReport {
            staleness_per_round: vec![1, 5, 2, 2],
        };
        assert_eq!(r.max_staleness(), 5);
        assert!(r.bounded_by(2));
        assert!(!r.bounded_by(1));
    }
}
