//! E5 / Theorem 6: cost of the recursive construction (replay + delivery
//! along `vis`) as abstract executions grow.

use haec_stores::DvvMvrStore;
use haec_testkit::Bench;
use haec_theory::construction::construct;
use haec_theory::generate::{random_causal, GeneratorConfig};
use haec_theory::make_revealing;
use std::hint::black_box;

fn main() {
    let mut bench = Bench::from_args("thm6_construction");
    for &events in &[12usize, 24, 48] {
        let config = GeneratorConfig {
            events,
            ..GeneratorConfig::default()
        };
        let a = random_causal(&config, 3);
        bench.bench(&format!("plain/{events}"), || {
            let r = construct(&DvvMvrStore, black_box(&a));
            assert!(r.complies());
            black_box(r.simulator.execution().len())
        });
        bench.bench(&format!("revealing/{events}"), || {
            let rev = make_revealing(black_box(&a));
            let r = construct(&DvvMvrStore, &rev.execution);
            assert!(r.complies());
            black_box(r.simulator.execution().len())
        });
    }
    bench.finish();
}
