//! # haec-bench
//!
//! The experiment harness: every figure of the paper (and both theorems)
//! regenerated as a printable table. The `experiments` binary drives these
//! functions; the Criterion benches in `benches/` measure the same code
//! paths for performance.
//!
//! Experiment index (see DESIGN.md / EXPERIMENTS.md):
//!
//! * **E1** (Figure 1) — [`fig1_spec_table`]: the spec functions evaluated
//!   on canonical contexts.
//! * **E2/E3** (Figures 2, 3a–c) — [`figures_table`]: explainability
//!   verdicts + concrete store behaviour.
//! * **E4/E7** (Figure 4, Theorem 12, §6) — [`thm12_table`],
//!   [`growth_table`]: encode/decode roundtrips and message-size sweeps.
//! * **E5** (Theorem 6) — [`thm6_table`]: construction compliance across
//!   stores and execution families.
//! * **E6** (§5.3) — [`sec53_table`]: the K-delayed counterexample.
//! * **E8** (§4) — [`lemmas_table`]: Propositions 1–2, Lemma 3/Cor. 4,
//!   Lemma 5 across stores.
//! * **E9** (§7) — [`space_table`]: replica state growth.
//! * **E10** — [`ablation_table`]: the bounded-message store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use haec_core::{AbstractExecutionBuilder, OperationContext, SpecKind};
use haec_model::{ObjectId, Op, ReplicaId, ReturnValue, StoreConfig, StoreFactory, Value};
use haec_sim::obs::json::Json;
use haec_sim::{
    check_quiescent_agreement, explore, run_schedule, ExplorationConfig, KeyDistribution,
    ScheduleConfig, Simulator, Workload,
};
use haec_stores::properties::check_with_ops;
use haec_stores::{
    all_factories, ArbitrationStore, BoundedStore, DvvMvrStore, KDelayedStore, LwwStore, OrSetStore,
};
use haec_theory::construction::construct;
use haec_theory::figures::{
    fig2_store_run, fig2_verdict, fig3a_verdict, fig3b_verdict, fig3c_verdict,
};
use haec_theory::generate::{fig3c_style, random_causal, random_occ, GeneratorConfig};
use haec_theory::lemmas::{check_prop1, check_prop2};
use haec_theory::lower_bound::sweep;
use haec_theory::{roundtrip, Thm12Config};

/// A rendered experiment: a title plus preformatted lines.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment title.
    pub title: String,
    /// Preformatted rows.
    pub lines: Vec<String>,
}

impl Table {
    fn new(title: &str) -> Self {
        Table {
            title: title.to_owned(),
            lines: Vec::new(),
        }
    }

    fn row(&mut self, line: String) {
        self.lines.push(line);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

/// The object specification a named store implements (drives workloads
/// and checkers for that store; unknown names default to MVR).
pub fn spec_for(name: &str) -> SpecKind {
    match name {
        "orset" => SpecKind::OrSet,
        "ew-flag" => SpecKind::EwFlag,
        "counter" => SpecKind::Counter,
        "lww" | "arbitration-mvr" | "sequenced" | "causal-register" => SpecKind::LwwRegister,
        _ => SpecKind::Mvr,
    }
}

/// Whether a named store's witness must be assembled in arbitration order
/// (LWW-style stores whose reads are explained by timestamps, not
/// execution order).
pub fn arbitrated_for(name: &str) -> bool {
    matches!(name, "lww" | "arbitration-mvr")
}

fn ops_for(spec: SpecKind) -> Vec<Op> {
    match spec {
        SpecKind::OrSet => vec![
            Op::Add(Value::new(1)),
            Op::Add(Value::new(2)),
            Op::Remove(Value::new(1)),
            Op::Read,
        ],
        SpecKind::Counter => vec![Op::Inc, Op::Read],
        SpecKind::EwFlag => vec![Op::Enable, Op::Enable, Op::Disable, Op::Read],
        _ => vec![Op::Write(Value::new(0)), Op::Read],
    }
}

/// A labelled scenario: `(label, spec, update ops per replica)`.
type SpecCase = (&'static str, SpecKind, Vec<(ReplicaId, Op)>);
/// A named generator of abstract executions.
type ExecutionFamily = (
    &'static str,
    Box<dyn Fn(u64) -> haec_core::AbstractExecution>,
);

/// E1 — Figure 1: the specification functions on canonical contexts.
pub fn fig1_spec_table() -> Table {
    let mut t = Table::new("E1 / Figure 1: replicated object specifications");
    let r = ReplicaId::new;
    let x = ObjectId::new(0);
    let cases: Vec<SpecCase> = vec![
        (
            "register: last write in H' wins",
            SpecKind::LwwRegister,
            vec![
                (r(0), Op::Write(Value::new(1))),
                (r(1), Op::Write(Value::new(2))),
            ],
        ),
        (
            "MVR: concurrent writes conflict",
            SpecKind::Mvr,
            vec![
                (r(0), Op::Write(Value::new(1))),
                (r(1), Op::Write(Value::new(2))),
            ],
        ),
        (
            "ORset: add wins over concurrent remove",
            SpecKind::OrSet,
            vec![
                (r(0), Op::Add(Value::new(7))),
                (r(1), Op::Remove(Value::new(7))),
            ],
        ),
        (
            "counter: visible increments",
            SpecKind::Counter,
            vec![(r(0), Op::Inc), (r(1), Op::Inc)],
        ),
        (
            "ew-flag: enable wins over concurrent disable",
            SpecKind::EwFlag,
            vec![(r(0), Op::Enable), (r(1), Op::Disable)],
        ),
    ];
    t.row(format!("{:<44} {:>12}", "context", "f_o(ctxt)"));
    for (label, kind, updates) in cases {
        let mut b = AbstractExecutionBuilder::new();
        let mut ids = Vec::new();
        for (replica, op) in updates {
            ids.push(b.push(replica, x, op, ReturnValue::Ok));
        }
        let rd = b.push(r(2), x, Op::Read, ReturnValue::empty());
        for id in ids {
            b.vis(id, rd);
        }
        let skeleton = b.build().expect("valid");
        let rval = kind.expected_rval(&OperationContext::of(&skeleton, rd));
        t.row(format!("{label:<44} {:>12}", rval.to_string()));
    }
    t
}

/// E2/E3 — Figures 2 and 3: explainability verdicts plus concrete stores.
pub fn figures_table() -> Table {
    let mut t = Table::new("E2/E3 / Figures 2-3: can a store hide concurrency?");
    for v in [
        fig3a_verdict(),
        fig3b_verdict(),
        fig2_verdict(),
        fig3c_verdict(),
    ] {
        t.row(format!("{}:", v.label));
        for (desc, ok) in &v.candidates {
            t.row(format!(
                "  {:<50} {}",
                desc,
                if *ok { "explainable" } else { "UNEXPLAINABLE" }
            ));
        }
    }
    t.row(String::new());
    t.row(format!(
        "Figure 2 pattern, dvv-mvr store:     read(x) = {}",
        fig2_store_run(&DvvMvrStore)
    ));
    t.row(format!(
        "Figure 2 pattern, arbitration store: read(x) = {} (hides; not a correct MVR store)",
        fig2_store_run(&ArbitrationStore)
    ));
    t
}

/// E5 — Theorem 6: construction compliance across stores and families.
pub fn thm6_table(runs: usize) -> Table {
    let mut t = Table::new("E5 / Theorem 6: construction compliance (no model stronger than OCC)");
    t.row(format!(
        "{:<18} {:<26} {:>10} {:>10}",
        "store", "execution family", "complied", "runs"
    ));
    let gen_config = GeneratorConfig::default();
    let families: Vec<ExecutionFamily> = vec![
        (
            "random causal",
            Box::new(|s: u64| random_causal(&GeneratorConfig::default(), s)),
        ),
        (
            "random OCC",
            Box::new(move |s: u64| random_occ(&gen_config, s, 20)),
        ),
        ("figure 3c (OCC)", Box::new(fig3c_style)),
    ];
    for (family, make) in families {
        let ok = (0..runs as u64)
            .filter(|&s| construct(&DvvMvrStore, &make(s)).complies())
            .count();
        t.row(format!(
            "{:<18} {:<26} {:>10} {:>10}",
            "dvv-mvr", family, ok, runs
        ));
    }
    {
        let ok = (0..runs as u64)
            .filter(|&s| {
                construct(
                    &haec_stores::CopsStore,
                    &random_causal(&GeneratorConfig::default(), s),
                )
                .complies()
            })
            .count();
        t.row(format!(
            "{:<18} {:<26} {:>10} {:>10}",
            "cops-mvr", "random causal", ok, runs
        ));
    }
    let counterexamples: Vec<Box<dyn StoreFactory>> =
        vec![Box::new(ArbitrationStore), Box::new(KDelayedStore::new(2))];
    for factory in counterexamples {
        let ok = (0..runs as u64)
            .filter(|&s| construct(factory.as_ref(), &fig3c_style(s)).complies())
            .count();
        t.row(format!(
            "{:<18} {:<26} {:>10} {:>10}",
            factory.name(),
            "figure 3c (OCC)",
            ok,
            runs
        ));
    }
    t
}

/// E4 — Theorem 12: message size vs the `n'·lg k` bound, sweeping `k`.
pub fn thm12_table(samples: usize) -> Table {
    let mut t = Table::new("E4 / Theorem 12: |m_g| in bits vs n'.lg k (n = 5, s = 4, n' = 3)");
    t.row(format!(
        "{:>8} {:>16} {:>16} {:>8} {:>10}",
        "k", "max |m_g| bits", "n'·lg k bound", "ratio", "decodes"
    ));
    for k in [2u32, 8, 32, 128, 512, 2048] {
        let cfg = Thm12Config {
            n_replicas: 5,
            n_objects: 4,
            k,
        };
        let row = sweep(&DvvMvrStore, &cfg, samples, 99);
        t.row(format!(
            "{:>8} {:>16} {:>16.1} {:>8.2} {:>10}",
            k,
            row.max_bits,
            row.bound_bits,
            row.max_bits as f64 / row.bound_bits,
            format!("{}/{}", row.samples, row.samples),
        ));
    }
    t.row(String::new());
    t.row("per store at k = 256 (all decode losslessly — includes the register".into());
    t.row("analogue of §6 and COPS-style dependency compression):".into());
    let stores: Vec<Box<dyn StoreFactory>> = vec![
        Box::new(DvvMvrStore),
        Box::new(haec_stores::CopsStore),
        Box::new(haec_stores::CausalRegisterStore),
    ];
    for factory in stores {
        let cfg = Thm12Config {
            n_replicas: 5,
            n_objects: 4,
            k: 256,
        };
        let row = sweep(factory.as_ref(), &cfg, samples, 17);
        t.row(format!(
            "  {:<18} max |m_g| = {:>5} bits   (bound {:.1})",
            factory.name(),
            row.max_bits,
            row.bound_bits
        ));
    }
    t
}

/// E7 — §6: message growth with the replica count (vector-clock cost).
pub fn growth_table(samples: usize) -> Table {
    let mut t =
        Table::new("E7 / §6: message growth with n (s = 16, k = 64) — O(n·lg k) vector cost");
    t.row(format!(
        "{:>6} {:>6} {:>16} {:>16}",
        "n", "n'", "max |m_g| bits", "n'·lg k bound"
    ));
    for n in [4usize, 6, 8, 12, 16, 24] {
        let cfg = Thm12Config {
            n_replicas: n,
            n_objects: 16,
            k: 64,
        };
        let row = sweep(&DvvMvrStore, &cfg, samples, 5);
        t.row(format!(
            "{:>6} {:>6} {:>16} {:>16.1}",
            n, row.n_prime, row.max_bits, row.bound_bits
        ));
    }
    t
}

/// E6 — §5.3: the K-delayed counterexample.
pub fn sec53_table() -> Table {
    let mut t = Table::new("E6 / §5.3: no invisible reads => stronger-than-OCC is possible");
    let mut b = AbstractExecutionBuilder::new();
    let w = b.push(
        ReplicaId::new(0),
        ObjectId::new(0),
        Op::Write(Value::new(1)),
        ReturnValue::Ok,
    );
    let rd = b.push(
        ReplicaId::new(1),
        ObjectId::new(0),
        Op::Read,
        ReturnValue::values([Value::new(1)]),
    );
    b.vis(w, rd);
    let a = b.build_transitive().expect("valid");
    t.row(format!(
        "{:<16} {:>20} {:>28}",
        "store", "reads invisible?", "complies w/ immediate-vis A"
    ));
    for k in [0u64, 1, 2, 4] {
        let factory = KDelayedStore::new(k);
        let rep = check_with_ops(
            &factory,
            StoreConfig::new(2, 1),
            1,
            300,
            &ops_for(SpecKind::Mvr),
        );
        let complies = construct(&factory, &a).complies();
        t.row(format!(
            "{:<16} {:>20} {:>28}",
            format!("k-delayed(K={k})"),
            if rep.has_visible_reads() { "no" } else { "yes" },
            if complies { "yes" } else { "NO (avoids it)" }
        ));
    }
    t.row("The K>0 stores avoid a causally consistent execution while staying".into());
    t.row("eventually consistent: they satisfy a strictly stronger model — allowed".into());
    t.row("only because their reads are not invisible (Theorem 6's assumption).".into());
    t
}

/// E8 — §4 lemmas across stores and random schedules.
pub fn lemmas_table(seeds: u64) -> Table {
    let mut t = Table::new("E8 / §4: structural lemmas on random executions");
    t.row(format!(
        "{:<16} {:>8} {:>8} {:>14} {:>18}",
        "store", "Prop 1", "Prop 2", "Lemma3/Cor4", "write-propagating"
    ));
    for factory in all_factories() {
        let spec = spec_for(factory.name());
        let mut p1 = true;
        let mut p2 = true;
        let mut l3 = true;
        for seed in 0..seeds {
            let mut sim = Simulator::new(factory.as_ref(), StoreConfig::new(3, 2));
            let mut wl = Workload::new(spec, 3, 2, 0.35, KeyDistribution::Uniform);
            let sched = ScheduleConfig {
                steps: 120,
                drop_prob: 0.0,
                quiesce_at_end: false,
                ..ScheduleConfig::default()
            };
            run_schedule(&mut sim, &mut wl, &sched, seed);
            if matches!(spec, SpecKind::Mvr | SpecKind::LwwRegister) {
                p1 &= check_prop1(sim.execution()).is_ok();
                p2 &= check_prop2(sim.execution()).is_ok();
            }
            l3 &= check_quiescent_agreement(&mut sim).is_ok();
        }
        let wp = check_with_ops(
            factory.as_ref(),
            StoreConfig::new(3, 2),
            1,
            400,
            &ops_for(spec),
        );
        let yn = |b: bool| if b { "ok" } else { "FAIL" };
        t.row(format!(
            "{:<16} {:>8} {:>8} {:>14} {:>18}",
            factory.name(),
            yn(p1),
            yn(p2),
            yn(l3),
            yn(wp.is_write_propagating())
        ));
    }
    t.row("Expected failures: k-delayed (Lemma 3 + write-propagation: visible reads),".into());
    t.row("sequenced (op-driven messages; liveness), bounded (convergence).".into());
    t
}

/// E9 — §7: replica state growth with operation count.
pub fn space_table() -> Table {
    let mut t = Table::new("E9 / §7: replica state size (bits) vs operations applied");
    t.row(format!(
        "{:>10} {:>12} {:>12} {:>12}",
        "ops", "dvv-mvr", "orset", "lww"
    ));
    for steps in [25usize, 100, 400, 1600] {
        let mut row = format!("{steps:>10}");
        let stores: Vec<(Box<dyn StoreFactory>, SpecKind)> = vec![
            (Box::new(DvvMvrStore), SpecKind::Mvr),
            (Box::new(OrSetStore), SpecKind::OrSet),
            (Box::new(LwwStore), SpecKind::LwwRegister),
        ];
        for (factory, spec) in stores {
            let mut sim = Simulator::new(factory.as_ref(), StoreConfig::new(3, 2));
            let mut wl = Workload::new(spec, 3, 2, 0.2, KeyDistribution::Uniform);
            let sched = ScheduleConfig {
                steps,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            };
            run_schedule(&mut sim, &mut wl, &sched, 11);
            row.push_str(&format!(
                " {:>12}",
                sim.machine(ReplicaId::new(0)).state_bits()
            ));
        }
        t.row(row);
    }
    t
}

/// E9b — full-version space lower bounds by distinguishability.
pub fn space_lower_table() -> Table {
    use haec_theory::space::{mvr_sibling_family, orset_family};
    let mut t = Table::new("E9b / full version: replica-space lower bounds (distinguishability)");
    t.row(format!(
        "{:<12} {:>4} {:>12} {:>12} {:>12} {:>14}",
        "family", "m", "histories", "states", "bound bits", "measured bits"
    ));
    for m in [3usize, 6, 9] {
        let r = mvr_sibling_family(&DvvMvrStore, m);
        t.row(format!(
            "{:<12} {:>4} {:>12} {:>12} {:>12.1} {:>14}",
            "mvr", m, r.histories, r.distinct_states, r.bound_bits, r.max_state_bits
        ));
    }
    for m in [3usize, 6, 9] {
        let r = orset_family(&OrSetStore, m);
        t.row(format!(
            "{:<12} {:>4} {:>12} {:>12} {:>12.1} {:>14}",
            "orset", m, r.histories, r.distinct_states, r.bound_bits, r.max_state_bits
        ));
    }
    t.row("Every subset of deliveries lands in its own replica state (full rank),".into());
    t.row("so any implementation needs ≥ lg(states) bits; measured states comply.".into());
    t.row("No redelivery/reordering is used — the full-version strengthening.".into());
    t
}

/// One store's mean cost metrics from [`cost_rows`] (E12).
#[derive(Clone, Debug)]
pub struct CostRow {
    /// Store name.
    pub store: String,
    /// Mean messages broadcast per run.
    pub sends: f64,
    /// Mean copies delivered per run.
    pub receives: f64,
    /// Mean of the per-run average message size in bits.
    pub avg_message_bits: f64,
    /// Mean network bits spent per client update.
    pub bits_per_update: f64,
    /// Mean total replica state in bits at the end of the run.
    pub final_state_bits: f64,
    /// Mean peak total replica state in bits over the run.
    pub peak_state_bits: f64,
}

impl CostRow {
    /// The row as a JSON object (keys stable, insertion-ordered).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("store".into(), Json::str(self.store.clone())),
            ("sends".into(), Json::Float(self.sends)),
            ("receives".into(), Json::Float(self.receives)),
            (
                "avg_message_bits".into(),
                Json::Float(self.avg_message_bits),
            ),
            ("bits_per_update".into(), Json::Float(self.bits_per_update)),
            (
                "final_state_bits".into(),
                Json::Float(self.final_state_bits),
            ),
            ("peak_state_bits".into(), Json::Float(self.peak_state_bits)),
        ])
    }
}

/// E12 data — per-store mean cost metrics over `seeds` runs of the same
/// workload.
pub fn cost_rows(seeds: u64) -> Vec<CostRow> {
    use haec_sim::measure;
    let stores: Vec<(Box<dyn StoreFactory>, SpecKind)> = vec![
        (Box::new(DvvMvrStore), SpecKind::Mvr),
        (Box::new(haec_stores::CopsStore), SpecKind::Mvr),
        (
            Box::new(haec_stores::CausalRegisterStore),
            SpecKind::LwwRegister,
        ),
        (Box::new(OrSetStore), SpecKind::OrSet),
        (Box::new(LwwStore), SpecKind::LwwRegister),
        (Box::new(BoundedStore), SpecKind::Mvr),
    ];
    let mut rows = Vec::new();
    for (factory, spec) in stores {
        let mut acc = (0f64, 0f64, 0f64, 0f64, 0f64, 0f64);
        for seed in 0..seeds {
            let mut sim = Simulator::new(factory.as_ref(), StoreConfig::new(4, 2));
            let mut wl = Workload::new(spec, 4, 2, 0.3, KeyDistribution::Uniform);
            let sched = ScheduleConfig {
                steps: 300,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            };
            run_schedule(&mut sim, &mut wl, &sched, seed);
            let m = measure(&sim);
            acc.0 += m.sends as f64;
            acc.1 += m.receives as f64;
            acc.2 += m.avg_message_bits();
            acc.3 += m.bits_per_update();
            acc.4 += m.final_state_bits as f64;
            acc.5 += m.peak_state_bits as f64;
        }
        let n = seeds as f64;
        rows.push(CostRow {
            store: factory.name().to_owned(),
            sends: acc.0 / n,
            receives: acc.1 / n,
            avg_message_bits: acc.2 / n,
            bits_per_update: acc.3 / n,
            final_state_bits: acc.4 / n,
            peak_state_bits: acc.5 / n,
        });
    }
    rows
}

/// [`cost_rows`] rendered as a JSON array (for `experiments --cost --json`).
pub fn cost_rows_json(rows: &[CostRow]) -> Json {
    Json::Arr(rows.iter().map(CostRow::to_json).collect())
}

/// E12 — store cost comparison (messages, bits, state) on one workload.
pub fn cost_table(seeds: u64) -> Table {
    let mut t = Table::new("E12 / store cost comparison (same workload, mean over seeds)");
    t.row(format!(
        "{:<18} {:>8} {:>10} {:>12} {:>14} {:>12} {:>12}",
        "store", "sends", "recvs", "avg msg bits", "bits/update", "state bits", "peak bits"
    ));
    for r in cost_rows(seeds) {
        t.row(format!(
            "{:<18} {:>8.0} {:>10.0} {:>12.1} {:>14.1} {:>12.0} {:>12.0}",
            r.store,
            r.sends,
            r.receives,
            r.avg_message_bits,
            r.bits_per_update,
            r.final_state_bits,
            r.peak_state_bits
        ));
    }
    t.row("COPS-style dependency compression beats per-update vectors; the".into());
    t.row("bounded store is cheapest — and incorrect (E10).".into());
    t
}

/// E10 — the bounded-message ablation.
pub fn ablation_table() -> Table {
    let mut t =
        Table::new("E10 / ablation: capping message size breaks causal+eventual consistency");
    let cfg = Thm12Config {
        n_replicas: 4,
        n_objects: 3,
        k: 4,
    };
    let dvv = roundtrip(&DvvMvrStore, &cfg, &[3, 2]);
    t.row(format!(
        "dvv-mvr:  m_g = {:>5} bits, decode g=(3,2): {:?}",
        dvv.m_g_bits, dvv.decoded
    ));
    let bounded = roundtrip(&BoundedStore, &cfg, &[3, 2]);
    t.row(format!(
        "bounded:  m_g = {:>5} bits, decode g=(3,2): {:?}  <- lossy, as Theorem 12 predicts",
        bounded.m_g_bits, bounded.decoded
    ));
    let mut broken = 0;
    let runs = 10;
    for seed in 0..runs {
        let rep = explore(&BoundedStore, &ExplorationConfig::default(), seed);
        if !(rep.abstract_execution.is_ok() && rep.correct.is_none() && rep.causal.is_none()) {
            broken += 1;
        }
    }
    t.row(format!(
        "bounded store under random schedules: {broken}/{runs} runs violate correctness or causality"
    ));
    t
}

/// E11 — session guarantees across stores (extension beyond the paper).
pub fn sessions_table(seeds: u64) -> Table {
    use haec_core::consistency::sessions;
    let mut t = Table::new("E11 / session guarantees (monotonic writes, writes-follow-reads)");
    t.row(format!(
        "{:<18} {:>16} {:>10}",
        "store", "guarantees held", "runs"
    ));
    for factory in all_factories() {
        let spec = spec_for(factory.name());
        let mut held = 0;
        for seed in 0..seeds {
            let config = ExplorationConfig {
                spec,
                schedule: ScheduleConfig {
                    steps: 150,
                    drop_prob: 0.0,
                    quiesce_at_end: false,
                    ..ScheduleConfig::default()
                },
                ..ExplorationConfig::default()
            };
            let rep = explore(factory.as_ref(), &config, seed);
            if let Ok(a) = rep.abstract_execution {
                if sessions::check_all(&a).is_ok() {
                    held += 1;
                }
            }
        }
        t.row(format!("{:<18} {:>16} {:>10}", factory.name(), held, seeds));
    }
    t.row("Causal stores provide both guarantees on every run; the eager LWW,".into());
    t.row("bounded and sequenced stores lose them on some schedules.".into());
    t
}

/// E13 — empirical consistency classification (Theorem 6's question,
/// asked of each store).
pub fn classify_table(seeds: u64) -> Table {
    use haec_sim::classify::classify;
    let mut t = Table::new("E13 / strongest model per store (empirical, over random schedules)");
    t.row(format!("{:<18} {:>16}", "store", "strongest model"));
    for factory in all_factories() {
        let spec = spec_for(factory.name());
        let config = ExplorationConfig {
            spec,
            arbitrated_order: arbitrated_for(factory.name()),
            schedule: ScheduleConfig {
                steps: 150,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        let grade = classify(factory.as_ref(), &config, 0..seeds);
        t.row(format!(
            "{:<18} {:>16}",
            factory.name(),
            grade.map_or("(not even correct)".to_owned(), |m| m.to_string())
        ));
    }
    t.row("Theorem 6 predicts: no write-propagating MVR store grades above OCC;".into());
    t.row("the MVR stores sit exactly at causal (Def. 18 witnesses rarely arise in".into());
    t.row("random runs). orset/counter/ew-flag grade OCC vacuously (Def. 18 only".into());
    t.row("constrains register reads). causal-register arbitrates by dot, which".into());
    t.row("the execution-order LWW check misjudges (its causality is shown in E8,".into());
    t.row("E11). Hiding/bounded stores fall out of the hierarchy entirely.".into());
    t
}

/// Runs every experiment and renders the results.
pub fn all_experiments() -> Vec<Table> {
    vec![
        fig1_spec_table(),
        figures_table(),
        thm6_table(20),
        thm12_table(6),
        growth_table(3),
        sec53_table(),
        lemmas_table(3),
        space_table(),
        space_lower_table(),
        ablation_table(),
        sessions_table(5),
        cost_table(3),
        classify_table(6),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_table_contains_expected_verdicts() {
        let t = fig1_spec_table();
        let s = t.render();
        assert!(s.contains("MVR"));
        assert!(s.contains("{v1,v2}"), "{s}");
        assert!(s.contains("{v7}"), "{s}"); // add wins
    }

    #[test]
    fn figures_table_shows_unexplainable_hiding() {
        let s = figures_table().render();
        assert!(s.contains("UNEXPLAINABLE"));
        assert!(s.contains("explainable"));
    }

    #[test]
    fn thm6_table_shows_perfect_compliance_for_dvv() {
        let t = thm6_table(5);
        let s = t.render();
        let dvv_rows: Vec<&str> = s.lines().filter(|l| l.contains("dvv-mvr")).collect();
        assert_eq!(dvv_rows.len(), 3);
        for row in dvv_rows {
            assert!(row.contains("         5          5"), "{row}");
        }
        let arb_row = s
            .lines()
            .find(|l| l.contains("arbitration-mvr"))
            .expect("row");
        assert!(arb_row.contains("         0"), "{arb_row}");
    }

    #[test]
    fn thm12_table_ratios_at_least_one() {
        let t = thm12_table(2);
        for line in &t.lines[1..] {
            if let Some(ratio) = line.split_whitespace().nth(3) {
                if let Ok(r) = ratio.parse::<f64>() {
                    assert!(r >= 1.0, "{line}");
                }
            }
        }
    }

    #[test]
    fn sec53_table_contrasts_k0_and_k_positive() {
        let s = sec53_table().render();
        assert!(s.contains("k-delayed(K=0)"));
        assert!(s.contains("NO (avoids it)"));
    }

    #[test]
    fn ablation_table_flags_bounded_store() {
        let s = ablation_table().render();
        assert!(s.contains("lossy"));
    }

    #[test]
    fn space_table_renders_rows() {
        let t = space_table();
        assert_eq!(t.lines.len(), 5);
    }

    #[test]
    fn cost_rows_json_parses_back() {
        let rows = cost_rows(1);
        assert!(rows.iter().any(|r| r.store == "cops-mvr"));
        for r in &rows {
            assert!(r.peak_state_bits >= r.final_state_bits, "{}", r.store);
        }
        let text = cost_rows_json(&rows).render();
        let v = Json::parse(&text).expect("valid JSON");
        let arr = v.as_arr().expect("array");
        assert_eq!(arr.len(), rows.len());
        assert_eq!(
            arr[0].get("store").and_then(Json::as_str),
            Some(rows[0].store.as_str())
        );
        assert!(arr[0]
            .get("bits_per_update")
            .and_then(Json::as_f64)
            .is_some());
    }
}
