//! Visibility lag and read staleness.
//!
//! Two complementary views of how far behind replicas run:
//!
//! - **Visibility lag** (per update, per remote replica): the number of
//!   transcript events between an update's `do` and the first operation at
//!   another replica that witnesses the update's dot. The issuing replica
//!   sees its own updates immediately and contributes no sample.
//! - **Read staleness** (per read): how many of the updates issued anywhere
//!   so far the read's witness context is missing — its distance from the
//!   global frontier.
//!
//! Both rely on the store-reported visibility witnesses, so they measure
//! what the store *admits* was visible, exactly the witnesses the
//! consistency checkers consume.

use super::hist::Histogram;
use super::{DoEvent, Observer};
use haec_model::Dot;
use std::collections::{BTreeMap, BTreeSet};

type DotKey = (u32, u32);

fn key(d: Dot) -> DotKey {
    (d.replica.index() as u32, d.seq)
}

/// Observes `do` events and accumulates visibility-lag and read-staleness
/// histograms.
#[derive(Clone, Debug)]
pub struct LagObserver {
    n_replicas: usize,
    /// Dot of each issued update → transcript step of its `do`.
    issued: BTreeMap<DotKey, usize>,
    /// `(dot, replica)` pairs whose first observation was already counted.
    observed: BTreeSet<(DotKey, u32)>,
    updates_issued: u64,
    visibility_lag: Histogram,
    read_staleness: Histogram,
}

impl LagObserver {
    /// A collector for a cluster of `n_replicas`.
    pub fn new(n_replicas: usize) -> Self {
        LagObserver {
            n_replicas,
            issued: BTreeMap::new(),
            observed: BTreeSet::new(),
            updates_issued: 0,
            visibility_lag: Histogram::new(),
            read_staleness: Histogram::new(),
        }
    }

    /// Histogram of first-observation lags, one sample per `(update,
    /// remote replica)` pair that has been observed.
    pub fn visibility_lag(&self) -> &Histogram {
        &self.visibility_lag
    }

    /// Histogram of read staleness, one sample per read.
    pub fn read_staleness(&self) -> &Histogram {
        &self.read_staleness
    }

    /// Updates issued so far.
    pub fn updates_issued(&self) -> u64 {
        self.updates_issued
    }

    /// `(update, remote replica)` pairs still waiting for their first
    /// observation — updates that never became visible somewhere.
    pub fn pending_observations(&self) -> u64 {
        self.updates_issued * (self.n_replicas.saturating_sub(1) as u64)
            - self.observed.len() as u64
    }
}

impl Observer for LagObserver {
    fn on_do(&mut self, ev: &DoEvent<'_>) {
        if let Some(dot) = ev.dot {
            self.issued.insert(key(dot), ev.step);
            self.updates_issued += 1;
        }
        // First observations: dots from other replicas this operation
        // witnesses for the first time at `ev.replica`.
        for &d in ev.visible {
            if d.replica == ev.replica {
                continue;
            }
            let Some(&issue_step) = self.issued.get(&key(d)) else {
                continue;
            };
            if self.observed.insert((key(d), ev.replica.index() as u32)) {
                self.visibility_lag
                    .record(ev.step.saturating_sub(issue_step) as u64);
            }
        }
        if ev.op.is_read() {
            let seen = ev.visible.len() as u64;
            self.read_staleness
                .record(self.updates_issued.saturating_sub(seen));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_model::{ObjectId, Op, ReplicaId, ReturnValue, Value};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn do_ev<'a>(
        step: usize,
        replica: ReplicaId,
        op: &'a Op,
        rval: &'a ReturnValue,
        dot: Option<Dot>,
        visible: &'a [Dot],
    ) -> DoEvent<'a> {
        DoEvent {
            step,
            replica,
            obj: ObjectId::new(0),
            op,
            rval,
            dot,
            visible,
        }
    }

    #[test]
    fn lag_counts_first_remote_observation_only() {
        let mut lag = LagObserver::new(2);
        let w = Op::Write(Value::new(1));
        let rd = Op::Read;
        let ok = ReturnValue::Ok;
        let empty = ReturnValue::empty();
        let d = Dot::new(r(0), 1);

        // Step 0: r0 writes (its own dot visible to itself — no sample).
        lag.on_do(&do_ev(0, r(0), &w, &ok, Some(d), &[d]));
        // Step 1: r1 reads, sees nothing: staleness 1.
        lag.on_do(&do_ev(1, r(1), &rd, &empty, None, &[]));
        // Step 4: r1 reads again, now sees the dot: lag 4, staleness 0.
        lag.on_do(&do_ev(4, r(1), &rd, &empty, None, &[d]));
        // Step 5: another read at r1 — the pair is already counted.
        lag.on_do(&do_ev(5, r(1), &rd, &empty, None, &[d]));

        assert_eq!(lag.updates_issued(), 1);
        assert_eq!(lag.visibility_lag().count(), 1);
        assert_eq!(lag.visibility_lag().max(), Some(4));
        assert_eq!(lag.read_staleness().count(), 3);
        assert_eq!(lag.read_staleness().max(), Some(1));
        assert_eq!(lag.read_staleness().min(), Some(0));
        assert_eq!(lag.pending_observations(), 0);
    }

    #[test]
    fn unobserved_updates_stay_pending() {
        let mut lag = LagObserver::new(3);
        let w = Op::Write(Value::new(1));
        let ok = ReturnValue::Ok;
        let d = Dot::new(r(0), 1);
        lag.on_do(&do_ev(0, r(0), &w, &ok, Some(d), &[d]));
        // Nobody else ever sees it: 2 remote replicas pending.
        assert_eq!(lag.pending_observations(), 2);
        assert_eq!(lag.visibility_lag().count(), 0);
    }
}
