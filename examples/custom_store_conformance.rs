//! Bring your own store: implement `ReplicaMachine` for a brand-new store
//! design and run the paper's entire battery against it — property checks,
//! random-schedule consistency audits, the Theorem 6 construction, and the
//! Theorem 12 encode/decode roundtrip.
//!
//! The store implemented here is a *state-based* (convergent) MVR: replicas
//! gossip their **full state** and merge by join. It is write-propagating,
//! causally and eventually consistent — and its messages grow without
//! bound, exactly as Theorem 12 demands of any store in that class.
//!
//! Run with: `cargo run --example custom_store_conformance`

use haec::prelude::*;
use haec::stores::properties::check_write_propagating;
use haec::stores::vv::VersionVector;
use haec::stores::wire::{gamma_len, width_for, BitReader, BitWriter};
use haec_model::{DoOutcome, Dot, Payload, ReplicaMachine};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A state-based MVR store: the whole replica state is the message.
#[derive(Copy, Clone, Default, Debug)]
struct StateGossipStore;

impl StoreFactory for StateGossipStore {
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine> {
        Box::new(GossipReplica {
            replica,
            config,
            vv: VersionVector::new(config.n_replicas),
            // Per object: sibling -> its dependency vector (needed so a
            // merge can tell domination).
            objects: BTreeMap::new(),
            dirty: false,
        })
    }

    fn name(&self) -> &str {
        "state-gossip"
    }
}

type Siblings = BTreeMap<Dot, (Value, VersionVector)>;

#[derive(Clone)]
struct GossipReplica {
    replica: ReplicaId,
    config: StoreConfig,
    vv: VersionVector,
    objects: BTreeMap<ObjectId, Siblings>,
    dirty: bool,
}

impl GossipReplica {
    /// Drops every sibling covered by another sibling's dependency vector.
    fn prune(siblings: &mut Siblings) {
        let snapshot: Vec<(Dot, VersionVector)> = siblings
            .iter()
            .map(|(d, (_, deps))| (*d, deps.clone()))
            .collect();
        siblings.retain(|d, _| {
            !snapshot
                .iter()
                .any(|(other, deps)| other != d && deps.contains(*d))
        });
    }

    fn merge(&mut self, other_vv: &VersionVector, incoming: BTreeMap<ObjectId, Siblings>) {
        self.vv.merge(other_vv);
        for (obj, theirs) in incoming {
            let mine = self.objects.entry(obj).or_default();
            for (dot, (value, deps)) in theirs {
                mine.entry(dot).or_insert((value, deps));
            }
            Self::prune(mine);
        }
    }
}

impl ReplicaMachine for GossipReplica {
    fn boxed_clone(&self) -> Box<dyn ReplicaMachine> {
        Box::new(self.clone())
    }

    fn do_op(&mut self, obj: ObjectId, op: &Op) -> DoOutcome {
        match op {
            Op::Read => DoOutcome::new(
                ReturnValue::values(
                    self.objects
                        .get(&obj)
                        .into_iter()
                        .flat_map(|s| s.values())
                        .map(|&(v, _)| v),
                ),
                self.vv.dots().collect(),
            ),
            Op::Write(v) => {
                let visible: Vec<Dot> = self.vv.dots().collect();
                let mut deps = self.vv.clone();
                let seq = self.vv.advance(self.replica);
                deps.set(self.replica, seq - 1);
                let dot = Dot::new(self.replica, seq);
                let siblings = self.objects.entry(obj).or_default();
                siblings.insert(dot, (*v, deps));
                GossipReplica::prune(siblings);
                self.dirty = true;
                DoOutcome::new(ReturnValue::Ok, visible)
            }
            other => panic!("state-gossip store does not support {other}"),
        }
    }

    fn pending_message(&self) -> Option<Payload> {
        if !self.dirty {
            return None;
        }
        // Serialize the full state.
        let mut w = BitWriter::new();
        for &e in self.vv.entries() {
            w.write_gamma0(u64::from(e));
        }
        w.write_gamma0(self.objects.len() as u64);
        for (obj, siblings) in &self.objects {
            w.write_bits(u64::from(obj.as_u32()), width_for(self.config.n_objects));
            w.write_gamma0(siblings.len() as u64);
            for (dot, (value, deps)) in siblings {
                w.write_bits(
                    u64::from(dot.replica.as_u32()),
                    width_for(self.config.n_replicas),
                );
                w.write_gamma(u64::from(dot.seq));
                w.write_gamma0(value.as_u64());
                for &e in deps.entries() {
                    w.write_gamma0(u64::from(e));
                }
            }
        }
        Some(w.finish())
    }

    fn on_send(&mut self) {
        assert!(self.dirty, "send scheduled with no pending message");
        self.dirty = false;
    }

    fn on_receive(&mut self, payload: &Payload) {
        let mut r = BitReader::new(payload);
        let mut other_vv = VersionVector::new(self.config.n_replicas);
        for i in 0..self.config.n_replicas {
            let Ok(e) = r.read_gamma0() else { return };
            other_vv.set(ReplicaId::new(i as u32), e as u32);
        }
        let Ok(n_objects) = r.read_gamma0() else {
            return;
        };
        let mut incoming: BTreeMap<ObjectId, Siblings> = BTreeMap::new();
        for _ in 0..n_objects {
            let Ok(obj) = r.read_bits(width_for(self.config.n_objects)) else {
                return;
            };
            let Ok(n_sib) = r.read_gamma0() else { return };
            let mut siblings = Siblings::new();
            for _ in 0..n_sib {
                let (Ok(origin), Ok(seq), Ok(value)) = (
                    r.read_bits(width_for(self.config.n_replicas)),
                    r.read_gamma(),
                    r.read_gamma0(),
                ) else {
                    return;
                };
                let mut deps = VersionVector::new(self.config.n_replicas);
                for i in 0..self.config.n_replicas {
                    let Ok(e) = r.read_gamma0() else { return };
                    deps.set(ReplicaId::new(i as u32), e as u32);
                }
                siblings.insert(
                    Dot::new(ReplicaId::new(origin as u32), seq as u32),
                    (Value::new(value), deps),
                );
            }
            incoming.insert(ObjectId::new(obj as u32), siblings);
        }
        self.merge(&other_vv, incoming);
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.vv.hash(&mut h);
        self.objects.hash(&mut h);
        self.dirty.hash(&mut h);
        h.finish()
    }

    fn state_bits(&self) -> usize {
        self.pending_message().map_or(0, |p| p.bits())
            + self
                .vv
                .entries()
                .iter()
                .map(|&e| gamma_len(u64::from(e) + 1))
                .sum::<usize>()
    }
}

fn main() {
    let store = StateGossipStore;
    println!(
        "conformance-testing a user-defined store: `{}`\n",
        store.name()
    );

    // 1. Write-propagating properties (Definitions 15 & 16).
    let rep = check_write_propagating(&store, StoreConfig::new(3, 2), 1, 500);
    println!(
        "write-propagating (invisible reads + op-driven messages): {}",
        if rep.is_write_propagating() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(rep.is_write_propagating(), "{:?}", rep.violations);

    // 2. Random-schedule consistency audit.
    let mut ok = 0;
    let runs = 10;
    for seed in 0..runs {
        let config = ExplorationConfig {
            schedule: ScheduleConfig {
                steps: 150,
                drop_prob: 0.0,
                ..ScheduleConfig::default()
            },
            ..ExplorationConfig::default()
        };
        if explore(&store, &config, seed).is_causally_consistent() {
            ok += 1;
        }
    }
    println!("correct + causally consistent under random schedules: {ok}/{runs}");
    assert_eq!(ok, runs);

    // 3. Theorem 6 construction: the store cannot avoid any causally
    //    consistent execution.
    let mut complied = 0;
    for seed in 0..20 {
        let a = random_causal(&GeneratorConfig::default(), seed);
        if construct(&store, &a).complies() {
            complied += 1;
        }
    }
    println!("Theorem 6 construction compliance: {complied}/20");
    assert_eq!(complied, 20);

    // 4. Theorem 12 roundtrip: its messages must carry g — and they do
    //    (the full state does, trivially), so message size is unbounded.
    let cfg = Thm12Config {
        n_replicas: 5,
        n_objects: 4,
        k: 32,
    };
    let rt = roundtrip(&store, &cfg, &[31, 4, 17]);
    println!(
        "Theorem 12 roundtrip: decoded {:?}, m_g = {} bits (bound {:.1})",
        rt.decoded, rt.m_g_bits, rt.bound_bits
    );
    assert!(rt.is_lossless());
    assert!(rt.m_g_bits as f64 >= rt.bound_bits);

    println!("\nthe custom store conforms: it is a write-propagating causal MVR store,");
    println!("and — like every member of that class — it pays Theorem 12's price:");
    for k in [8u32, 64, 512] {
        let cfg = Thm12Config {
            n_replicas: 5,
            n_objects: 4,
            k,
        };
        let rt = roundtrip(&store, &cfg, &[k, 1, k / 2]);
        assert!(rt.is_lossless());
        println!("  k = {k:>4}: m_g = {:>6} bits", rt.m_g_bits);
    }
}
