//! Portable text traces: serialize an [`Execution`] to a line-oriented
//! format and parse it back.
//!
//! The exhaustive explorer and the random schedulers occasionally find
//! counterexample executions worth sharing (bug reports, regression
//! fixtures). The trace format is stable, human-readable and round-trips
//! exactly:
//!
//! ```text
//! replicas 3
//! do R0 x0 write v1 ok
//! send R0 m0 16 a1b2
//! fault drop m0 R2
//! recv R1 m0
//! do R1 x0 read {v1}
//! ```
//!
//! Network faults (drops, duplicates, partition transitions) leave no mark
//! in the [`Execution`] itself, so plain [`to_text`] loses them. The
//! `fault` directive carries them: [`to_text_with_faults`] interleaves the
//! simulator's [`FaultRecord`]s at their recorded positions and
//! [`parse_full`] recovers both the execution and the fault transcript
//! exactly. [`parse`] accepts the extended format too, discarding the
//! fault lines.

use crate::simulator::{FaultKind, FaultRecord};
use haec_model::{
    EventKind, Execution, MsgId, ObjectId, Op, Payload, ReplicaId, ReturnValue, Value,
};
use std::fmt;

/// A parse failure with its line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn encode_rval(rv: &ReturnValue) -> String {
    match rv {
        ReturnValue::Ok => "ok".to_owned(),
        ReturnValue::Values(vals) => {
            let inner: Vec<String> = vals.iter().map(|v| format!("v{}", v.as_u64())).collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

fn encode_op(op: &Op) -> String {
    match op {
        Op::Write(v) => format!("write v{}", v.as_u64()),
        Op::Read => "read".to_owned(),
        Op::Add(v) => format!("add v{}", v.as_u64()),
        Op::Remove(v) => format!("remove v{}", v.as_u64()),
        Op::Inc => "inc".to_owned(),
        Op::Enable => "enable".to_owned(),
        Op::Disable => "disable".to_owned(),
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

fn push_event(out: &mut String, ex: &Execution, e: &haec_model::Event) {
    match &e.kind {
        EventKind::Do { obj, op, rval } => {
            out.push_str(&format!(
                "do R{} x{} {} {}\n",
                e.replica.as_u32(),
                obj.as_u32(),
                encode_op(op),
                encode_rval(rval)
            ));
        }
        EventKind::Send { msg } => {
            let rec = ex.message(*msg);
            let body = if rec.payload.bytes().is_empty() {
                "-".to_owned()
            } else {
                hex(rec.payload.bytes())
            };
            out.push_str(&format!(
                "send R{} m{} {} {}\n",
                e.replica.as_u32(),
                msg.index(),
                rec.payload.bits(),
                body
            ));
        }
        EventKind::Receive { msg } => {
            out.push_str(&format!("recv R{} m{}\n", e.replica.as_u32(), msg.index()));
        }
    }
}

fn push_fault(out: &mut String, f: &FaultRecord) {
    match &f.kind {
        FaultKind::Drop { msg, to } => {
            out.push_str(&format!("fault drop m{} R{}\n", msg.index(), to.as_u32()));
        }
        FaultKind::Duplicate { msg, to } => {
            out.push_str(&format!("fault dup m{} R{}\n", msg.index(), to.as_u32()));
        }
        FaultKind::PartitionStart { group } => {
            let groups = if group.is_empty() {
                "-".to_owned()
            } else {
                group
                    .iter()
                    .map(|g| g.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!("fault part-start {groups}\n"));
        }
        FaultKind::PartitionHeal => out.push_str("fault part-heal\n"),
    }
}

/// Serializes an execution to the trace format (fault-free view).
pub fn to_text(ex: &Execution) -> String {
    to_text_with_faults(ex, &[])
}

/// Serializes an execution together with its fault transcript (see
/// [`Simulator::faults`](crate::Simulator::faults)). Fault lines are
/// interleaved at their recorded event positions, so
/// [`parse_full`] recovers both exactly.
pub fn to_text_with_faults(ex: &Execution, faults: &[FaultRecord]) -> String {
    let mut out = format!("replicas {}\n", ex.n_replicas());
    let mut fi = 0;
    for (i, e) in ex.events().iter().enumerate() {
        while fi < faults.len() && faults[fi].at_event <= i {
            push_fault(&mut out, &faults[fi]);
            fi += 1;
        }
        push_event(&mut out, ex, e);
    }
    for f in &faults[fi..] {
        push_fault(&mut out, f);
    }
    out
}

fn parse_value(tok: &str, line: usize) -> Result<Value, ParseError> {
    tok.strip_prefix('v')
        .and_then(|s| s.parse::<u64>().ok())
        .map(Value::new)
        .ok_or_else(|| ParseError {
            line,
            message: format!("bad value token `{tok}`"),
        })
}

fn parse_rval(tok: &str, line: usize) -> Result<ReturnValue, ParseError> {
    if tok == "ok" {
        return Ok(ReturnValue::Ok);
    }
    let inner = tok
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("bad rval token `{tok}`"),
        })?;
    if inner.is_empty() {
        return Ok(ReturnValue::empty());
    }
    let vals: Result<Vec<Value>, ParseError> =
        inner.split(',').map(|t| parse_value(t, line)).collect();
    Ok(ReturnValue::values(vals?))
}

fn parse_replica(tok: &str, line: usize) -> Result<ReplicaId, ParseError> {
    tok.strip_prefix('R')
        .and_then(|s| s.parse::<u32>().ok())
        .map(ReplicaId::new)
        .ok_or_else(|| ParseError {
            line,
            message: format!("bad replica token `{tok}`"),
        })
}

/// Parses a trace back into an [`Execution`], discarding `fault` lines.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input or
/// a trace violating well-formedness.
pub fn parse(text: &str) -> Result<Execution, ParseError> {
    parse_full(text).map(|(ex, _)| ex)
}

fn parse_msg(tok: &str, line: usize) -> Result<MsgId, ParseError> {
    tok.strip_prefix('m')
        .and_then(|s| s.parse::<u64>().ok())
        .map(MsgId::new)
        .ok_or_else(|| ParseError {
            line,
            message: format!("bad message token `{tok}`"),
        })
}

fn parse_fault(toks: &[&str], at_event: usize, line: usize) -> Result<FaultRecord, ParseError> {
    let err = |message: String| ParseError { line, message };
    let kind = match toks.get(1).copied() {
        Some("drop") | Some("dup") => {
            if toks.len() != 4 {
                return Err(err("fault drop/dup expects `fault <kind> m<j> R<k>`".into()));
            }
            let msg = parse_msg(toks[2], line)?;
            let to = parse_replica(toks[3], line)?;
            if toks[1] == "drop" {
                FaultKind::Drop { msg, to }
            } else {
                FaultKind::Duplicate { msg, to }
            }
        }
        Some("part-start") => {
            if toks.len() != 3 {
                return Err(err(
                    "fault part-start expects `fault part-start <group>`".into()
                ));
            }
            let group = if toks[2] == "-" {
                Vec::new()
            } else {
                toks[2]
                    .split(',')
                    .map(|t| {
                        t.parse::<usize>()
                            .map_err(|_| err(format!("bad partition group `{}`", toks[2])))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            FaultKind::PartitionStart { group }
        }
        Some("part-heal") => {
            if toks.len() != 2 {
                return Err(err("fault part-heal takes no arguments".into()));
            }
            FaultKind::PartitionHeal
        }
        other => {
            return Err(err(format!(
                "unknown fault kind `{}`",
                other.unwrap_or("<missing>")
            )))
        }
    };
    Ok(FaultRecord { at_event, kind })
}

/// Parses a trace back into an [`Execution`] plus its fault transcript.
/// Each fault's `at_event` is the number of events parsed before it, which
/// is exactly how [`to_text_with_faults`] positions fault lines — so
/// `(execution, faults)` round-trips bit-exactly.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input or
/// a trace violating well-formedness.
pub fn parse_full(text: &str) -> Result<(Execution, Vec<FaultRecord>), ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError {
        line: 1,
        message: "empty trace".into(),
    })?;
    let n_replicas = header
        .strip_prefix("replicas ")
        .and_then(|s| s.trim().parse::<usize>().ok())
        .ok_or(ParseError {
            line: 1,
            message: "expected `replicas <n>` header".into(),
        })?;
    let mut ex = Execution::new(n_replicas);
    let mut faults = Vec::new();
    for (ix, raw) in lines {
        let line = ix + 1;
        let toks: Vec<&str> = raw.split_whitespace().collect();
        if toks.is_empty() {
            continue;
        }
        let err = |message: String| ParseError { line, message };
        match toks[0] {
            "do" => {
                if toks.len() < 4 {
                    return Err(err("truncated do line".into()));
                }
                let replica = parse_replica(toks[1], line)?;
                let obj = toks[2]
                    .strip_prefix('x')
                    .and_then(|s| s.parse::<u32>().ok())
                    .map(ObjectId::new)
                    .ok_or_else(|| err(format!("bad object token `{}`", toks[2])))?;
                let (op, rval_tok) = match toks[3] {
                    "read" => (Op::Read, toks.get(4)),
                    "inc" => (Op::Inc, toks.get(4)),
                    "enable" => (Op::Enable, toks.get(4)),
                    "disable" => (Op::Disable, toks.get(4)),
                    kind @ ("write" | "add" | "remove") => {
                        let v = parse_value(
                            toks.get(4).ok_or_else(|| err("missing value".into()))?,
                            line,
                        )?;
                        let op = match kind {
                            "write" => Op::Write(v),
                            "add" => Op::Add(v),
                            _ => Op::Remove(v),
                        };
                        (op, toks.get(5))
                    }
                    other => return Err(err(format!("unknown op `{other}`"))),
                };
                let rval = parse_rval(rval_tok.ok_or_else(|| err("missing rval".into()))?, line)?;
                ex.push_do(replica, obj, op, rval);
            }
            "send" => {
                if toks.len() != 5 {
                    return Err(err("send expects `send R<i> m<j> <bits> <hex>`".into()));
                }
                let replica = parse_replica(toks[1], line)?;
                let bits: usize = toks[3]
                    .parse()
                    .map_err(|_| err(format!("bad bit count `{}`", toks[3])))?;
                let bytes = if toks[4] == "-" {
                    Vec::new()
                } else {
                    unhex(toks[4]).ok_or_else(|| err(format!("bad hex `{}`", toks[4])))?
                };
                let payload = Payload::from_bits(bytes, bits);
                ex.push_send(replica, payload)
                    .map_err(|e| err(e.to_string()))?;
            }
            "recv" => {
                if toks.len() != 3 {
                    return Err(err("recv expects `recv R<i> m<j>`".into()));
                }
                let replica = parse_replica(toks[1], line)?;
                let msg = parse_msg(toks[2], line)?;
                ex.push_receive(replica, msg)
                    .map_err(|e| err(e.to_string()))?;
            }
            "fault" => {
                faults.push(parse_fault(&toks, ex.events().len(), line)?);
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    Ok((ex, faults))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Execution {
        let mut ex = Execution::new(2);
        ex.push_do(
            ReplicaId::new(0),
            ObjectId::new(0),
            Op::Write(Value::new(1)),
            ReturnValue::Ok,
        );
        let m = ex
            .push_send(ReplicaId::new(0), Payload::from_bits(vec![0b101], 3))
            .unwrap();
        ex.push_receive(ReplicaId::new(1), m).unwrap();
        ex.push_do(
            ReplicaId::new(1),
            ObjectId::new(0),
            Op::Read,
            ReturnValue::values([Value::new(1)]),
        );
        ex.push_do(
            ReplicaId::new(1),
            ObjectId::new(1),
            Op::Read,
            ReturnValue::empty(),
        );
        ex
    }

    #[test]
    fn roundtrip_exact() {
        let ex = sample();
        let text = to_text(&ex);
        let back = parse(&text).unwrap();
        assert_eq!(ex, back);
    }

    #[test]
    fn text_is_human_readable() {
        let text = to_text(&sample());
        assert!(text.starts_with("replicas 2\n"));
        assert!(text.contains("do R0 x0 write v1 ok"));
        assert!(text.contains("recv R1 m0"));
        assert!(text.contains("do R1 x0 read {v1}"));
        assert!(text.contains("do R1 x1 read {}"));
    }

    #[test]
    fn empty_rval_and_orset_ops_roundtrip() {
        let mut ex = Execution::new(1);
        ex.push_do(
            ReplicaId::new(0),
            ObjectId::new(0),
            Op::Add(Value::new(3)),
            ReturnValue::Ok,
        );
        ex.push_do(
            ReplicaId::new(0),
            ObjectId::new(0),
            Op::Remove(Value::new(3)),
            ReturnValue::Ok,
        );
        ex.push_do(
            ReplicaId::new(0),
            ObjectId::new(0),
            Op::Inc,
            ReturnValue::Ok,
        );
        ex.push_do(
            ReplicaId::new(0),
            ObjectId::new(0),
            Op::Enable,
            ReturnValue::Ok,
        );
        ex.push_do(
            ReplicaId::new(0),
            ObjectId::new(0),
            Op::Disable,
            ReturnValue::Ok,
        );
        let back = parse(&to_text(&ex)).unwrap();
        assert_eq!(ex, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("nonsense 3").is_err());
        assert!(parse("replicas 2\nfrobnicate R0").is_err());
        assert!(parse("replicas 2\ndo R0 x0 write").is_err());
        assert!(parse("replicas 2\nrecv R0 m0").is_err(), "recv before send");
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse("replicas 2\ndo R0 x0 write v1 ok\nbad line").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn simulator_executions_roundtrip() {
        use crate::{run_schedule, KeyDistribution, ScheduleConfig, Simulator, Workload};
        use haec_core::SpecKind;
        use haec_model::StoreConfig;
        use haec_stores::DvvMvrStore;
        for seed in 0..5 {
            let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 2));
            let mut wl = Workload::new(SpecKind::Mvr, 3, 2, 0.4, KeyDistribution::Uniform);
            run_schedule(&mut sim, &mut wl, &ScheduleConfig::default(), seed);
            let text = to_text(sim.execution());
            let back = parse(&text).unwrap();
            assert_eq!(sim.execution(), &back, "seed {seed}");
        }
    }

    #[test]
    fn fault_records_roundtrip() {
        let ex = sample();
        let faults = vec![
            FaultRecord {
                at_event: 0,
                kind: FaultKind::PartitionStart { group: vec![0, 1] },
            },
            FaultRecord {
                at_event: 2,
                kind: FaultKind::Drop {
                    msg: MsgId::new(0),
                    to: ReplicaId::new(1),
                },
            },
            FaultRecord {
                at_event: 2,
                kind: FaultKind::Duplicate {
                    msg: MsgId::new(0),
                    to: ReplicaId::new(1),
                },
            },
            // Trailing faults (after the last event) must survive too.
            FaultRecord {
                at_event: ex.events().len(),
                kind: FaultKind::PartitionHeal,
            },
        ];
        let text = to_text_with_faults(&ex, &faults);
        assert!(text.contains("fault part-start 0,1\n"));
        assert!(text.contains("fault drop m0 R1\n"));
        assert!(text.contains("fault dup m0 R1\n"));
        assert!(text.ends_with("fault part-heal\n"));
        let (back_ex, back_faults) = parse_full(&text).unwrap();
        assert_eq!(ex, back_ex);
        assert_eq!(faults, back_faults);
    }

    #[test]
    fn empty_partition_group_roundtrips() {
        let ex = sample();
        let faults = vec![FaultRecord {
            at_event: 1,
            kind: FaultKind::PartitionStart { group: Vec::new() },
        }];
        let text = to_text_with_faults(&ex, &faults);
        assert!(text.contains("fault part-start -\n"));
        let (_, back) = parse_full(&text).unwrap();
        assert_eq!(faults, back);
    }

    #[test]
    fn legacy_parse_discards_faults() {
        let ex = sample();
        let faults = vec![FaultRecord {
            at_event: 2,
            kind: FaultKind::Drop {
                msg: MsgId::new(0),
                to: ReplicaId::new(1),
            },
        }];
        let back = parse(&to_text_with_faults(&ex, &faults)).unwrap();
        assert_eq!(ex, back);
    }

    #[test]
    fn parse_rejects_malformed_faults() {
        assert!(parse("replicas 2\nfault").is_err());
        assert!(parse("replicas 2\nfault teleport m0 R1").is_err());
        assert!(parse("replicas 2\nfault drop m0").is_err());
        assert!(parse("replicas 2\nfault part-start 0;1").is_err());
        assert!(parse("replicas 2\nfault part-heal now").is_err());
    }

    #[test]
    fn faulty_schedules_roundtrip_with_faults() {
        use crate::scheduler::Partition;
        use crate::{run_schedule, KeyDistribution, ScheduleConfig, Simulator, Workload};
        use haec_core::SpecKind;
        use haec_model::StoreConfig;
        use haec_stores::DvvMvrStore;
        for seed in 0..5 {
            let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 2));
            let mut wl = Workload::new(SpecKind::Mvr, 3, 2, 0.4, KeyDistribution::Uniform);
            let config = ScheduleConfig {
                drop_prob: 0.2,
                dup_prob: 0.2,
                partition: Some(Partition {
                    group: vec![0],
                    from_step: 5,
                    to_step: 15,
                }),
                ..ScheduleConfig::default()
            };
            run_schedule(&mut sim, &mut wl, &config, seed);
            assert!(
                !sim.faults().is_empty(),
                "seed {seed}: schedule should inject faults"
            );
            let text = to_text_with_faults(sim.execution(), sim.faults());
            let (back_ex, back_faults) = parse_full(&text).unwrap();
            assert_eq!(sim.execution(), &back_ex, "seed {seed}");
            assert_eq!(sim.faults(), &back_faults[..], "seed {seed}");
        }
    }
}
