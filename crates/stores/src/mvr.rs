//! The dotted-version-vector multi-valued register store.
//!
//! This is the reference *write-propagating* store (paper, §4): a
//! Dynamo-style causally consistent MVR store in the style the paper cites
//! as "every highly-available replicated data storage system we are aware
//! of". It has **invisible reads** (reads touch nothing) and **op-driven
//! messages** (only client updates enqueue broadcasts), and it is both
//! causally consistent and eventually consistent — the exact class that
//! Theorems 6 and 12 speak about.
//!
//! Per object, a replica keeps the *siblings*: the dotted writes not yet
//! superseded by a causally later write. A read returns the sibling values —
//! exactly the MVR specification's set of currently conflicting writes. An
//! incoming write drops every sibling covered by its dependency vector and
//! joins the rest. Causal delivery (via [`CausalEngine`]) guarantees a write
//! never arrives before a write it supersedes.

use crate::engine::{rename_dot, CausalEngine, Update, UpdateOp};
use crate::wire::{gamma_len, width_for};
use haec_model::{
    DoOutcome, ObjectId, Op, Payload, ReplicaMachine, ReturnValue, StoreConfig, StoreFactory, Value,
};
use haec_model::{Dot, ReplicaId};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Factory for the DVV MVR store.
///
/// ```
/// use haec_stores::DvvMvrStore;
/// use haec_model::{StoreFactory, StoreConfig, ReplicaId, ObjectId, Op, Value};
///
/// let factory = DvvMvrStore;
/// let mut replica = factory.spawn(ReplicaId::new(0), StoreConfig::new(2, 1));
/// let out = replica.do_op(ObjectId::new(0), &Op::Write(Value::new(7)));
/// assert!(out.rval.is_ok());
/// assert!(replica.pending_message().is_some());
/// ```
#[derive(Copy, Clone, Default, Debug)]
pub struct DvvMvrStore;

impl StoreFactory for DvvMvrStore {
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine> {
        Box::new(MvrReplica {
            engine: CausalEngine::new(replica, config),
            objects: BTreeMap::new(),
        })
    }

    fn name(&self) -> &str {
        "dvv-mvr"
    }
}

/// One replica of the DVV MVR store.
#[derive(Clone, Debug)]
pub struct MvrReplica {
    engine: CausalEngine,
    /// Siblings per object: dotted writes not superseded by a visible write.
    objects: BTreeMap<ObjectId, Vec<(Dot, Value)>>,
}

impl MvrReplica {
    fn apply(&mut self, u: &Update) {
        if let UpdateOp::Write(v) = u.op {
            let siblings = self.objects.entry(u.obj).or_default();
            siblings.retain(|(d, _)| !u.deps.contains(*d));
            siblings.push((u.dot, v));
            siblings.sort_unstable();
        }
    }

    fn read(&self, obj: ObjectId) -> ReturnValue {
        ReturnValue::values(
            self.objects
                .get(&obj)
                .into_iter()
                .flatten()
                .map(|&(_, v)| v),
        )
    }
}

impl ReplicaMachine for MvrReplica {
    fn boxed_clone(&self) -> Box<dyn ReplicaMachine> {
        Box::new(self.clone())
    }

    /// # Panics
    ///
    /// Panics if the operation is not a register operation (write/read).
    fn do_op(&mut self, obj: ObjectId, op: &Op) -> DoOutcome {
        match op {
            Op::Read => DoOutcome::new(self.read(obj), self.engine.visible_dots()),
            Op::Write(v) => {
                let visible = self.engine.visible_dots();
                let u = self.engine.local_update(obj, UpdateOp::Write(*v));
                self.apply(&u);
                DoOutcome::new(ReturnValue::Ok, visible)
            }
            other => panic!("MVR store does not support {other}"),
        }
    }

    fn pending_message(&self) -> Option<Payload> {
        self.engine.pending_message()
    }

    fn on_send(&mut self) {
        self.engine.on_send();
    }

    fn on_receive(&mut self, payload: &Payload) {
        for u in self.engine.on_receive(payload) {
            self.apply(&u);
        }
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.engine.hash_into(&mut h);
        self.objects.hash(&mut h);
        h.finish()
    }

    fn state_bits(&self) -> usize {
        let cfg = self.engine.config();
        let sibling_bits: usize = self
            .objects
            .values()
            .flatten()
            .map(|(d, v)| {
                width_for(cfg.n_replicas) as usize
                    + gamma_len(d.seq as u64)
                    + gamma_len(v.as_u64() + 1)
            })
            .sum();
        self.engine.state_bits() + sibling_bits
    }

    fn state_fingerprint_renamed(&self, perm: &[u32]) -> Option<u64> {
        let mut h = DefaultHasher::new();
        self.engine.hash_renamed_into(perm, &mut h);
        self.objects.len().hash(&mut h);
        for (obj, siblings) in &self.objects {
            obj.hash(&mut h);
            // Sibling order is dot order, which is not renaming-invariant:
            // re-sort under the renamed dots.
            let mut renamed: Vec<(Dot, Value)> = siblings
                .iter()
                .map(|&(d, v)| (rename_dot(d, perm), v))
                .collect();
            renamed.sort_unstable();
            renamed.hash(&mut h);
        }
        Some(h.finish())
    }

    fn payload_fingerprint_renamed(&self, payload: &Payload, perm: &[u32]) -> Option<u64> {
        self.engine.payload_fingerprint_renamed(payload, perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StoreConfig {
        StoreConfig::new(3, 2)
    }
    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }
    fn spawn(i: u32) -> Box<dyn ReplicaMachine> {
        DvvMvrStore.spawn(r(i), cfg())
    }

    fn relay(from: &mut Box<dyn ReplicaMachine>, to: &mut Box<dyn ReplicaMachine>) {
        let msg = from.pending_message().expect("message pending");
        from.on_send();
        to.on_receive(&msg);
    }

    #[test]
    fn read_own_write() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Write(v(1)));
        let out = a.do_op(x(0), &Op::Read);
        assert_eq!(out.rval, ReturnValue::values([v(1)]));
        assert_eq!(out.visible, vec![Dot::new(r(0), 1)]);
    }

    #[test]
    fn read_before_any_write_is_empty() {
        let mut a = spawn(0);
        let out = a.do_op(x(0), &Op::Read);
        assert_eq!(out.rval, ReturnValue::empty());
        assert!(out.visible.is_empty());
    }

    #[test]
    fn remote_write_visible_after_delivery() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        relay(&mut a, &mut b);
        let out = b.do_op(x(0), &Op::Read);
        assert_eq!(out.rval, ReturnValue::values([v(1)]));
    }

    #[test]
    fn concurrent_writes_become_siblings() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        b.do_op(x(0), &Op::Write(v(2)));
        relay(&mut a, &mut b);
        let out = b.do_op(x(0), &Op::Read);
        assert_eq!(out.rval, ReturnValue::values([v(1), v(2)]));
    }

    #[test]
    fn dominating_write_clears_siblings() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        relay(&mut a, &mut b);
        // b saw v1 and overwrites it.
        b.do_op(x(0), &Op::Write(v(2)));
        relay(&mut b, &mut a);
        let out = a.do_op(x(0), &Op::Read);
        assert_eq!(out.rval, ReturnValue::values([v(2)]));
    }

    #[test]
    fn local_overwrite_replaces() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Write(v(1)));
        a.do_op(x(0), &Op::Write(v(2)));
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(2)]));
    }

    #[test]
    fn objects_are_independent() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Write(v(1)));
        a.do_op(x(1), &Op::Write(v(2)));
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
        assert_eq!(a.do_op(x(1), &Op::Read).rval, ReturnValue::values([v(2)]));
    }

    #[test]
    fn reads_are_invisible() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Write(v(1)));
        let before = a.state_fingerprint();
        a.do_op(x(0), &Op::Read);
        a.do_op(x(1), &Op::Read);
        assert_eq!(a.state_fingerprint(), before);
    }

    #[test]
    fn messages_are_op_driven() {
        let mut a = spawn(0);
        assert!(a.pending_message().is_none(), "initially no pending");
        let mut b = spawn(1);
        b.do_op(x(0), &Op::Write(v(1)));
        let msg = b.pending_message().unwrap();
        b.on_send();
        a.on_receive(&msg);
        assert!(
            a.pending_message().is_none(),
            "receive must not create pending"
        );
    }

    #[test]
    fn pending_message_deterministic() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Write(v(1)));
        assert_eq!(a.pending_message().unwrap(), a.pending_message().unwrap());
    }

    #[test]
    fn duplicate_message_idempotent() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        let msg = a.pending_message().unwrap();
        a.on_send();
        b.on_receive(&msg);
        let fp = b.state_fingerprint();
        b.on_receive(&msg);
        assert_eq!(b.state_fingerprint(), fp);
    }

    #[test]
    fn causal_buffering_hides_dependent_write() {
        // a writes x; b reads it and writes y; c receives b's message first:
        // y must stay invisible until a's message arrives.
        let mut a = spawn(0);
        let mut b = spawn(1);
        let mut c = spawn(2);
        a.do_op(x(0), &Op::Write(v(1)));
        let ma = a.pending_message().unwrap();
        a.on_send();
        b.on_receive(&ma);
        b.do_op(x(1), &Op::Write(v(2)));
        let mb = b.pending_message().unwrap();
        b.on_send();

        c.on_receive(&mb);
        assert_eq!(c.do_op(x(1), &Op::Read).rval, ReturnValue::empty());
        c.on_receive(&ma);
        assert_eq!(c.do_op(x(1), &Op::Read).rval, ReturnValue::values([v(2)]));
        assert_eq!(c.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
    }

    #[test]
    fn batched_outbox_in_one_message() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Write(v(1)));
        a.do_op(x(1), &Op::Write(v(2)));
        let msg = a.pending_message().unwrap();
        a.on_send();
        let mut b = spawn(1);
        b.on_receive(&msg);
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
        assert_eq!(b.do_op(x(1), &Op::Read).rval, ReturnValue::values([v(2)]));
    }

    #[test]
    fn witness_excludes_unseen_dots() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        b.do_op(x(0), &Op::Write(v(2)));
        let out = b.do_op(x(0), &Op::Read);
        assert_eq!(out.visible, vec![Dot::new(r(1), 1)]);
        let _ = a;
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn orset_op_panics() {
        spawn(0).do_op(x(0), &Op::Add(v(1)));
    }

    #[test]
    fn state_bits_grow_with_siblings() {
        let mut a = spawn(0);
        let empty = a.state_bits();
        a.do_op(x(0), &Op::Write(v(1)));
        assert!(a.state_bits() > empty);
    }

    #[test]
    fn factory_name() {
        assert_eq!(DvvMvrStore.name(), "dvv-mvr");
    }
}
