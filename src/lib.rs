//! # haec — Highly-Available Eventually-Consistent data stores, executable
//!
//! A full, executable reproduction of *"Limitations of Highly-Available
//! Eventually-Consistent Data Stores"* (Attiya, Ellen, Morrison — PODC
//! 2015): the replicated-data-store model, the specification framework for
//! objects that expose concurrency, the consistency models (causal, OCC,
//! eventual), real store implementations, and both theorems as runnable
//! constructions.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`model`] — events, executions, happens-before, replica state
//!   machines (paper §2).
//! * [`core`] — abstract executions, object specifications (Figure 1),
//!   correctness/compliance, consistency checkers, the brute-force
//!   explanation search (paper §3, §5.1).
//! * [`stores`] — the DVV multi-valued register store, ORset, LWW, and the
//!   counterexample stores (paper §4, §5.3).
//! * [`sim`] — deterministic cluster simulation, schedulers, fault
//!   injection, convergence checks (paper §2, §4).
//! * [`theory`] — Theorem 6 (no consistency stronger than OCC) and
//!   Theorem 12 (unbounded message size) as executable constructions
//!   (paper §5, §6, Figures 2–4).
//!
//! ## Quickstart
//!
//! ```
//! use haec::prelude::*;
//!
//! // Spin up a 3-replica MVR store and let two replicas write concurrently.
//! let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 1));
//! let x = ObjectId::new(0);
//! sim.do_op(ReplicaId::new(0), x, Op::Write(Value::new(1)));
//! sim.do_op(ReplicaId::new(1), x, Op::Write(Value::new(2)));
//! sim.quiesce();
//! // The multi-valued register exposes the conflict to every replica.
//! let rv = sim.read(ReplicaId::new(2), x);
//! assert_eq!(rv, ReturnValue::values([Value::new(1), Value::new(2)]));
//!
//! // The witness abstract execution is correct and causally consistent.
//! let a = sim.abstract_execution().unwrap();
//! assert!(check_correct(&a, &ObjectSpecs::uniform(SpecKind::Mvr)).is_ok());
//! assert!(causal::check(&a).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use haec_core as core;
pub use haec_model as model;
pub use haec_sim as sim;
pub use haec_stores as stores;
pub use haec_theory as theory;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use haec_core::{
        causal, check_correct, complies, eventual, occ, AbstractExecution,
        AbstractExecutionBuilder, ConsistencyModel, ObjectSpecs, SpecKind,
    };
    pub use haec_model::{
        Dot, Execution, ObjectId, Op, Payload, ReplicaId, ReplicaMachine, ReturnValue, StoreConfig,
        StoreFactory, Value,
    };
    pub use haec_sim::{
        explore, run_schedule, ExplorationConfig, KeyDistribution, Partition, ScheduleConfig,
        Simulator, Workload,
    };
    pub use haec_stores::{
        ArbitrationStore, BoundedStore, CounterStore, DvvMvrStore, KDelayedStore, LwwStore,
        OrSetStore, SequencedStore,
    };
    pub use haec_theory::{
        construct, make_revealing, random_causal, random_occ, roundtrip, GeneratorConfig,
        Thm12Config,
    };
}
