//! The experiment driver: regenerates every figure/theorem of the paper as
//! a table.
//!
//! Usage:
//!   experiments            # run everything
//!   experiments --fig1 --thm12 ...   # selected experiments
//!
//! Flags: --fig1 --figures --thm6 --thm12 --growth --sec53 --lemmas
//!        --space --ablation --sessions --cost --classify

use haec_bench as bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    let mut tables = Vec::new();
    if want("--fig1") {
        tables.push(bench::fig1_spec_table());
    }
    if want("--figures") || want("--fig2") || want("--fig3") {
        tables.push(bench::figures_table());
    }
    if want("--thm6") {
        tables.push(bench::thm6_table(20));
    }
    if want("--thm12") {
        tables.push(bench::thm12_table(6));
    }
    if want("--growth") {
        tables.push(bench::growth_table(3));
    }
    if want("--sec53") {
        tables.push(bench::sec53_table());
    }
    if want("--lemmas") {
        tables.push(bench::lemmas_table(3));
    }
    if want("--space") {
        tables.push(bench::space_table());
        tables.push(bench::space_lower_table());
    }
    if want("--ablation") {
        tables.push(bench::ablation_table());
    }
    if want("--sessions") {
        tables.push(bench::sessions_table(5));
    }
    if want("--cost") {
        tables.push(bench::cost_table(3));
    }
    if want("--classify") {
        tables.push(bench::classify_table(6));
    }
    if tables.is_empty() {
        eprintln!("unknown flags {args:?}; running everything");
        tables = bench::all_experiments();
    }
    for t in tables {
        print!("{}", t.render());
    }
}
