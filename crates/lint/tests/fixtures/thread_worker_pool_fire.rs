//! Firing: a worker pool outside the sanctioned parallel-explorer module.
//! Same source as `thread_worker_pool_clean.rs`, which pins itself (via
//! `//@ lint-path`) to `crates/sim/src/exhaustive/parallel.rs` — the one
//! file where `std::thread` is allowed. Anywhere else, including here,
//! the ambient-entropy gate still fires.

use std::thread;

fn fan_out(jobs: &[fn()]) {
    thread::scope(|scope| {
        for job in jobs {
            scope.spawn(|| job());
        }
    });
    std::thread::yield_now();
}
