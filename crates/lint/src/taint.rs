//! Interprocedural taint analysis over the workspace call graph.
//!
//! Summaries are function-granularity: `taint(f) = gen(f) ∪ ⋃ taint(g)`
//! over every resolved callee `g`, iterated to a fixpoint (the lattice is
//! a 7-bit powerset, so the fixpoint is reached in at most 7·|fns|
//! rounds; in practice 2–3). A function's summary answers "can a value
//! this function computes depend on nondeterministic input?" — the
//! deliberately coarse model from the determinism contract: no
//! per-argument or per-return-value flow, no field sensitivity. What it
//! buys is soundness under the workspace's style (sources are *introduced*
//! by leaf expressions and *consumed* by a handful of well-named sinks)
//! at a cost of over-approximation that the side-channel registry in
//! [`crate::callgraph`] keeps tolerable.
//!
//! For every sink function whose summary is tainted, one diagnostic per
//! lint class is emitted, positioned at the expression (or call edge)
//! inside the sink that lets the taint in, with the full source→sink
//! call path in the message. If the shortest tainted path passes through
//! *another* sink of the same kind, the outer sink stays silent — the
//! flow is reported once, at the sink closest to the source.

use crate::callgraph::{SourceKind, Workspace};
use crate::diag::Diagnostic;

/// Computes the per-function taint summaries to fixpoint.
#[must_use]
pub fn summaries(ws: &Workspace) -> Vec<u8> {
    let mut taint: Vec<u8> = ws.fns.iter().map(|f| f.gen).collect();
    loop {
        let mut changed = false;
        for (i, f) in ws.fns.iter().enumerate() {
            let mut t = taint[i];
            for e in &f.calls {
                t |= taint[e.callee];
            }
            if t != taint[i] {
                taint[i] = t;
                changed = true;
            }
        }
        if !changed {
            return taint;
        }
    }
}

/// BFS from `start` to the nearest function whose `gen` carries `bit`,
/// walking only edges into callees whose summary carries `bit`. Returns
/// the node path `[start, …, generator]`. Deterministic: edges are
/// visited in call-site order.
fn shortest_tainted_path(
    ws: &Workspace,
    taint: &[u8],
    start: usize,
    bit: u8,
) -> Option<Vec<usize>> {
    if ws.fns[start].gen & bit != 0 {
        return Some(vec![start]);
    }
    let mut parent: Vec<Option<usize>> = vec![None; ws.fns.len()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    parent[start] = Some(start);
    while let Some(n) = queue.pop_front() {
        for e in &ws.fns[n].calls {
            let c = e.callee;
            if parent[c].is_some() || taint[c] & bit == 0 {
                continue;
            }
            parent[c] = Some(n);
            if ws.fns[c].gen & bit != 0 {
                let mut path = vec![c];
                let mut cur = c;
                while cur != start {
                    cur = parent[cur].unwrap();
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(c);
        }
    }
    None
}

/// Runs the taint analysis and renders diagnostics, one per
/// (sink function, lint class), positioned inside the sink function.
#[must_use]
pub fn analyze(ws: &Workspace) -> Vec<Diagnostic> {
    let taint = summaries(ws);
    let mut diags = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        let Some(sink) = f.sink else { continue };
        let mut seen_lints: Vec<crate::lints::Lint> = Vec::new();
        for kind in SourceKind::ALL {
            let bit = kind.bit();
            if taint[i] & bit == 0 {
                continue;
            }
            let lint = kind.lint();
            if seen_lints.contains(&lint) {
                continue;
            }
            let Some(path) = shortest_tainted_path(ws, &taint, i, bit) else {
                continue;
            };
            // Report at the sink nearest the source: if an intermediate
            // node (or the generator itself) is a same-kind sink, it owns
            // this flow.
            if path[1..].iter().any(|&n| ws.fns[n].sink == Some(sink)) {
                continue;
            }
            seen_lints.push(lint);

            let generator = &ws.fns[path[path.len() - 1]];
            let site = generator
                .gen_sites
                .iter()
                .find(|s| s.kind == kind)
                .expect("generator carries a site for its gen bit");

            let (line, col, route) = if path.len() == 1 {
                // The sink generates the taint itself: point at the
                // expression.
                (site.line, site.col, String::new())
            } else {
                // Point at the call edge leaving the sink toward the
                // taint.
                let edge = f
                    .calls
                    .iter()
                    .find(|e| e.callee == path[1])
                    .expect("path step is an edge of the sink");
                let mut hops: Vec<String> = Vec::new();
                for &n in &path {
                    let g = &ws.fns[n];
                    hops.push(format!("{} ({}:{})", g.qualified_name(), g.file, g.line));
                }
                (
                    edge.line,
                    edge.col,
                    format!("; path: {}", hops.join(" -> ")),
                )
            };

            let message = format!(
                "{} ({} at {}:{}) flows into {} `{}`{}",
                kind.describe(),
                site.what,
                generator.file,
                site.line,
                sink.describe(),
                f.qualified_name(),
                route,
            );
            diags.push(Diagnostic {
                file: f.file.clone(),
                line,
                col,
                lint,
                message,
                suppressed: false,
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Lint;

    fn run(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::build(&[("crates/core/src/x.rs".to_owned(), src.to_owned())]);
        analyze(&ws)
    }

    #[test]
    fn direct_gen_in_sink_fires() {
        let got = run("use std::time::Instant;\n\
             fn state_fingerprint() -> u64 { Instant::now().elapsed().as_nanos() as u64 }");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lint, Lint::TaintedFingerprint);
        assert_eq!(got[0].line, 2, "points at the Instant expression");
    }

    #[test]
    fn cross_function_flow_fires_with_path() {
        let got = run(
            "fn entropy() -> usize { let v = vec![1u8]; v.as_ptr() as usize }\n\
             fn mix(x: usize) -> u64 { x as u64 }\n\
             fn state_fingerprint() -> u64 { mix(entropy()) }",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].lint, Lint::AddressAsIdentity);
        assert_eq!(got[0].line, 3, "points at the call inside the sink");
        assert!(got[0].message.contains("state_fingerprint"));
        assert!(got[0].message.contains("entropy"), "{}", got[0].message);
        assert!(got[0].message.contains(" -> "), "{}", got[0].message);
    }

    #[test]
    fn clean_pipeline_is_silent() {
        assert!(run("fn stable() -> u64 { 7 }\n\
             fn state_fingerprint() -> u64 { stable() }")
        .is_empty());
    }

    #[test]
    fn inner_sink_owns_the_flow() {
        // outer_fingerprint -> inner_fingerprint -> clock: report once,
        // at the inner sink.
        let got = run("use std::time::Instant;\n\
             fn clock() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
             fn inner_fingerprint() -> u64 { clock() }\n\
             fn outer_fingerprint() -> u64 { inner_fingerprint() }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("`inner_fingerprint`"));
    }

    #[test]
    fn one_diagnostic_per_lint_class_per_sink() {
        // Two tainted-fingerprint sources (clock + env) → one diagnostic.
        let got = run("use std::time::Instant;\n\
             fn clock() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
             fn env_read() -> u64 { std::env::vars().count() as u64 }\n\
             fn state_fingerprint() -> u64 { clock() ^ env_read() }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].lint, Lint::TaintedFingerprint);
    }

    #[test]
    fn distinct_lint_classes_both_fire() {
        let got = run("use std::time::Instant;\n\
             fn clock() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
             fn addr() -> usize { let v = vec![1u8]; v.as_ptr() as usize }\n\
             fn state_fingerprint() -> u64 { clock() ^ addr() as u64 }");
        assert_eq!(got.len(), 2, "{got:?}");
        let lints: Vec<Lint> = got.iter().map(|d| d.lint).collect();
        assert!(lints.contains(&Lint::TaintedFingerprint));
        assert!(lints.contains(&Lint::AddressAsIdentity));
    }

    #[test]
    fn relaxed_atomic_deciding_a_counterexample_fires() {
        let got = run("use std::sync::atomic::{AtomicUsize, Ordering};\n\
             fn claim(next: &AtomicUsize) -> usize { next.fetch_add(1, Ordering::Relaxed) }\n\
             fn explore_units(next: &AtomicUsize) -> usize { claim(next) }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].lint, Lint::RelaxedOrderingDecision);
        assert!(got[0].message.contains("counterexample selection"));
    }

    #[test]
    fn taint_does_not_flow_caller_to_callee() {
        // main reads env then calls the sink with plain data: the sink's
        // own summary is clean (function-granularity models callee
        // returns, not argument values from callers).
        assert!(run("fn to_json() -> u64 { 0 }\n\
             fn main() { let n = std::env::vars().count() as u64; let _ = to_json() + n; }")
        .is_empty());
    }

    #[test]
    fn summaries_reach_fixpoint_on_cycles() {
        let src = "fn a() -> u64 { b() }\n\
                   fn b() -> u64 { a() }\n\
                   fn state_fingerprint() -> u64 { a() }";
        let ws = Workspace::build(&[("crates/core/src/x.rs".to_owned(), src.to_owned())]);
        let t = summaries(&ws);
        assert!(t.iter().all(|&x| x == 0));
        assert!(analyze(&ws).is_empty());
    }
}
