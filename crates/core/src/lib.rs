//! # haec-core
//!
//! The *abstract* side of the PODC'15 framework (Burckhardt et al. style,
//! as used by Attiya, Ellen and Morrison): abstract executions `(H, vis)`,
//! operation contexts, replicated object specifications (Figure 1),
//! correctness and compliance (Definitions 8–10), and the consistency
//! models the paper reasons about — causal consistency (Definition 12),
//! observable causal consistency (Definition 18) and eventual consistency
//! (Definitions 13/14).
//!
//! The crate also provides:
//!
//! * [`witness`] — building a candidate abstract execution from a concrete
//!   execution plus the visibility witnesses an instrumented store reports;
//! * [`search`] — a store-independent brute-force searcher that decides, for
//!   small client observations, whether *any* correct (optionally causally
//!   consistent) abstract execution explains them. This is the ground truth
//!   used to reproduce Figures 2 and 3.
//!
//! ## Example: checking an abstract execution
//!
//! ```
//! use haec_core::{AbstractExecutionBuilder, SpecKind, check_correct, causal};
//! use haec_model::{ReplicaId, ObjectId, Op, Value, ReturnValue};
//!
//! let mut b = AbstractExecutionBuilder::new();
//! let w = b.push(ReplicaId::new(0), ObjectId::new(0),
//!                Op::Write(Value::new(1)), ReturnValue::Ok);
//! let r = b.push(ReplicaId::new(1), ObjectId::new(0),
//!                Op::Read, ReturnValue::values([Value::new(1)]));
//! b.vis(w, r);
//! let a = b.build().unwrap();
//! assert!(haec_core::check_correct(&a, &haec_core::ObjectSpecs::uniform(haec_core::SpecKind::Mvr)).is_ok());
//! assert!(haec_core::causal::check(&a).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abstract_execution;
mod bits;
mod compliance;
pub mod consistency;
mod context;
mod correctness;
pub mod det;
pub mod search;
pub mod spans;
mod specs;
pub mod viz;
pub mod witness;

pub use abstract_execution::{
    AbstractDo, AbstractExecution, AbstractExecutionBuilder, AbstractExecutionError,
};
pub use compliance::{complies, ComplianceError};
pub use consistency::{
    causal, compare_on, eventual, occ, sessions, stream, ConsistencyModel, ModelComparison,
};
pub use context::OperationContext;
pub use correctness::{check_correct, in_specification, CorrectnessViolation, SpecMembershipError};
pub use det::{DetMap, DetSet};
pub use specs::{ObjectSpecs, SpecKind};
