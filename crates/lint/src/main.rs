//! The `haec-lint` binary: lint the workspace, print diagnostics, exit
//! non-zero on any unsuppressed finding.
//!
//! Usage:
//!   haec-lint                # human `file:line:col lint: message` output
//!   haec-lint --json         # one JSON object (obs::json conventions)
//!   haec-lint --root <dir>   # explicit workspace root
//!   haec-lint --list         # print the lint catalog and exit
//!
//! Without `--root` the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` declaring `[workspace]`.

use haec_lint::{lint_workspace, ALL_LINTS};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: haec-lint [--json] [--root <dir>] [--list]");
    std::process::exit(2);
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--list" => {
                for lint in ALL_LINTS {
                    println!("{lint}");
                }
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("haec-lint: no workspace root found (run inside the repo or pass --root)");
        return ExitCode::from(2);
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("haec-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json_string());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
