//! Counterexample stores from the paper's discussions.
//!
//! These stores deliberately break one assumption each, making the
//! necessity arguments of §3.4 and §5.3 executable:
//!
//! * [`KDelayedStore`] — **no invisible reads** (§5.3): a received update is
//!   exposed only after `K` further local operations, so reads mutate
//!   replica state. The store is still causally and eventually consistent,
//!   but it *avoids* causally consistent executions in which a write is
//!   read immediately after delivery — i.e. it satisfies a consistency
//!   model strictly stronger than OCC, which Theorem 6 shows is impossible
//!   with invisible reads.
//! * [`ArbitrationStore`] — **hides concurrency** (§3.4, Perrin et al.): an
//!   MVR interface implemented by a last-writer-wins register. With a
//!   single object clients cannot tell; with several objects the Figure 2
//!   scenario exposes it.
//! * [`SequencedStore`] — **no op-driven messages** (§5.3): replica 0 acts
//!   as a sequencer that creates pending messages *in response to
//!   receives*; updates become visible only once sequenced, giving a
//!   totally ordered (stronger than OCC) view at the price of liveness.
//! * [`BoundedStore`] — **bounded messages** (Theorem 12 ablation): every
//!   message carries a single update and no dependency information, so
//!   messages stay `O(lg k)` bits but causal consistency fails.

use crate::engine::{CausalEngine, Update, UpdateOp};
use crate::lww::LwwStore;
use crate::wire::{width_for, BitReader, BitWriter};
use haec_model::{
    DoOutcome, Dot, ObjectId, Op, Payload, ReplicaId, ReplicaMachine, ReturnValue, StoreConfig,
    StoreFactory, Value,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};

// ---------------------------------------------------------------------------
// KDelayedStore
// ---------------------------------------------------------------------------

/// Factory for the K-delayed-exposure MVR store (§5.3 counterexample).
///
/// Remote updates are applied to a staging area and *exposed* — made
/// readable — only after `k` further local operations. Reads therefore
/// change replica state (they advance the exposure counter), violating
/// Definition 16.
#[derive(Copy, Clone, Debug)]
pub struct KDelayedStore {
    /// Number of local operations before a received update is exposed.
    pub k: u64,
}

impl KDelayedStore {
    /// Creates the factory with exposure delay `k`.
    pub fn new(k: u64) -> Self {
        KDelayedStore { k }
    }
}

impl StoreFactory for KDelayedStore {
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine> {
        Box::new(KDelayedReplica {
            engine: CausalEngine::new(replica, config),
            k: self.k,
            ops_done: 0,
            staged: VecDeque::new(),
            exposed_dots: BTreeSet::new(),
            objects: BTreeMap::new(),
        })
    }

    fn name(&self) -> &str {
        "k-delayed"
    }
}

/// One replica of the K-delayed store.
#[derive(Clone, Debug)]
pub struct KDelayedReplica {
    engine: CausalEngine,
    k: u64,
    ops_done: u64,
    /// Received-but-unexposed updates, FIFO in causal order, with the local
    /// operation count at which each becomes exposed.
    staged: VecDeque<(u64, Update)>,
    exposed_dots: BTreeSet<Dot>,
    objects: BTreeMap<ObjectId, Vec<(Dot, Value)>>,
}

impl KDelayedReplica {
    fn apply_exposed(&mut self, u: &Update) {
        self.exposed_dots.insert(u.dot);
        if let UpdateOp::Write(v) = u.op {
            let siblings = self.objects.entry(u.obj).or_default();
            siblings.retain(|(d, _)| !u.deps.contains(*d));
            siblings.push((u.dot, v));
            siblings.sort_unstable();
        }
    }

    fn tick(&mut self) {
        self.ops_done += 1;
        while let Some(&(when, _)) = self.staged.front() {
            if when >= self.ops_done {
                break;
            }
            let (_, u) = self.staged.pop_front().expect("front exists");
            self.apply_exposed(&u);
        }
    }
}

impl ReplicaMachine for KDelayedReplica {
    fn boxed_clone(&self) -> Box<dyn ReplicaMachine> {
        Box::new(self.clone())
    }

    /// # Panics
    ///
    /// Panics if the operation is not a register operation (write/read).
    fn do_op(&mut self, obj: ObjectId, op: &Op) -> DoOutcome {
        self.tick();
        match op {
            Op::Read => DoOutcome::new(
                ReturnValue::values(
                    self.objects
                        .get(&obj)
                        .into_iter()
                        .flatten()
                        .map(|&(_, v)| v),
                ),
                self.exposed_dots.iter().copied().collect(),
            ),
            Op::Write(v) => {
                let visible: Vec<Dot> = self.exposed_dots.iter().copied().collect();
                let u = self.engine.local_update(obj, UpdateOp::Write(*v));
                // Local updates are exposed immediately; note the engine's
                // dependency vector may cover staged (unexposed) updates,
                // which keeps the protocol causally safe remotely while the
                // local exposure policy stays delayed.
                self.apply_exposed(&u);
                DoOutcome::new(ReturnValue::Ok, visible)
            }
            other => panic!("K-delayed store does not support {other}"),
        }
    }

    fn pending_message(&self) -> Option<Payload> {
        self.engine.pending_message()
    }

    fn on_send(&mut self) {
        self.engine.on_send();
    }

    fn on_receive(&mut self, payload: &Payload) {
        let when = self.ops_done + self.k;
        for u in self.engine.on_receive(payload) {
            self.staged.push_back((when, u));
        }
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.engine.hash_into(&mut h);
        self.ops_done.hash(&mut h);
        self.staged.hash(&mut h);
        self.objects.hash(&mut h);
        h.finish()
    }
}

// ---------------------------------------------------------------------------
// ArbitrationStore
// ---------------------------------------------------------------------------

/// Factory for the arbitration store (§3.4): claims the MVR interface but
/// totally orders all writes via Lamport timestamps (it *is* the LWW store
/// under another name). Reads return at most one value — the concurrency of
/// writes is hidden.
#[derive(Copy, Clone, Default, Debug)]
pub struct ArbitrationStore;

impl StoreFactory for ArbitrationStore {
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine> {
        LwwStore.spawn(replica, config)
    }

    fn name(&self) -> &str {
        "arbitration-mvr"
    }
}

// ---------------------------------------------------------------------------
// SequencedStore
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Announcement {
    dot: Dot,
    obj: ObjectId,
    value: Value,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct LogEntry {
    seqno: u64,
    dot: Dot,
    obj: ObjectId,
    value: Value,
}

/// Factory for the sequencer (GSP-like) store (§5.3 discussion).
///
/// Replica 0 is the sequencer: it receives update announcements, assigns a
/// global order and re-broadcasts sequenced entries. Updates become visible
/// (everywhere, including at their origin) only once sequenced. The store
/// offers a totally ordered — stronger than OCC — view, but:
///
/// * the sequencer creates pending messages in response to *receives*,
///   violating op-driven messages (Definition 15); and
/// * if the sequencer stops flushing, updates never become visible —
///   eventual consistency is forfeited, matching the paper's remark that
///   systems like GSP "weaken their liveness guarantee to satisfy stronger
///   consistency".
#[derive(Copy, Clone, Default, Debug)]
pub struct SequencedStore;

impl StoreFactory for SequencedStore {
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine> {
        Box::new(SequencedReplica {
            replica,
            config,
            next_seq: 0,
            announce_out: Vec::new(),
            sequenced_out: Vec::new(),
            log_len_assigned: 0,
            applied: BTreeMap::new(),
            applied_upto: 0,
            buffer: Vec::new(),
            applied_dots: BTreeSet::new(),
        })
    }

    fn name(&self) -> &str {
        "sequenced"
    }
}

/// One replica of the sequencer store.
#[derive(Clone, Debug)]
pub struct SequencedReplica {
    replica: ReplicaId,
    config: StoreConfig,
    next_seq: u32,
    /// Own announcements not yet broadcast.
    announce_out: Vec<Announcement>,
    /// (Sequencer only) sequenced entries not yet broadcast.
    sequenced_out: Vec<LogEntry>,
    /// (Sequencer only) total entries sequenced so far.
    log_len_assigned: u64,
    /// Register state from the applied log prefix.
    applied: BTreeMap<ObjectId, Value>,
    /// Length of the applied log prefix.
    applied_upto: u64,
    /// Out-of-order sequenced entries.
    buffer: Vec<LogEntry>,
    applied_dots: BTreeSet<Dot>,
}

impl SequencedReplica {
    fn is_sequencer(&self) -> bool {
        self.replica.index() == 0
    }

    fn sequence(&mut self, ann: Announcement) {
        self.log_len_assigned += 1;
        let entry = LogEntry {
            seqno: self.log_len_assigned,
            dot: ann.dot,
            obj: ann.obj,
            value: ann.value,
        };
        self.sequenced_out.push(entry.clone());
        self.buffer.push(entry);
        self.drain();
    }

    fn drain(&mut self) {
        loop {
            let next = self.applied_upto + 1;
            let Some(i) = self.buffer.iter().position(|e| e.seqno == next) else {
                break;
            };
            let e = self.buffer.swap_remove(i);
            self.applied.insert(e.obj, e.value);
            self.applied_dots.insert(e.dot);
            self.applied_upto = next;
        }
    }
}

impl ReplicaMachine for SequencedReplica {
    fn boxed_clone(&self) -> Box<dyn ReplicaMachine> {
        Box::new(self.clone())
    }

    /// # Panics
    ///
    /// Panics if the operation is not a register operation (write/read).
    fn do_op(&mut self, obj: ObjectId, op: &Op) -> DoOutcome {
        match op {
            Op::Read => DoOutcome::new(
                match self.applied.get(&obj) {
                    Some(&v) => ReturnValue::values([v]),
                    None => ReturnValue::empty(),
                },
                self.applied_dots.iter().copied().collect(),
            )
            .with_timestamp(self.applied_upto),
            Op::Write(v) => {
                let visible: Vec<Dot> = self.applied_dots.iter().copied().collect();
                self.next_seq += 1;
                let ann = Announcement {
                    dot: Dot::new(self.replica, self.next_seq),
                    obj,
                    value: *v,
                };
                if self.is_sequencer() {
                    self.sequence(ann);
                } else {
                    self.announce_out.push(ann);
                }
                DoOutcome::new(ReturnValue::Ok, visible)
            }
            other => panic!("sequenced store does not support {other}"),
        }
    }

    fn pending_message(&self) -> Option<Payload> {
        if self.announce_out.is_empty() && self.sequenced_out.is_empty() {
            return None;
        }
        let mut w = BitWriter::new();
        w.write_gamma0(self.announce_out.len() as u64);
        for a in &self.announce_out {
            w.write_bits(
                a.dot.replica.as_u32() as u64,
                width_for(self.config.n_replicas),
            );
            w.write_gamma(a.dot.seq as u64);
            w.write_bits(a.obj.as_u32() as u64, width_for(self.config.n_objects));
            w.write_gamma0(a.value.as_u64());
        }
        w.write_gamma0(self.sequenced_out.len() as u64);
        for e in &self.sequenced_out {
            w.write_gamma(e.seqno);
            w.write_bits(
                e.dot.replica.as_u32() as u64,
                width_for(self.config.n_replicas),
            );
            w.write_gamma(e.dot.seq as u64);
            w.write_bits(e.obj.as_u32() as u64, width_for(self.config.n_objects));
            w.write_gamma0(e.value.as_u64());
        }
        Some(w.finish())
    }

    fn on_send(&mut self) {
        assert!(
            !(self.announce_out.is_empty() && self.sequenced_out.is_empty()),
            "send scheduled with no pending message"
        );
        self.announce_out.clear();
        self.sequenced_out.clear();
    }

    fn on_receive(&mut self, payload: &Payload) {
        let mut r = BitReader::new(payload);
        let Ok(n_ann) = r.read_gamma0() else { return };
        let mut anns = Vec::new();
        for _ in 0..n_ann {
            let (Ok(origin), Ok(seq), Ok(obj), Ok(value)) = (
                r.read_bits(width_for(self.config.n_replicas)),
                r.read_gamma(),
                r.read_bits(width_for(self.config.n_objects)),
                r.read_gamma0(),
            ) else {
                return;
            };
            anns.push(Announcement {
                dot: Dot::new(ReplicaId::new(origin as u32), seq as u32),
                obj: ObjectId::new(obj as u32),
                value: Value::new(value),
            });
        }
        let Ok(n_seq) = r.read_gamma0() else { return };
        for _ in 0..n_seq {
            let (Ok(seqno), Ok(origin), Ok(seq), Ok(obj), Ok(value)) = (
                r.read_gamma(),
                r.read_bits(width_for(self.config.n_replicas)),
                r.read_gamma(),
                r.read_bits(width_for(self.config.n_objects)),
                r.read_gamma0(),
            ) else {
                return;
            };
            let e = LogEntry {
                seqno,
                dot: Dot::new(ReplicaId::new(origin as u32), seq as u32),
                obj: ObjectId::new(obj as u32),
                value: Value::new(value),
            };
            if e.seqno > self.applied_upto && !self.buffer.iter().any(|b| b.seqno == e.seqno) {
                self.buffer.push(e);
            }
        }
        self.drain();
        if self.is_sequencer() {
            // Assigning order to received announcements creates a pending
            // message — the op-driven-messages violation.
            for a in anns {
                if !self.applied_dots.contains(&a.dot)
                    && !self.buffer.iter().any(|b| b.dot == a.dot)
                    && !self.sequenced_out.iter().any(|b| b.dot == a.dot)
                {
                    self.sequence(a);
                }
            }
        }
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.next_seq.hash(&mut h);
        self.announce_out.hash(&mut h);
        self.sequenced_out.hash(&mut h);
        self.log_len_assigned.hash(&mut h);
        self.applied.hash(&mut h);
        self.applied_upto.hash(&mut h);
        self.applied_dots.hash(&mut h);
        let mut buf = self.buffer.clone();
        buf.sort_by_key(|e| e.seqno);
        buf.hash(&mut h);
        h.finish()
    }
}

// ---------------------------------------------------------------------------
// BoundedStore
// ---------------------------------------------------------------------------

/// Factory for the bounded-message store (Theorem 12 ablation).
///
/// Each message carries exactly one update — the replica's most recent —
/// with **no dependency information**: message size stays `O(lg k)` bits
/// regardless of `n` and `s`. The price, as Theorem 12 predicts, is that
/// the store cannot be causally consistent: a dependent write is exposed
/// without its dependency, and older local updates are silently dropped
/// from propagation (breaking eventual consistency for skipped writes).
#[derive(Copy, Clone, Default, Debug)]
pub struct BoundedStore;

impl StoreFactory for BoundedStore {
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine> {
        Box::new(BoundedReplica {
            replica,
            config,
            next_seq: 0,
            latest: None,
            objects: BTreeMap::new(),
            applied_dots: BTreeSet::new(),
        })
    }

    fn name(&self) -> &str {
        "bounded"
    }
}

/// One replica of the bounded-message store.
#[derive(Clone, Debug)]
pub struct BoundedReplica {
    replica: ReplicaId,
    config: StoreConfig,
    next_seq: u32,
    /// The single update pending broadcast (newer local writes overwrite).
    latest: Option<(Dot, ObjectId, Value)>,
    /// Per object: the latest write seen from each origin.
    objects: BTreeMap<ObjectId, BTreeMap<ReplicaId, (u32, Value)>>,
    applied_dots: BTreeSet<Dot>,
}

impl BoundedReplica {
    fn apply(&mut self, dot: Dot, obj: ObjectId, value: Value) {
        let per_origin = self.objects.entry(obj).or_default();
        let entry = per_origin.entry(dot.replica).or_insert((0, value));
        if dot.seq >= entry.0 {
            *entry = (dot.seq, value);
        }
        self.applied_dots.insert(dot);
    }
}

impl ReplicaMachine for BoundedReplica {
    fn boxed_clone(&self) -> Box<dyn ReplicaMachine> {
        Box::new(self.clone())
    }

    /// # Panics
    ///
    /// Panics if the operation is not a register operation (write/read).
    fn do_op(&mut self, obj: ObjectId, op: &Op) -> DoOutcome {
        match op {
            Op::Read => DoOutcome::new(
                ReturnValue::values(
                    self.objects
                        .get(&obj)
                        .into_iter()
                        .flat_map(|m| m.values())
                        .map(|&(_, v)| v),
                ),
                self.applied_dots.iter().copied().collect(),
            ),
            Op::Write(v) => {
                let visible: Vec<Dot> = self.applied_dots.iter().copied().collect();
                self.next_seq += 1;
                let dot = Dot::new(self.replica, self.next_seq);
                // A local write replaces all currently stored entries for
                // the object (it supersedes what this replica saw).
                self.objects.insert(obj, BTreeMap::new());
                self.apply(dot, obj, *v);
                self.latest = Some((dot, obj, *v));
                DoOutcome::new(ReturnValue::Ok, visible)
            }
            other => panic!("bounded store does not support {other}"),
        }
    }

    fn pending_message(&self) -> Option<Payload> {
        let (dot, obj, value) = self.latest.as_ref()?;
        let mut w = BitWriter::new();
        w.write_bits(
            dot.replica.as_u32() as u64,
            width_for(self.config.n_replicas),
        );
        w.write_gamma(dot.seq as u64);
        w.write_bits(obj.as_u32() as u64, width_for(self.config.n_objects));
        w.write_gamma0(value.as_u64());
        Some(w.finish())
    }

    fn on_send(&mut self) {
        assert!(
            self.latest.is_some(),
            "send scheduled with no pending message"
        );
        self.latest = None;
    }

    fn on_receive(&mut self, payload: &Payload) {
        let mut r = BitReader::new(payload);
        let (Ok(origin), Ok(seq), Ok(obj), Ok(value)) = (
            r.read_bits(width_for(self.config.n_replicas)),
            r.read_gamma(),
            r.read_bits(width_for(self.config.n_objects)),
            r.read_gamma0(),
        ) else {
            return;
        };
        self.apply(
            Dot::new(ReplicaId::new(origin as u32), seq as u32),
            ObjectId::new(obj as u32),
            Value::new(value),
        );
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.next_seq.hash(&mut h);
        self.latest.hash(&mut h);
        self.objects.hash(&mut h);
        self.applied_dots.hash(&mut h);
        h.finish()
    }

    fn state_bits(&self) -> usize {
        use crate::wire::gamma_len;
        self.objects
            .values()
            .flat_map(|m| m.values())
            .map(|&(seq, v)| {
                width_for(self.config.n_replicas) as usize
                    + gamma_len(u64::from(seq).max(1))
                    + gamma_len(v.as_u64() + 1)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StoreConfig {
        StoreConfig::new(3, 3)
    }
    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }
    fn relay(from: &mut Box<dyn ReplicaMachine>, to: &mut Box<dyn ReplicaMachine>) {
        let msg = from.pending_message().expect("message pending");
        from.on_send();
        to.on_receive(&msg);
    }

    // --- KDelayedStore ---

    #[test]
    fn k_delayed_reads_are_visible_state_changes() {
        let mut a = KDelayedStore::new(2).spawn(r(0), cfg());
        let fp = a.state_fingerprint();
        a.do_op(x(0), &Op::Read);
        assert_ne!(a.state_fingerprint(), fp, "reads must mutate state");
    }

    #[test]
    fn k_delayed_hides_remote_write_for_k_ops() {
        let mut a = KDelayedStore::new(2).spawn(r(0), cfg());
        let mut b = KDelayedStore::new(2).spawn(r(1), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        relay(&mut a, &mut b);
        // First two reads after delivery: still hidden.
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::empty());
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::empty());
        // Third operation: exposed.
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
    }

    #[test]
    fn k_delayed_k0_behaves_like_mvr() {
        let mut a = KDelayedStore::new(0).spawn(r(0), cfg());
        let mut b = KDelayedStore::new(0).spawn(r(1), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        relay(&mut a, &mut b);
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
    }

    #[test]
    fn k_delayed_local_writes_exposed_immediately() {
        let mut a = KDelayedStore::new(5).spawn(r(0), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
    }

    #[test]
    fn k_delayed_exposure_preserves_causal_order() {
        let mut a = KDelayedStore::new(1).spawn(r(0), cfg());
        let mut b = KDelayedStore::new(1).spawn(r(1), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        a.do_op(x(1), &Op::Write(v(2)));
        relay(&mut a, &mut b);
        // One op exposes both (same message, same exposure point).
        b.do_op(x(2), &Op::Read);
        let out0 = b.do_op(x(0), &Op::Read);
        let out1 = b.do_op(x(1), &Op::Read);
        assert_eq!(out0.rval, ReturnValue::values([v(1)]));
        assert_eq!(out1.rval, ReturnValue::values([v(2)]));
    }

    // --- ArbitrationStore ---

    #[test]
    fn arbitration_returns_single_value_for_concurrent_writes() {
        let mut a = ArbitrationStore.spawn(r(0), cfg());
        let mut b = ArbitrationStore.spawn(r(1), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        b.do_op(x(0), &Op::Write(v(2)));
        relay(&mut a, &mut b);
        relay(&mut b, &mut a);
        let ra = a.do_op(x(0), &Op::Read).rval;
        let rb = b.do_op(x(0), &Op::Read).rval;
        assert_eq!(ra, rb, "replicas converge");
        assert_eq!(ra.as_values().unwrap().len(), 1, "concurrency hidden");
    }

    #[test]
    fn arbitration_name() {
        assert_eq!(ArbitrationStore.name(), "arbitration-mvr");
    }

    // --- SequencedStore ---

    #[test]
    fn sequencer_orders_all_updates() {
        let seq = SequencedStore;
        let mut s = seq.spawn(r(0), cfg());
        let mut a = seq.spawn(r(1), cfg());
        let mut b = seq.spawn(r(2), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        b.do_op(x(0), &Op::Write(v(2)));
        // Announcements reach the sequencer.
        let ma = a.pending_message().unwrap();
        a.on_send();
        let mb = b.pending_message().unwrap();
        b.on_send();
        s.on_receive(&ma);
        s.on_receive(&mb);
        // Sequencer now has a pending message created by receives.
        let ms = s.pending_message().expect("sequencer must flush order");
        s.on_send();
        a.on_receive(&ms);
        b.on_receive(&ms);
        let ra = a.do_op(x(0), &Op::Read).rval;
        let rb = b.do_op(x(0), &Op::Read).rval;
        let rs = s.do_op(x(0), &Op::Read).rval;
        assert_eq!(ra, rb);
        assert_eq!(ra, rs);
        assert_eq!(ra.as_values().unwrap().len(), 1);
    }

    #[test]
    fn sequenced_update_invisible_until_sequenced() {
        let seq = SequencedStore;
        let mut a = seq.spawn(r(1), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        // Even the origin does not see its own unsequenced write.
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::empty());
    }

    #[test]
    fn sequencer_violates_op_driven_messages() {
        let seq = SequencedStore;
        let mut s = seq.spawn(r(0), cfg());
        let mut a = seq.spawn(r(1), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        let ma = a.pending_message().unwrap();
        a.on_send();
        assert!(s.pending_message().is_none());
        s.on_receive(&ma);
        assert!(
            s.pending_message().is_some(),
            "receive created a pending message"
        );
    }

    #[test]
    fn followers_buffer_out_of_order_log_entries() {
        let seq = SequencedStore;
        let mut s = seq.spawn(r(0), cfg());
        let mut a = seq.spawn(r(1), cfg());
        // Sequencer writes twice, flushing between writes -> two messages.
        s.do_op(x(0), &Op::Write(v(1)));
        let m1 = s.pending_message().unwrap();
        s.on_send();
        s.do_op(x(0), &Op::Write(v(2)));
        let m2 = s.pending_message().unwrap();
        s.on_send();
        // Deliver out of order.
        a.on_receive(&m2);
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::empty());
        a.on_receive(&m1);
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(2)]));
    }

    // --- BoundedStore ---

    #[test]
    fn bounded_message_size_independent_of_replica_count() {
        for n in [3usize, 8, 16] {
            let cfg = StoreConfig::new(n, 2);
            let mut a = BoundedStore.spawn(r(0), cfg);
            a.do_op(x(0), &Op::Write(v(5)));
            let bits = a.pending_message().unwrap().bits();
            // Width of replica field grows with lg n only.
            assert!(bits < 32, "bounded message stays small, got {bits}");
        }
    }

    #[test]
    fn bounded_store_drops_old_updates_from_propagation() {
        let mut a = BoundedStore.spawn(r(0), cfg());
        let mut b = BoundedStore.spawn(r(1), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        a.do_op(x(1), &Op::Write(v(2))); // overwrites the pending update
        relay(&mut a, &mut b);
        assert_eq!(b.do_op(x(1), &Op::Read).rval, ReturnValue::values([v(2)]));
        assert_eq!(
            b.do_op(x(0), &Op::Read).rval,
            ReturnValue::empty(),
            "x0's write was never propagated"
        );
    }

    #[test]
    fn bounded_store_violates_causality() {
        // b writes y after seeing a's x; c gets only b's message.
        let mut a = BoundedStore.spawn(r(0), cfg());
        let mut b = BoundedStore.spawn(r(1), cfg());
        let mut c = BoundedStore.spawn(r(2), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        relay(&mut a, &mut b);
        b.do_op(x(1), &Op::Write(v(2)));
        relay(&mut b, &mut c);
        assert_eq!(
            c.do_op(x(1), &Op::Read).rval,
            ReturnValue::values([v(2)]),
            "dependent write exposed without its dependency"
        );
        assert_eq!(c.do_op(x(0), &Op::Read).rval, ReturnValue::empty());
    }

    #[test]
    fn bounded_store_cannot_supersede_remotely() {
        // Without dependency vectors, a's replica cannot learn that b's
        // write superseded its own: the replicas diverge permanently even
        // after full message exchange — the eventual-consistency failure
        // Theorem 12 says bounded messages must eventually cause.
        let mut a = BoundedStore.spawn(r(0), cfg());
        let mut b = BoundedStore.spawn(r(1), cfg());
        a.do_op(x(0), &Op::Write(v(1)));
        relay(&mut a, &mut b);
        b.do_op(x(0), &Op::Write(v(2)));
        relay(&mut b, &mut a);
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(2)]));
        assert_eq!(
            a.do_op(x(0), &Op::Read).rval,
            ReturnValue::values([v(1), v(2)]),
            "a keeps the stale sibling: replicas disagree"
        );
    }
}
