//! Graphviz export for abstract executions.
//!
//! Renders `(H, vis)` as a DOT digraph: one node per event (grouped by
//! replica), one edge per visibility pair. For causally consistent
//! executions the transitive closure is huge, so the export emits the
//! *transitive reduction* by default — the Hasse diagram of `vis` — which
//! is what the paper's figures draw.

use crate::abstract_execution::AbstractExecution;
use haec_model::Relation;
use std::fmt::Write as _;

/// Computes the transitive reduction of an acyclic relation: the minimal
/// relation with the same transitive closure.
#[must_use]
pub fn transitive_reduction(rel: &Relation) -> Relation {
    let closure = rel.transitive_closure();
    let mut out = closure.clone();
    for (i, j) in closure.iter_pairs() {
        // (i, j) is redundant if some intermediate k has i -> k -> j.
        let redundant = closure
            .successors(i)
            .any(|k| k != j && closure.contains(k, j));
        if redundant {
            out.remove(i, j);
        }
    }
    out
}

/// Options for [`to_dot`].
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Emit only the transitive reduction of `vis` (default `true`).
    pub reduce: bool,
    /// Cluster events by replica (default `true`).
    pub cluster_replicas: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            reduce: true,
            cluster_replicas: true,
        }
    }
}

/// Renders an abstract execution as a Graphviz DOT digraph.
///
/// ```
/// use haec_core::{AbstractExecutionBuilder, viz};
/// use haec_model::{ReplicaId, ObjectId, Op, Value, ReturnValue};
/// let mut b = AbstractExecutionBuilder::new();
/// let w = b.push(ReplicaId::new(0), ObjectId::new(0),
///                Op::Write(Value::new(1)), ReturnValue::Ok);
/// let r = b.push(ReplicaId::new(1), ObjectId::new(0),
///                Op::Read, ReturnValue::values([Value::new(1)]));
/// b.vis(w, r);
/// let dot = viz::to_dot(&b.build().unwrap(), &viz::DotOptions::default());
/// assert!(dot.contains("digraph vis"));
/// ```
pub fn to_dot(a: &AbstractExecution, options: &DotOptions) -> String {
    let mut out = String::from("digraph vis {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    let replicas: Vec<u32> = {
        let mut r: Vec<u32> = a.events().iter().map(|e| e.replica.as_u32()).collect();
        r.sort_unstable();
        r.dedup();
        r
    };
    if options.cluster_replicas {
        for &r in &replicas {
            let _ = writeln!(out, "  subgraph cluster_r{r} {{\n    label=\"R{r}\";");
            for (i, e) in a.events().iter().enumerate() {
                if e.replica.as_u32() == r {
                    let _ = writeln!(
                        out,
                        "    e{i} [label=\"{i}: {}({}) -> {}\"];",
                        e.op, e.obj, e.rval
                    );
                }
            }
            out.push_str("  }\n");
        }
    } else {
        for (i, e) in a.events().iter().enumerate() {
            let _ = writeln!(
                out,
                "  e{i} [label=\"{i}@{}: {}({}) -> {}\"];",
                e.replica, e.op, e.obj, e.rval
            );
        }
    }
    let rel = if options.reduce {
        transitive_reduction(a.vis())
    } else {
        a.vis().clone()
    };
    for (i, j) in rel.iter_pairs() {
        let _ = writeln!(out, "  e{i} -> e{j};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_execution::AbstractExecutionBuilder;
    use haec_model::{ObjectId, Op, ReplicaId, ReturnValue, Value};

    fn sample() -> AbstractExecution {
        let mut b = AbstractExecutionBuilder::new();
        let w1 = b.push(
            ReplicaId::new(0),
            ObjectId::new(0),
            Op::Write(Value::new(1)),
            ReturnValue::Ok,
        );
        let w2 = b.push(
            ReplicaId::new(0),
            ObjectId::new(0),
            Op::Write(Value::new(2)),
            ReturnValue::Ok,
        );
        let rd = b.push(
            ReplicaId::new(1),
            ObjectId::new(0),
            Op::Read,
            ReturnValue::values([Value::new(2)]),
        );
        b.vis(w1, rd).vis(w2, rd);
        b.build_transitive().unwrap()
    }

    #[test]
    fn reduction_removes_implied_edges() {
        let a = sample();
        // w1 -> rd is implied by w1 -> w2 -> rd.
        let red = transitive_reduction(a.vis());
        assert!(red.contains(0, 1));
        assert!(red.contains(1, 2));
        assert!(!red.contains(0, 2), "implied edge must be dropped");
        // Reduction preserves the closure.
        assert_eq!(red.transitive_closure(), a.vis().transitive_closure());
    }

    #[test]
    fn dot_contains_nodes_edges_and_clusters() {
        let a = sample();
        let dot = to_dot(&a, &DotOptions::default());
        assert!(dot.contains("digraph vis"));
        assert!(dot.contains("cluster_r0"));
        assert!(dot.contains("cluster_r1"));
        assert!(dot.contains("e1 -> e2;"));
        assert!(!dot.contains("e0 -> e2;"), "reduced edge must be absent");
    }

    #[test]
    fn dot_unreduced_and_unclustered() {
        let a = sample();
        let dot = to_dot(
            &a,
            &DotOptions {
                reduce: false,
                cluster_replicas: false,
            },
        );
        assert!(dot.contains("e0 -> e2;"));
        assert!(!dot.contains("cluster"));
        assert!(dot.contains("0@R0"));
    }

    #[test]
    fn reduction_of_empty_relation() {
        let r = Relation::new(4);
        assert_eq!(transitive_reduction(&r), r);
    }
}
