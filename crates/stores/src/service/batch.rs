//! The update-batch codec: one header plus N updates, with exact bit
//! accounting and fail-closed decoding.
//!
//! A batch payload is `gamma0(count)` followed by `count` update records
//! in the engine's wire encoding — exactly the shape [`CausalEngine`]
//! broadcasts, factored out so the batching layer, the engine and the
//! differential tests all speak one format. The accounting identity is
//! exact and pinned by tests:
//!
//! ```text
//! encode_batch(us).bits() == header_bits(us.len()) + Σ u.encoded_bits()
//! ```
//!
//! so `encoded_bits()` becomes a per-batch amortized cost: the single
//! header is shared by every update it fronts, which is what extends the
//! Theorem 12 message-size measurements to batched regimes.
//!
//! Decoding **fails closed**: a truncated or corrupt batch yields a
//! [`BatchDecodeError`] naming the failing update index and *no* updates
//! — never a silently applied prefix. (The previous engine behaviour
//! buffered each update as it decoded and kept the prefix on error; see
//! `CausalEngine::try_receive` for the repaired delivery path.)
//!
//! [`CausalEngine`]: crate::engine::CausalEngine

use crate::engine::Update;
use crate::wire::{gamma0_len, BitReader, BitWriter};
use haec_model::{Payload, StoreConfig};
use std::fmt;

/// Exact size in bits of the batch header fronting `count` updates.
pub fn header_bits(count: usize) -> usize {
    gamma0_len(count as u64)
}

/// Encodes a batch: `gamma0(count)` then each update in order.
pub fn encode_batch(updates: &[Update], config: StoreConfig) -> Payload {
    let mut w = BitWriter::new();
    w.write_gamma0(updates.len() as u64);
    for u in updates {
        u.encode(&mut w, config);
    }
    w.finish()
}

/// Why a batch failed to decode, and where.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BatchDecodeError {
    /// Index of the update whose record failed to decode; `None` when the
    /// batch header itself (or the batch framing — trailing garbage after
    /// the last record) is at fault.
    pub index: Option<usize>,
    /// Bit offset at which decoding failed.
    pub at_bit: usize,
}

impl fmt::Display for BatchDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "batch update {i} malformed at bit {}", self.at_bit),
            None => write!(f, "batch framing malformed at bit {}", self.at_bit),
        }
    }
}

impl std::error::Error for BatchDecodeError {}

/// Decodes a batch payload, all-or-nothing.
///
/// # Errors
///
/// Fails closed with the failing update index on the first record that
/// does not decode, with `index: None` if the count header is malformed
/// or bits trail the final record. On error no updates are returned — a
/// corrupt batch never yields a usable prefix.
pub fn decode_batch(
    payload: &Payload,
    config: StoreConfig,
) -> Result<Vec<Update>, BatchDecodeError> {
    let mut r = BitReader::new(payload);
    let count = r.read_gamma0().map_err(|e| BatchDecodeError {
        index: None,
        at_bit: e.at_bit,
    })? as usize;
    // A count no bit stream of this length could carry is itself corrupt
    // (and must not drive a huge allocation): every update record is at
    // least one bit.
    if count > r.remaining() {
        return Err(BatchDecodeError {
            index: None,
            at_bit: r.position(),
        });
    }
    let mut updates = Vec::with_capacity(count);
    for i in 0..count {
        let u = Update::decode(&mut r, config).map_err(|e| BatchDecodeError {
            index: Some(i),
            at_bit: e.at_bit,
        })?;
        updates.push(u);
    }
    if r.remaining() != 0 {
        return Err(BatchDecodeError {
            index: None,
            at_bit: r.position(),
        });
    }
    Ok(updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CausalEngine, UpdateOp};
    use haec_model::{Dot, ObjectId, ReplicaId, Value};

    fn cfg() -> StoreConfig {
        StoreConfig::new(3, 4)
    }

    fn sample_updates(n: usize) -> Vec<Update> {
        let mut e = CausalEngine::new(ReplicaId::new(0), cfg());
        (0..n)
            .map(|i| match i % 3 {
                0 => e.local_update(
                    ObjectId::new((i % 4) as u32),
                    UpdateOp::Write(Value::new(i as u64)),
                ),
                1 => e.local_update(ObjectId::new(0), UpdateOp::Add(Value::new(i as u64))),
                _ => e.local_update(
                    ObjectId::new(1),
                    UpdateOp::Remove(Value::new(1), vec![Dot::new(ReplicaId::new(0), 1)]),
                ),
            })
            .collect()
    }

    /// The accounting identity the batching layer is built on: the batch
    /// is exactly one shared header plus the sum of the per-update
    /// encodings, for every batch size including zero.
    #[test]
    fn batch_bits_are_header_plus_sum_of_updates() {
        for n in [0usize, 1, 2, 5, 17] {
            let us = sample_updates(n);
            let p = encode_batch(&us, cfg());
            let expected: usize =
                header_bits(n) + us.iter().map(|u| u.encoded_bits(cfg())).sum::<usize>();
            assert_eq!(p.bits(), expected, "batch of {n}");
        }
    }

    #[test]
    fn roundtrip_clean_batches() {
        for n in [0usize, 1, 3, 9] {
            let us = sample_updates(n);
            let p = encode_batch(&us, cfg());
            assert_eq!(decode_batch(&p, cfg()).unwrap(), us, "batch of {n}");
        }
    }

    /// Fire fixture: truncating anywhere inside update `i` reports index
    /// `i` and returns nothing — never the updates before the cut.
    #[test]
    fn truncated_batch_fails_closed_with_index() {
        let us = sample_updates(4);
        let p = encode_batch(&us, cfg());
        let header = header_bits(4);
        let mut boundaries = vec![header];
        for u in &us {
            boundaries.push(boundaries.last().unwrap() + u.encoded_bits(cfg()));
        }
        // Cut in the middle of each record.
        for (i, pair) in boundaries.windows(2).enumerate() {
            let cut = (pair[0] + pair[1]) / 2;
            let prefix = BitReader::new(&p).read_payload(cut).unwrap();
            let err = decode_batch(&prefix, cfg()).unwrap_err();
            assert_eq!(err.index, Some(i), "cut at bit {cut}");
        }
    }

    /// Fire fixture: flipped bits inside a record must not let a decoded
    /// prefix through either.
    #[test]
    fn corrupt_header_and_trailing_garbage_fail_closed() {
        // Corrupt count header: a run of 64+ zeros is no gamma code.
        let junk = Payload::from_bytes(vec![0u8; 10]);
        let err = decode_batch(&junk, cfg()).unwrap_err();
        assert_eq!(err.index, None);

        // Trailing garbage after a well-formed batch is framing
        // corruption, not a decodable batch.
        let us = sample_updates(2);
        let clean = encode_batch(&us, cfg());
        let mut w = BitWriter::new();
        w.append_payload(&clean);
        w.write_bits(0b1, 1);
        let padded = w.finish();
        let err = decode_batch(&padded, cfg()).unwrap_err();
        assert_eq!(err.index, None);
        assert_eq!(err.at_bit, clean.bits());
    }

    /// A count the payload cannot possibly carry fails fast instead of
    /// allocating for it.
    #[test]
    fn absurd_count_fails_before_allocating() {
        let mut w = BitWriter::new();
        w.write_gamma0(1 << 40);
        let p = w.finish();
        let err = decode_batch(&p, cfg()).unwrap_err();
        assert_eq!(err.index, None);
    }

    /// Clean fixture: the engine's own broadcast decodes to exactly its
    /// outbox.
    #[test]
    fn engine_message_is_a_clean_batch() {
        let mut e = CausalEngine::new(ReplicaId::new(1), cfg());
        e.local_update(ObjectId::new(2), UpdateOp::Inc);
        e.local_update(ObjectId::new(3), UpdateOp::Enable);
        let msg = e.pending_message().unwrap();
        let us = decode_batch(&msg, cfg()).unwrap();
        assert_eq!(us.len(), 2);
        assert_eq!(us[0].op, UpdateOp::Inc);
        assert_eq!(us[1].op, UpdateOp::Enable);
    }
}
