//! Non-firing: the same streaming-checker frontier written the sanctioned
//! way — det wrappers for the live-event set (ascending-key iteration) and
//! lag measured in logical events the feed advances, never the wall clock.

use haec_core::det::DetMap;

struct Frontier {
    live: DetMap<u64, u64>,
    arrived: u64,
}

impl Frontier {
    fn new() -> Self {
        Frontier {
            live: DetMap::new(),
            arrived: 0,
        }
    }

    fn lag_events(&self, issued_at: u64) -> u64 {
        self.arrived.saturating_sub(issued_at)
    }

    fn retire_stable(&mut self, stable_below: u64) -> usize {
        let doomed: Vec<u64> = self
            .live
            .iter()
            .filter(|(_, &cover)| cover < stable_below)
            .map(|(&id, _)| id)
            .collect();
        for id in &doomed {
            self.live.remove(id);
        }
        doomed.len() + self.lag_events(stable_below) as usize
    }
}
