//! Random scheduling of cluster events, with fault injection and
//! partitions.
//!
//! The scheduler draws from the full behaviour space the model permits:
//! client operations, flushes (broadcasts), deliveries in arbitrary order,
//! message drops and duplicates, and temporary network partitions. The
//! paper's *sufficient connectivity* assumption (Definition 3) corresponds
//! to partitions always healing: a schedule ends with the partition lifted,
//! and `quiesce` at the end realizes eventual transmission + delivery.

use crate::simulator::Simulator;
use crate::workload::Workload;
use haec_testkit::Rng;

/// A temporary network partition: while active, copies crossing between the
/// two groups cannot be delivered (they stay in flight — the network delays
/// rather than loses them).
#[derive(Clone, Debug)]
pub struct Partition {
    /// Step at which the partition starts.
    pub from_step: usize,
    /// Step at which it heals.
    pub to_step: usize,
    /// Replicas in the first group (all others form the second).
    pub group: Vec<usize>,
}

impl Partition {
    fn active(&self, step: usize) -> bool {
        (self.from_step..self.to_step).contains(&step)
    }

    fn separates(&self, a: usize, b: usize) -> bool {
        self.group.contains(&a) != self.group.contains(&b)
    }
}

/// How the scheduler picks which in-flight copy to deliver.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum DeliveryPolicy {
    /// Oldest copy first, with `reorder_prob` chance of a random pick.
    #[default]
    MostlyFifo,
    /// Always the oldest deliverable copy (an orderly network).
    Fifo,
    /// Always the *newest* deliverable copy (maximally reordering).
    Lifo,
}

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct ScheduleConfig {
    /// Number of scheduling steps.
    pub steps: usize,
    /// Relative weight of client operations per step.
    pub op_weight: u32,
    /// Relative weight of flush (broadcast) actions.
    pub flush_weight: u32,
    /// Relative weight of delivery actions.
    pub deliver_weight: u32,
    /// Probability that a delivery picks a random copy (reordering) rather
    /// than the oldest. Only used by [`DeliveryPolicy::MostlyFifo`].
    pub reorder_prob: f64,
    /// Delivery-order policy.
    pub delivery: DeliveryPolicy,
    /// Probability of dropping instead of delivering.
    pub drop_prob: f64,
    /// Probability of duplicating a copy before delivering it.
    pub dup_prob: f64,
    /// Optional partition.
    pub partition: Option<Partition>,
    /// Quiesce the cluster after the last step (sufficient connectivity).
    pub quiesce_at_end: bool,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            steps: 200,
            op_weight: 4,
            flush_weight: 3,
            deliver_weight: 5,
            reorder_prob: 0.5,
            delivery: DeliveryPolicy::MostlyFifo,
            drop_prob: 0.05,
            dup_prob: 0.05,
            partition: None,
            quiesce_at_end: true,
        }
    }
}

/// Runs a random schedule of `workload` operations against `sim`.
///
/// Deterministic in `(seed, config, workload)`: the same inputs produce the
/// same execution transcript.
pub fn run_schedule(
    sim: &mut Simulator,
    workload: &mut Workload,
    config: &ScheduleConfig,
    seed: u64,
) {
    let mut rng = Rng::seed_from_u64(seed);
    let total = config.op_weight + config.flush_weight + config.deliver_weight;
    assert!(total > 0, "at least one action must have weight");
    let mut partition_active = false;
    for step in 0..config.steps {
        // Announce partition transitions so faults are part of the record.
        if let Some(p) = &config.partition {
            let active = p.active(step);
            if active != partition_active {
                if active {
                    sim.note_partition_start(&p.group);
                } else {
                    sim.note_partition_heal();
                }
                partition_active = active;
            }
        }
        let roll = rng.gen_range(0..total);
        if roll < config.op_weight {
            let (replica, obj, op) = workload.next_op(&mut rng);
            sim.do_op(replica, obj, op);
        } else if roll < config.op_weight + config.flush_weight {
            let r = workload.sample_replica(&mut rng);
            sim.flush(r);
        } else if !sim.inflight().is_empty() {
            // Choose a deliverable copy, honouring the partition.
            let candidates: Vec<usize> = (0..sim.inflight().len())
                .filter(|&i| {
                    let f = sim.inflight()[i];
                    let sender = sim.execution().message(f.msg).sender;
                    match &config.partition {
                        Some(p) if p.active(step) => !p.separates(sender.index(), f.to.index()),
                        _ => true,
                    }
                })
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let i = match config.delivery {
                DeliveryPolicy::Fifo => candidates[0],
                DeliveryPolicy::Lifo => *candidates.last().expect("non-empty"),
                DeliveryPolicy::MostlyFifo => {
                    if rng.gen_bool(config.reorder_prob) {
                        candidates[rng.gen_range(0..candidates.len())]
                    } else {
                        candidates[0]
                    }
                }
            };
            if rng.gen_bool(config.drop_prob) {
                sim.drop_inflight(i);
            } else {
                if rng.gen_bool(config.dup_prob) {
                    sim.duplicate_inflight(i);
                }
                sim.deliver(i);
            }
        }
    }
    // The schedule is over: a partition still active at the end heals now
    // (sufficient connectivity — partitions delay, they do not last).
    if partition_active {
        sim.note_partition_heal();
    }
    if config.quiesce_at_end {
        sim.quiesce();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::KeyDistribution;
    use haec_core::SpecKind;
    use haec_model::{ObjectId, ReplicaId, StoreConfig};
    use haec_stores::DvvMvrStore;

    fn setup(steps: usize, partition: Option<Partition>) -> (Simulator, Workload, ScheduleConfig) {
        let sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 2));
        let wl = Workload::new(SpecKind::Mvr, 3, 2, 0.4, KeyDistribution::Uniform);
        let cfg = ScheduleConfig {
            steps,
            partition,
            ..ScheduleConfig::default()
        };
        (sim, wl, cfg)
    }

    #[test]
    fn schedule_is_deterministic() {
        let (mut s1, mut w1, cfg) = setup(150, None);
        let (mut s2, mut w2, _) = setup(150, None);
        run_schedule(&mut s1, &mut w1, &cfg, 42);
        run_schedule(&mut s2, &mut w2, &cfg, 42);
        assert_eq!(s1.execution().events(), s2.execution().events());
    }

    #[test]
    fn different_seeds_differ() {
        let (mut s1, mut w1, cfg) = setup(150, None);
        let (mut s2, mut w2, _) = setup(150, None);
        run_schedule(&mut s1, &mut w1, &cfg, 1);
        run_schedule(&mut s2, &mut w2, &cfg, 2);
        assert_ne!(s1.execution().events(), s2.execution().events());
    }

    #[test]
    fn executions_stay_well_formed() {
        for seed in 0..5 {
            let (mut sim, mut wl, cfg) = setup(300, None);
            run_schedule(&mut sim, &mut wl, &cfg, seed);
            assert!(sim.execution().validate().is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn partition_blocks_cross_group_delivery() {
        let partition = Partition {
            from_step: 0,
            to_step: 200,
            group: vec![0],
        };
        let (mut sim, mut wl, mut cfg) = setup(200, Some(partition));
        cfg.quiesce_at_end = false;
        cfg.drop_prob = 0.0;
        run_schedule(&mut sim, &mut wl, &cfg, 7);
        // No receive event may cross the partition during the run.
        for (i, e) in sim.execution().events().iter().enumerate() {
            if let haec_model::EventKind::Receive { msg } = &e.kind {
                let sender = sim.execution().message(*msg).sender;
                let cross = (sender.index() == 0) != (e.replica.index() == 0);
                assert!(!cross, "event {i} crossed the partition");
            }
        }
    }

    #[test]
    fn lifo_policy_reverses_delivery_order() {
        // Two messages from R0; LIFO delivers the newer one first.
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(2, 1));
        let r0 = ReplicaId::new(0);
        sim.do_op(
            r0,
            ObjectId::new(0),
            haec_model::Op::Write(haec_model::Value::new(1)),
        );
        sim.flush(r0);
        sim.do_op(
            r0,
            ObjectId::new(0),
            haec_model::Op::Write(haec_model::Value::new(2)),
        );
        sim.flush(r0);
        let mut wl = Workload::new(SpecKind::Mvr, 2, 1, 1.0, KeyDistribution::Uniform);
        let cfg = ScheduleConfig {
            steps: 8,
            op_weight: 0,
            flush_weight: 0,
            deliver_weight: 1,
            delivery: DeliveryPolicy::Lifo,
            drop_prob: 0.0,
            dup_prob: 0.0,
            quiesce_at_end: false,
            ..ScheduleConfig::default()
        };
        run_schedule(&mut sim, &mut wl, &cfg, 1);
        // Both eventually delivered; receives of m1 precede... LIFO means
        // the copy of the *second* message is delivered first.
        let receives: Vec<usize> = sim
            .execution()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                haec_model::EventKind::Receive { msg } => Some(msg.index()),
                _ => None,
            })
            .collect();
        assert_eq!(receives, vec![1, 0], "LIFO delivers newest first");
        // The causal store buffers the out-of-order update; the final state
        // is still correct.
        assert_eq!(
            sim.read(ReplicaId::new(1), ObjectId::new(0)),
            haec_model::ReturnValue::values([haec_model::Value::new(2)])
        );
    }

    #[test]
    fn quiesce_after_partition_converges() {
        let partition = Partition {
            from_step: 0,
            to_step: 150,
            group: vec![0],
        };
        let (mut sim, mut wl, mut cfg) = setup(150, Some(partition));
        cfg.drop_prob = 0.0; // delays only, per Definition 3
        run_schedule(&mut sim, &mut wl, &cfg, 11);
        // After healing + quiescing, replicas agree on every object.
        for obj in 0..2 {
            let vals: Vec<_> = (0..3)
                .map(|r| sim.read(ReplicaId::new(r), ObjectId::new(obj)))
                .collect();
            assert_eq!(vals[0], vals[1]);
            assert_eq!(vals[1], vals[2]);
        }
    }
}
