//! Store operation latency: do/flush/deliver cycles per store — the cost
//! of high availability in each implementation.

use haec_model::{ObjectId, Op, ReplicaId, StoreConfig, StoreFactory, Value};
use haec_stores::{BoundedStore, DvvMvrStore, LwwStore, OrSetStore};
use haec_testkit::Bench;
use std::hint::black_box;

const OPS: usize = 200;

fn run_cycle(factory: &dyn StoreFactory) -> u64 {
    let config = StoreConfig::new(3, 4);
    let mut machines: Vec<_> = (0..3)
        .map(|i| factory.spawn(ReplicaId::new(i), config))
        .collect();
    let mut acc = 0u64;
    for i in 0..OPS {
        let src = i % 3;
        let obj = ObjectId::new((i % 4) as u32);
        let op = match factory.name() {
            "orset" => {
                if i % 2 == 0 {
                    Op::Add(Value::new((i % 8) as u64))
                } else {
                    Op::Remove(Value::new((i % 8) as u64))
                }
            }
            _ => Op::Write(Value::new(i as u64 + 1)),
        };
        machines[src].do_op(obj, &op);
        if let Some(msg) = machines[src].pending_message() {
            machines[src].on_send();
            for (t, m) in machines.iter_mut().enumerate() {
                if t != src {
                    m.on_receive(&msg);
                }
            }
            acc += msg.bits() as u64;
        }
        let out = machines[(src + 1) % 3].do_op(obj, &Op::Read);
        acc += out.visible.len() as u64;
    }
    acc
}

fn main() {
    let mut bench = Bench::from_args("store_op_cycle");
    let factories: Vec<Box<dyn StoreFactory>> = vec![
        Box::new(DvvMvrStore),
        Box::new(OrSetStore),
        Box::new(LwwStore),
        Box::new(BoundedStore),
    ];
    for factory in factories {
        bench.bench(factory.name(), || black_box(run_cycle(factory.as_ref())));
    }
    bench.finish();
}
