//! Firing: a streaming-checker frontier written the forbidden way — hash
//! maps for the live-event set, wall-clock lag measurement, and unordered
//! iteration when picking retirement candidates. This is the exact shape
//! of code the online checkers must NOT contain.

use std::collections::HashMap;
use std::time::Instant;

struct Frontier {
    live: HashMap<u64, u64>,
    started: Instant,
}

impl Frontier {
    fn new() -> Self {
        Frontier {
            live: HashMap::new(),
            started: Instant::now(),
        }
    }

    fn lag_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    fn retire_stable(&mut self, stable_below: u64) -> usize {
        let doomed: Vec<u64> = self
            .live
            .iter()
            .filter(|(_, &cover)| cover < stable_below)
            .map(|(&id, _)| id)
            .collect();
        for id in &doomed {
            self.live.remove(id);
        }
        doomed.len() + self.lag_secs() as usize
    }
}
