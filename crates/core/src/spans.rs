//! Lightweight span timers around the expensive checker phases.
//!
//! The checkers (`check_correct`, `causal::check`, `occ::check`), witness
//! extraction and the brute-force [`search`](crate::search) dominate the
//! cost of an exploration run. This module lets callers measure that cost
//! breakdown without changing any checker signature: each phase wraps its
//! body in [`timed`], which is a no-op (one thread-local flag read, no
//! clock access) unless a collector is active on the current thread.
//!
//! ```
//! use haec_core::spans;
//!
//! let (value, records) = spans::collect(|| {
//!     spans::timed("phase.demo", || 21 * 2)
//! });
//! assert_eq!(value, 42);
//! assert_eq!(records[0].name, "phase.demo");
//! assert_eq!(records[0].calls, 1);
//! ```
//!
//! Wall-clock durations are inherently nondeterministic; the *call counts*
//! are deterministic in `(seed, config)` and are what regression tests
//! compare. Collection is per-thread and re-entrant collectors simply nest:
//! the innermost active collector receives the records.

use std::cell::RefCell;
use std::time::Instant;

/// Aggregated cost of one named phase.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// Phase name (e.g. `"check.causal"`).
    pub name: &'static str,
    /// Number of times the phase ran while the collector was active.
    pub calls: u64,
    /// Total wall-clock time across all calls, in nanoseconds.
    pub total_ns: u128,
}

thread_local! {
    static COLLECTOR: RefCell<Vec<Vec<SpanRecord>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f`, attributing its wall-clock time to the span `name` in the
/// innermost active collector. Without an active collector this reads one
/// thread-local flag and runs `f` directly — cheap enough to leave in hot
/// checker paths permanently.
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let active = COLLECTOR.with(|c| !c.borrow().is_empty());
    if !active {
        return f();
    }
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed().as_nanos();
    COLLECTOR.with(|c| {
        let mut stack = c.borrow_mut();
        if let Some(records) = stack.last_mut() {
            if let Some(r) = records.iter_mut().find(|r| r.name == name) {
                r.calls += 1;
                r.total_ns += elapsed;
            } else {
                records.push(SpanRecord {
                    name,
                    calls: 1,
                    total_ns: elapsed,
                });
            }
        }
    });
    out
}

/// Runs `f` with a span collector active on this thread and returns its
/// result together with the recorded spans, sorted by name.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    COLLECTOR.with(|c| c.borrow_mut().push(Vec::new()));
    let out = f();
    let mut records = COLLECTOR.with(|c| c.borrow_mut().pop().unwrap_or_default());
    records.sort_by_key(|r| r.name);
    (out, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_collector_is_transparent() {
        assert_eq!(timed("x", || 7), 7);
    }

    #[test]
    fn collects_calls_and_durations() {
        let ((), records) = collect(|| {
            for _ in 0..3 {
                timed("a", || std::hint::black_box(1));
            }
            timed("b", || std::hint::black_box(2));
        });
        assert_eq!(records.len(), 2);
        let a = records.iter().find(|r| r.name == "a").unwrap();
        assert_eq!(a.calls, 3);
        let b = records.iter().find(|r| r.name == "b").unwrap();
        assert_eq!(b.calls, 1);
    }

    #[test]
    fn nested_collectors_do_not_leak() {
        let ((), outer) = collect(|| {
            timed("outer", || ());
            let (_, inner) = collect(|| timed("inner", || ()));
            assert_eq!(inner.len(), 1);
            assert_eq!(inner[0].name, "inner");
        });
        // The inner collector swallowed "inner"; the outer kept "outer".
        assert_eq!(outer.len(), 1);
        assert_eq!(outer[0].name, "outer");
    }

    #[test]
    fn records_sorted_by_name() {
        let ((), records) = collect(|| {
            timed("zeta", || ());
            timed("alpha", || ());
        });
        assert_eq!(records[0].name, "alpha");
        assert_eq!(records[1].name, "zeta");
    }
}
