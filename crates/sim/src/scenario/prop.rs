//! Property-testing over scenario families.
//!
//! [`FamilyGen`] adapts a [`Scenario`] to the testkit's
//! [`Gen`] trait: generation draws a uniform member of the enumerated
//! family, and shrinking walks the family's *subsequence lattice* —
//! every candidate is itself a member (so it still satisfies the
//! family's filters), strictly shorter than the current value, offered
//! shortest-first. The greedy runner therefore converges on a minimal
//! **in-family** witness: never a bare shortened pattern list that the
//! filters would reject.
//!
//! Replay is inherited from the testkit runner: the failure report's
//! `HAEC_PROP_SEED` regenerates the identical member (generation is a
//! pure index draw over the canonical enumeration) and shrinking is
//! deterministic, so the shrunk witness is byte-identical on replay.

use super::{Pat, Scenario};
use haec_testkit::prop::Gen;
use haec_testkit::Rng;

/// A [`Gen`] over the members of one scenario family.
#[derive(Clone, Debug)]
pub struct FamilyGen {
    name: String,
    members: Vec<Vec<Pat>>,
}

impl FamilyGen {
    /// Enumerates `scenario` to `depth` and wraps the members as a
    /// generator.
    ///
    /// # Panics
    ///
    /// Panics if the family is empty at this depth — a generator with
    /// nothing to draw is a test-authoring bug, not a runtime condition.
    pub fn new(name: &str, scenario: &Scenario, depth: usize) -> FamilyGen {
        let members = scenario.iter_to_depth(depth);
        assert!(
            !members.is_empty(),
            "family `{name}` is empty at depth {depth}"
        );
        FamilyGen {
            name: name.to_owned(),
            members,
        }
    }

    /// The family name (used in failure messages by callers).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enumerated members, in canonical order.
    #[must_use]
    pub fn members(&self) -> &[Vec<Pat>] {
        &self.members
    }

    /// Is `member` in the family (at the enumerated depth)?
    #[must_use]
    pub fn contains(&self, member: &[Pat]) -> bool {
        self.members.iter().any(|m| m == member)
    }
}

/// Is `small` a (not necessarily contiguous) subsequence of `big`?
fn is_subsequence(small: &[Pat], big: &[Pat]) -> bool {
    let mut it = big.iter();
    small.iter().all(|p| it.any(|q| q == p))
}

impl Gen for FamilyGen {
    type Value = Vec<Pat>;

    fn generate(&self, rng: &mut Rng) -> Vec<Pat> {
        self.members[rng.gen_range(0..self.members.len())].clone()
    }

    fn shrink(&self, value: &Vec<Pat>) -> Vec<Vec<Pat>> {
        let mut out: Vec<Vec<Pat>> = self
            .members
            .iter()
            .filter(|m| m.len() < value.len() && is_subsequence(m, value))
            .cloned()
            .collect();
        // Shortest first; sort is stable, so ties keep canonical order.
        out.sort_by_key(Vec::len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dup_storm, heal_before_quiesce};
    use haec_core::SpecKind;
    use haec_testkit::prop::{check_with, Config};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn dup_count(m: &[Pat]) -> usize {
        m.iter().filter(|p| **p == Pat::DupOldest).count()
    }

    #[test]
    fn generate_draws_members_deterministically() {
        let gen = FamilyGen::new("dup-storm", &dup_storm(SpecKind::OrSet), 12);
        let mut rng = Rng::seed_from_u64(42);
        for _ in 0..32 {
            assert!(gen.contains(&gen.generate(&mut rng)));
        }
        let a = gen.generate(&mut Rng::seed_from_u64(7));
        let b = gen.generate(&mut Rng::seed_from_u64(7));
        assert_eq!(a, b, "same seed, same member");
    }

    #[test]
    fn shrink_candidates_are_shorter_in_family_subsequences() {
        let gen = FamilyGen::new("hbq", &heal_before_quiesce(SpecKind::Mvr), 12);
        for m in gen.members() {
            for cand in gen.shrink(m) {
                assert!(cand.len() < m.len());
                assert!(gen.contains(&cand), "shrink left the family: {cand:?}");
                assert!(is_subsequence(&cand, m));
            }
        }
        // Shortest candidates come first.
        let longest = gen.members().iter().max_by_key(|m| m.len()).unwrap();
        let cands = gen.shrink(longest);
        assert!(cands.windows(2).all(|w| w[0].len() <= w[1].len()));
    }

    #[test]
    fn greedy_walk_finds_the_minimal_in_family_witness() {
        // Known answer: in dup-storm, "at least 2 duplicates" fails for the
        // 2- and 3-dup members; the minimal in-family witness is exactly
        // the 2-dup member (the 1-dup member passes, so the walk stops).
        let gen = FamilyGen::new("dup-storm", &dup_storm(SpecKind::OrSet), 12);
        let fails = |m: &Vec<Pat>| dup_count(m) >= 2;
        let mut value = gen
            .members()
            .iter()
            .find(|m| dup_count(m) == 3)
            .unwrap()
            .clone();
        assert!(fails(&value));
        'walk: loop {
            for cand in gen.shrink(&value) {
                if fails(&cand) {
                    value = cand;
                    continue 'walk;
                }
            }
            break;
        }
        assert_eq!(dup_count(&value), 2, "minimal witness is the 2-dup member");
        assert!(gen.contains(&value));
    }

    #[test]
    fn runner_integration_shrinks_and_replays_byte_identically() {
        let gen = FamilyGen::new("dup-storm", &dup_storm(SpecKind::OrSet), 12);
        let config = Config {
            cases: 16,
            seed: 0xFA11_5EED,
            max_shrink_steps: 50,
        };
        let run = || {
            catch_unwind(AssertUnwindSafe(|| {
                check_with(&config, "no double dup", &gen, |m| {
                    if dup_count(m) >= 2 {
                        return Err(format!("{} dups", dup_count(m)));
                    }
                    Ok(())
                });
            }))
            .expect_err("property must fail on the 2- and 3-dup members")
        };
        let msg = |e: Box<dyn std::any::Any + Send>| {
            e.downcast_ref::<String>().expect("string panic").clone()
        };
        let first = msg(run());
        assert!(first.contains("HAEC_PROP_SEED="), "{first}");
        assert!(
            first.contains("2 dups"),
            "minimal witness has 2 dups: {first}"
        );
        let second = msg(run());
        assert_eq!(first, second, "replay must be byte-identical");
    }
}
