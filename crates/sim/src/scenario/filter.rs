//! Filter predicates over scenario members, with sound pushdown hooks.
//!
//! A [`ScenarioFilter`] decides membership of a completed member via
//! [`accepts`](ScenarioFilter::accepts). For enumeration pruning it
//! additionally over-approximates *deadness*: [`dead`](ScenarioFilter::dead)
//! may return `true` for a prefix only when **no** extension within the
//! remaining length budget (including the empty extension) can ever be
//! accepted. A sound `dead` lets [`Scenario::iter_to_depth`] skip whole
//! subtrees of the `Seq` accumulation without changing the member set —
//! the pushdown-soundness property test brute-forces this contract.

use super::Pat;

/// A predicate over scenario members. See the module docs for the
/// `accepts`/`dead` contract.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ScenarioFilter {
    /// At least `min` pairs of update operations on the same object from
    /// *different* replicas with no delivery barrier
    /// (`DeliverOldest`/`DeliverNewest`/`Quiesce`) between them — the
    /// shape behind the paper's Theorem 6/12 separations. Monotone:
    /// appending patterns never destroys an existing pair.
    ConcurrentWritePairs {
        /// Minimum number of such pairs.
        min: usize,
    },
    /// At least one partition window opens, and every window heals
    /// before any `Quiesce` runs (no quiescence inside a partition, no
    /// window left open at the end). Not monotone: appending a
    /// `PartitionStart` re-opens a window.
    HealsBeforeQuiesce,
    /// Every replica `0..n_replicas` issues at least `min_ops` client
    /// operations. Monotone.
    ReplicaCoverage {
        /// Cluster size whose replicas must all be covered.
        n_replicas: usize,
        /// Minimum operations per replica.
        min_ops: usize,
    },
    /// Member length is at least the bound. Monotone.
    MinLen(usize),
    /// Member length is at most the bound. Not monotone.
    MaxLen(usize),
    /// At least `min` `DupOldest` patterns. Monotone.
    MinDuplicates(usize),
}

impl ScenarioFilter {
    /// Whether the completed member belongs to the family.
    pub fn accepts(&self, member: &[Pat]) -> bool {
        match self {
            ScenarioFilter::ConcurrentWritePairs { min } => concurrent_write_pairs(member) >= *min,
            ScenarioFilter::HealsBeforeQuiesce => {
                let s = PartitionScan::of(member);
                s.seen_start && !s.quiesce_while_open && !s.open
            }
            ScenarioFilter::ReplicaCoverage {
                n_replicas,
                min_ops,
            } => (0..*n_replicas).all(|r| ops_by(member, r) >= *min_ops),
            ScenarioFilter::MinLen(n) => member.len() >= *n,
            ScenarioFilter::MaxLen(n) => member.len() <= *n,
            ScenarioFilter::MinDuplicates(n) => count_dups(member) >= *n,
        }
    }

    /// Whether `prefix` can never be extended into an accepted member
    /// using at most `remaining` further patterns (the empty extension
    /// included). Must only over-approximate liveness: `false` is always
    /// sound, `true` requires proof.
    pub fn dead(&self, prefix: &[Pat], remaining: usize) -> bool {
        match self {
            ScenarioFilter::ConcurrentWritePairs { min } => {
                // Existing pairs survive any extension; each appended
                // pattern can pair with every update already present and
                // with every other appended pattern.
                let have = concurrent_write_pairs(prefix);
                let updates = prefix
                    .iter()
                    .filter(|p| matches!(p, Pat::Op(_, _, op) if op.is_update()))
                    .count();
                let bound = remaining * updates + remaining.saturating_sub(1) * remaining / 2;
                have + bound < *min
            }
            ScenarioFilter::HealsBeforeQuiesce => {
                let s = PartitionScan::of(prefix);
                if s.quiesce_while_open {
                    return true;
                }
                // Still needed: a start+heal if no window was opened, a
                // heal if one is open.
                let needed = if !s.seen_start {
                    2
                } else if s.open {
                    1
                } else {
                    0
                };
                needed > remaining
            }
            ScenarioFilter::ReplicaCoverage {
                n_replicas,
                min_ops,
            } => {
                let deficit: usize = (0..*n_replicas)
                    .map(|r| min_ops.saturating_sub(ops_by(prefix, r)))
                    .sum();
                deficit > remaining
            }
            ScenarioFilter::MinLen(n) => prefix.len() + remaining < *n,
            ScenarioFilter::MaxLen(n) => prefix.len() > *n,
            ScenarioFilter::MinDuplicates(n) => count_dups(prefix) + remaining < *n,
        }
    }

    /// Whether the predicate is monotone under appending patterns: once
    /// accepted, every extension stays accepted. Monotone filters prune
    /// hardest (a satisfied prefix never needs re-checking); the
    /// enumeration itself only relies on [`dead`](Self::dead).
    pub fn monotone(&self) -> bool {
        match self {
            ScenarioFilter::ConcurrentWritePairs { .. }
            | ScenarioFilter::ReplicaCoverage { .. }
            | ScenarioFilter::MinLen(_)
            | ScenarioFilter::MinDuplicates(_) => true,
            ScenarioFilter::HealsBeforeQuiesce | ScenarioFilter::MaxLen(_) => false,
        }
    }
}

/// Pairs `(i, j)` of update ops on the same object at different replicas
/// with no delivery barrier strictly between them.
fn concurrent_write_pairs(member: &[Pat]) -> usize {
    let mut count = 0;
    for i in 0..member.len() {
        let Pat::Op(ri, xi, opi) = &member[i] else {
            continue;
        };
        if !opi.is_update() {
            continue;
        }
        for j in i + 1..member.len() {
            let Pat::Op(rj, xj, opj) = &member[j] else {
                continue;
            };
            if !opj.is_update() || ri == rj || xi != xj {
                continue;
            }
            let barrier = member[i + 1..j]
                .iter()
                .any(|p| matches!(p, Pat::DeliverOldest | Pat::DeliverNewest | Pat::Quiesce));
            if !barrier {
                count += 1;
            }
        }
    }
    count
}

/// Client operations issued by replica index `r`.
fn ops_by(member: &[Pat], r: usize) -> usize {
    member
        .iter()
        .filter(|p| matches!(p, Pat::Op(replica, _, _) if replica.index() == r))
        .count()
}

fn count_dups(member: &[Pat]) -> usize {
    member
        .iter()
        .filter(|p| matches!(p, Pat::DupOldest))
        .count()
}

/// Partition-window bookkeeping shared by `accepts` and `dead`. Mirrors
/// the runner: `PartitionStart` while a window is open replaces it (the
/// window stays open), `Quiesce` heals before quiescing — which is
/// exactly why `HealsBeforeQuiesce` must reject it.
struct PartitionScan {
    seen_start: bool,
    open: bool,
    quiesce_while_open: bool,
}

impl PartitionScan {
    fn of(member: &[Pat]) -> PartitionScan {
        let mut s = PartitionScan {
            seen_start: false,
            open: false,
            quiesce_while_open: false,
        };
        for p in member {
            match p {
                Pat::PartitionStart(_) => {
                    s.seen_start = true;
                    s.open = true;
                }
                Pat::PartitionHeal => s.open = false,
                Pat::Quiesce if s.open => s.quiesce_while_open = true,
                _ => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_model::{ObjectId, Op, ReplicaId, Value};

    fn w(r: u32, x: u32) -> Pat {
        Pat::Op(
            ReplicaId::new(r),
            ObjectId::new(x),
            Op::Write(Value::new(0)),
        )
    }

    fn read(r: u32) -> Pat {
        Pat::Op(ReplicaId::new(r), ObjectId::new(0), Op::Read)
    }

    #[test]
    fn concurrent_pairs_counted_between_barriers() {
        let cwp = ScenarioFilter::ConcurrentWritePairs { min: 1 };
        assert!(cwp.accepts(&[w(0, 0), w(1, 0)]));
        assert!(!cwp.accepts(&[w(0, 0), w(0, 0)]), "same replica");
        assert!(!cwp.accepts(&[w(0, 0), w(1, 1)]), "different objects");
        assert!(!cwp.accepts(&[w(0, 0), Pat::Quiesce, w(1, 0)]), "barrier");
        assert!(!cwp.accepts(&[w(0, 0), read(1)]), "reads are not writes");
        assert!(
            cwp.accepts(&[w(0, 0), Pat::Flush(ReplicaId::new(0)), w(1, 0)]),
            "flush is not a barrier"
        );
        let two = ScenarioFilter::ConcurrentWritePairs { min: 2 };
        assert!(
            two.accepts(&[w(0, 0), w(1, 0), w(2, 0)]),
            "three writes, three pairs"
        );
    }

    #[test]
    fn heals_before_quiesce_state_machine() {
        let f = ScenarioFilter::HealsBeforeQuiesce;
        let start = Pat::PartitionStart(vec![2]);
        assert!(f.accepts(&[start.clone(), Pat::PartitionHeal, Pat::Quiesce]));
        assert!(!f.accepts(&[Pat::Quiesce]), "no window at all");
        assert!(
            !f.accepts(&[start.clone(), Pat::Quiesce]),
            "quiesce inside window"
        );
        assert!(!f.accepts(&[start.clone()]), "window left open");
        assert!(
            !f.accepts(&[start.clone(), Pat::PartitionHeal, start.clone()]),
            "reopened window left open"
        );
        // Quiesce-while-open is permanently dead; an open window needs
        // one more pattern, a missing window needs two.
        assert!(f.dead(&[start.clone(), Pat::Quiesce], 100));
        assert!(f.dead(&[start.clone()], 0));
        assert!(!f.dead(&[start], 1));
        assert!(f.dead(&[], 1));
        assert!(!f.dead(&[], 2));
    }

    #[test]
    fn replica_coverage_counts_per_replica() {
        let f = ScenarioFilter::ReplicaCoverage {
            n_replicas: 3,
            min_ops: 1,
        };
        assert!(f.accepts(&[w(0, 0), read(1), w(2, 0)]));
        assert!(!f.accepts(&[w(0, 0), w(1, 0)]));
        assert!(f.dead(&[w(0, 0)], 1), "two replicas uncovered, one slot");
        assert!(!f.dead(&[w(0, 0)], 2));
    }

    #[test]
    fn length_and_dup_filters() {
        assert!(ScenarioFilter::MinLen(2).dead(&[w(0, 0)], 0));
        assert!(!ScenarioFilter::MinLen(2).dead(&[w(0, 0)], 1));
        assert!(ScenarioFilter::MaxLen(1).dead(&[w(0, 0), w(1, 0)], 0));
        assert!(ScenarioFilter::MinDuplicates(2).dead(&[Pat::DupOldest], 0));
        assert!(!ScenarioFilter::MinDuplicates(2).dead(&[Pat::DupOldest], 1));
        assert!(ScenarioFilter::MinDuplicates(1).accepts(&[Pat::DupOldest]));
    }

    #[test]
    fn monotonicity_classification() {
        assert!(ScenarioFilter::ConcurrentWritePairs { min: 1 }.monotone());
        assert!(ScenarioFilter::MinLen(1).monotone());
        assert!(ScenarioFilter::MinDuplicates(1).monotone());
        assert!(ScenarioFilter::ReplicaCoverage {
            n_replicas: 2,
            min_ops: 1
        }
        .monotone());
        assert!(!ScenarioFilter::HealsBeforeQuiesce.monotone());
        assert!(!ScenarioFilter::MaxLen(1).monotone());
    }

    /// Brute-force the `dead` soundness contract: whenever `dead(prefix,
    /// remaining)` holds, no extension of length ≤ remaining over a small
    /// pattern alphabet is accepted.
    #[test]
    fn dead_is_a_sound_overapproximation() {
        let alphabet = [
            w(0, 0),
            w(1, 0),
            read(0),
            Pat::DupOldest,
            Pat::PartitionStart(vec![2]),
            Pat::PartitionHeal,
            Pat::Quiesce,
        ];
        let filters = [
            ScenarioFilter::ConcurrentWritePairs { min: 1 },
            ScenarioFilter::HealsBeforeQuiesce,
            ScenarioFilter::ReplicaCoverage {
                n_replicas: 2,
                min_ops: 1,
            },
            ScenarioFilter::MinLen(3),
            ScenarioFilter::MaxLen(2),
            ScenarioFilter::MinDuplicates(1),
        ];
        // All prefixes of length ≤ 2 over the alphabet.
        let mut prefixes: Vec<Vec<Pat>> = vec![Vec::new()];
        for a in &alphabet {
            prefixes.push(vec![a.clone()]);
            for b in &alphabet {
                prefixes.push(vec![a.clone(), b.clone()]);
            }
        }
        // All extensions of length ≤ 2.
        let mut extensions: Vec<Vec<Pat>> = vec![Vec::new()];
        for a in &alphabet {
            extensions.push(vec![a.clone()]);
            for b in &alphabet {
                extensions.push(vec![a.clone(), b.clone()]);
            }
        }
        for f in &filters {
            for prefix in &prefixes {
                for remaining in 0..=2usize {
                    if !f.dead(prefix, remaining) {
                        continue;
                    }
                    for ext in extensions.iter().filter(|e| e.len() <= remaining) {
                        let mut m = prefix.clone();
                        m.extend(ext.iter().cloned());
                        assert!(
                            !f.accepts(&m),
                            "{f:?}: dead({prefix:?}, {remaining}) but accepts({m:?})"
                        );
                    }
                }
            }
        }
    }

    /// Brute-force the monotonicity claims on the same alphabet.
    #[test]
    fn monotone_filters_stay_accepted_under_extension() {
        let alphabet = [w(0, 0), w(1, 0), read(0), Pat::DupOldest, Pat::Quiesce];
        let filters = [
            ScenarioFilter::ConcurrentWritePairs { min: 1 },
            ScenarioFilter::ReplicaCoverage {
                n_replicas: 2,
                min_ops: 1,
            },
            ScenarioFilter::MinLen(2),
            ScenarioFilter::MinDuplicates(1),
        ];
        let mut members: Vec<Vec<Pat>> = vec![Vec::new()];
        for a in &alphabet {
            members.push(vec![a.clone()]);
            for b in &alphabet {
                members.push(vec![a.clone(), b.clone()]);
            }
        }
        for f in &filters {
            assert!(f.monotone());
            for m in &members {
                if !f.accepts(m) {
                    continue;
                }
                for a in &alphabet {
                    let mut ext = m.clone();
                    ext.push(a.clone());
                    assert!(f.accepts(&ext), "{f:?} lost {m:?} + {a:?}");
                }
            }
        }
    }
}
