//! Concrete executions and well-formedness (Definition 1).

use crate::event::{Event, EventKind};
use crate::ids::{MsgId, ObjectId, ReplicaId};
use crate::machine::Payload;
use crate::op::{Op, ReturnValue};
use std::fmt;

/// The payload and provenance of a broadcast message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MessageRecord {
    /// The replica that broadcast the message.
    pub sender: ReplicaId,
    /// Index (into the execution's event sequence) of the `send` event.
    pub send_index: usize,
    /// The message content.
    pub payload: Payload,
}

/// Violations of well-formedness (Definition 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WellFormednessError {
    /// A `receive(m)` event refers to a message never sent.
    UnknownMessage {
        /// Index of the offending receive event.
        event: usize,
        /// The unknown message id.
        msg: MsgId,
    },
    /// A `receive(m)` event occurs before the `send(m)` event.
    ReceiveBeforeSend {
        /// Index of the offending receive event.
        event: usize,
        /// The message id.
        msg: MsgId,
    },
    /// A replica received a message it broadcast itself.
    SelfDelivery {
        /// Index of the offending receive event.
        event: usize,
        /// The message id.
        msg: MsgId,
    },
    /// A replica id is out of range for the execution.
    ReplicaOutOfRange {
        /// Index of the offending event.
        event: usize,
        /// The offending replica.
        replica: ReplicaId,
    },
}

impl fmt::Display for WellFormednessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormednessError::UnknownMessage { event, msg } => {
                write!(f, "event {event}: receive of unknown message {msg}")
            }
            WellFormednessError::ReceiveBeforeSend { event, msg } => {
                write!(
                    f,
                    "event {event}: message {msg} received before it was sent"
                )
            }
            WellFormednessError::SelfDelivery { event, msg } => {
                write!(f, "event {event}: replica received its own message {msg}")
            }
            WellFormednessError::ReplicaOutOfRange { event, replica } => {
                write!(f, "event {event}: replica {replica} out of range")
            }
        }
    }
}

impl std::error::Error for WellFormednessError {}

/// Result alias for well-formedness checks.
pub type WellFormedness = Result<(), WellFormednessError>;

/// A concrete execution: an interleaved sequence of events at `n` replicas,
/// together with the payloads of all broadcast messages.
///
/// `Execution` enforces well-formedness *by construction*: the push methods
/// return an error for a receive that has no matching earlier send at a
/// different replica. Messages may still be dropped (never received),
/// delivered out of order, or delivered multiple times — exactly the network
/// behaviours Definition 1 permits.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Execution {
    n_replicas: usize,
    events: Vec<Event>,
    messages: Vec<MessageRecord>,
}

impl Execution {
    /// Creates an empty execution over `n_replicas` replicas.
    pub fn new(n_replicas: usize) -> Self {
        Execution {
            n_replicas,
            events: Vec::new(),
            messages: Vec::new(),
        }
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events have been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event at the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn event(&self, index: usize) -> &Event {
        &self.events[index]
    }

    /// All message records, indexed by [`MsgId`].
    pub fn messages(&self) -> &[MessageRecord] {
        &self.messages
    }

    /// The record of message `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` was never sent in this execution.
    pub fn message(&self, m: MsgId) -> &MessageRecord {
        &self.messages[m.index()]
    }

    /// Rewinds the transcript to its first `events` events and `messages`
    /// message records. Both sequences are append-only, so truncating them
    /// restores exactly the transcript that existed when those lengths were
    /// recorded — this is the O(dropped-suffix) rewind the incremental
    /// explorer relies on.
    ///
    /// # Panics
    ///
    /// Panics if either count exceeds the current length (a rewind can only
    /// go backwards).
    pub fn truncate(&mut self, events: usize, messages: usize) {
        assert!(
            events <= self.events.len() && messages <= self.messages.len(),
            "truncate target ({events} events, {messages} messages) is ahead of \
             the transcript ({} events, {} messages)",
            self.events.len(),
            self.messages.len()
        );
        self.events.truncate(events);
        self.messages.truncate(messages);
    }

    fn check_replica(&self, replica: ReplicaId) -> WellFormedness {
        if replica.index() >= self.n_replicas {
            return Err(WellFormednessError::ReplicaOutOfRange {
                event: self.events.len(),
                replica,
            });
        }
        Ok(())
    }

    /// Appends a `do` event and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn push_do(
        &mut self,
        replica: ReplicaId,
        obj: ObjectId,
        op: Op,
        rval: ReturnValue,
    ) -> usize {
        self.check_replica(replica)
            .expect("replica out of range for execution");
        self.events.push(Event {
            replica,
            kind: EventKind::Do { obj, op, rval },
        });
        self.events.len() - 1
    }

    /// Appends a `send` event broadcasting `payload` and returns the fresh
    /// [`MsgId`].
    ///
    /// # Errors
    ///
    /// Returns an error if `replica` is out of range.
    pub fn push_send(
        &mut self,
        replica: ReplicaId,
        payload: Payload,
    ) -> Result<MsgId, WellFormednessError> {
        self.check_replica(replica)?;
        let msg = MsgId::new(self.messages.len() as u64);
        self.messages.push(MessageRecord {
            sender: replica,
            send_index: self.events.len(),
            payload,
        });
        self.events.push(Event {
            replica,
            kind: EventKind::Send { msg },
        });
        Ok(msg)
    }

    /// Appends a `receive(m)` event at `replica` and returns its index.
    ///
    /// # Errors
    ///
    /// Returns an error (and appends nothing) if `m` was never sent, or was
    /// sent by `replica` itself — the well-formedness conditions of
    /// Definition 1. (The "received before sent" case cannot arise with this
    /// append-only API; it is reported by [`validate`](Self::validate) for
    /// externally constructed sequences.)
    pub fn push_receive(
        &mut self,
        replica: ReplicaId,
        m: MsgId,
    ) -> Result<usize, WellFormednessError> {
        self.check_replica(replica)?;
        let Some(rec) = self.messages.get(m.index()) else {
            return Err(WellFormednessError::UnknownMessage {
                event: self.events.len(),
                msg: m,
            });
        };
        if rec.sender == replica {
            return Err(WellFormednessError::SelfDelivery {
                event: self.events.len(),
                msg: m,
            });
        }
        self.events.push(Event {
            replica,
            kind: EventKind::Receive { msg: m },
        });
        Ok(self.events.len() - 1)
    }

    /// Re-validates the whole execution against Definition 1.
    ///
    /// Useful for executions assembled by hand or mutated by test harnesses.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> WellFormedness {
        for (i, e) in self.events.iter().enumerate() {
            if e.replica.index() >= self.n_replicas {
                return Err(WellFormednessError::ReplicaOutOfRange {
                    event: i,
                    replica: e.replica,
                });
            }
            if let EventKind::Receive { msg } = &e.kind {
                let Some(rec) = self.messages.get(msg.index()) else {
                    return Err(WellFormednessError::UnknownMessage {
                        event: i,
                        msg: *msg,
                    });
                };
                if rec.send_index >= i {
                    return Err(WellFormednessError::ReceiveBeforeSend {
                        event: i,
                        msg: *msg,
                    });
                }
                if rec.sender == e.replica {
                    return Err(WellFormednessError::SelfDelivery {
                        event: i,
                        msg: *msg,
                    });
                }
            }
            if let EventKind::Send { msg } = &e.kind {
                debug_assert_eq!(self.messages[msg.index()].send_index, i);
            }
        }
        Ok(())
    }

    /// Indices of events at `replica`, in order: the projection `α|_R`.
    pub fn replica_projection(&self, replica: ReplicaId) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.replica == replica)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of `do` events at `replica`, in order: the projection
    /// `α|_R^do` of Definition 9.
    pub fn do_projection(&self, replica: ReplicaId) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.replica == replica && e.is_do())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all `do` events, in execution order.
    pub fn do_events(&self) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_do())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of receive events for message `m`, in order.
    pub fn receivers_of(&self, m: MsgId) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, EventKind::Receive { msg } if msg == m))
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the execution as a per-line event trace.
    pub fn trace(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(&format!("{i:4}  {e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Value;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn build_simple_execution() {
        let mut ex = Execution::new(2);
        let w = ex.push_do(r(0), x(0), Op::Write(Value::new(1)), ReturnValue::Ok);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![1])).unwrap();
        let rcv = ex.push_receive(r(1), m).unwrap();
        let rd = ex.push_do(r(1), x(0), Op::Read, ReturnValue::values([Value::new(1)]));
        assert_eq!(ex.len(), 4);
        assert_eq!((w, rcv, rd), (0, 2, 3));
        assert!(ex.validate().is_ok());
        assert_eq!(ex.message(m).sender, r(0));
        assert_eq!(ex.message(m).send_index, 1);
    }

    #[test]
    fn receive_unknown_message_rejected() {
        let mut ex = Execution::new(2);
        let err = ex.push_receive(r(1), MsgId::new(0)).unwrap_err();
        assert!(matches!(err, WellFormednessError::UnknownMessage { .. }));
        assert!(ex.is_empty());
    }

    #[test]
    fn self_delivery_rejected() {
        let mut ex = Execution::new(2);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![])).unwrap();
        let err = ex.push_receive(r(0), m).unwrap_err();
        assert!(matches!(err, WellFormednessError::SelfDelivery { .. }));
        // The send is still there; the receive was not appended.
        assert_eq!(ex.len(), 1);
    }

    #[test]
    fn duplicate_delivery_is_well_formed() {
        let mut ex = Execution::new(3);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![9])).unwrap();
        ex.push_receive(r(1), m).unwrap();
        ex.push_receive(r(1), m).unwrap();
        ex.push_receive(r(2), m).unwrap();
        assert!(ex.validate().is_ok());
        assert_eq!(ex.receivers_of(m).len(), 3);
    }

    #[test]
    fn dropped_message_is_well_formed() {
        let mut ex = Execution::new(2);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![9])).unwrap();
        assert!(ex.validate().is_ok());
        assert!(ex.receivers_of(m).is_empty());
    }

    #[test]
    fn projections() {
        let mut ex = Execution::new(2);
        ex.push_do(r(0), x(0), Op::Write(Value::new(1)), ReturnValue::Ok);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![])).unwrap();
        ex.push_receive(r(1), m).unwrap();
        ex.push_do(r(1), x(0), Op::Read, ReturnValue::empty());
        assert_eq!(ex.replica_projection(r(0)), vec![0, 1]);
        assert_eq!(ex.replica_projection(r(1)), vec![2, 3]);
        assert_eq!(ex.do_projection(r(0)), vec![0]);
        assert_eq!(ex.do_projection(r(1)), vec![3]);
        assert_eq!(ex.do_events(), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn do_on_unknown_replica_panics() {
        let mut ex = Execution::new(1);
        ex.push_do(r(5), x(0), Op::Read, ReturnValue::empty());
    }

    #[test]
    fn send_on_unknown_replica_errors() {
        let mut ex = Execution::new(1);
        assert!(ex.push_send(r(3), Payload::from_bytes(vec![])).is_err());
    }

    #[test]
    fn trace_contains_events() {
        let mut ex = Execution::new(1);
        ex.push_do(r(0), x(0), Op::Read, ReturnValue::empty());
        let t = ex.trace();
        assert!(t.contains("do_R0(x0, read) -> {}"));
    }

    #[test]
    fn validate_catches_tampered_receive_order() {
        // Assemble a structurally broken execution by hand via clone+swap.
        let mut ex = Execution::new(2);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![])).unwrap();
        ex.push_receive(r(1), m).unwrap();
        // Swap events so the receive precedes the send.
        let mut broken = ex.clone();
        broken.events.swap(0, 1);
        // send_index in the message record still points at 0, so the receive
        // at index 0 now precedes it.
        broken.messages[0].send_index = 1;
        let err = broken.validate().unwrap_err();
        assert!(matches!(err, WellFormednessError::ReceiveBeforeSend { .. }));
    }

    #[test]
    fn error_display() {
        let e = WellFormednessError::UnknownMessage {
            event: 3,
            msg: MsgId::new(7),
        };
        assert_eq!(e.to_string(), "event 3: receive of unknown message m7");
    }
}
