//! # haec-stores
//!
//! Concrete replicated data stores inhabiting the PODC'15 model
//! (`haec-model`), plus the machinery they share:
//!
//! * [`DvvMvrStore`] — the reference *write-propagating* store: a
//!   Dynamo-style, causally and eventually consistent multi-valued register
//!   store on dotted version vectors. Both theorem constructions in
//!   `haec-theory` run against it.
//! * [`OrSetStore`] / [`CounterStore`] — observed-remove set (Figure 1(c))
//!   and an op-based counter on the same causal engine.
//! * [`LwwStore`] — last-writer-wins registers via Lamport clocks:
//!   eventually but *not* causally consistent.
//! * Counterexample stores ([`KDelayedStore`], [`ArbitrationStore`],
//!   [`SequencedStore`], [`BoundedStore`]) that each break one assumption
//!   of the theorems, making the paper's necessity discussions executable.
//! * [`wire`] — a bit-exact wire format (Elias gamma codes) so message
//!   sizes can be measured in bits, as Theorem 12 requires.
//! * [`properties`] — dynamic checkers for invisible reads (Definition 16),
//!   op-driven messages (Definition 15), send determinism and
//!   pending-after-send.
//!
//! ## Example
//!
//! ```
//! use haec_stores::DvvMvrStore;
//! use haec_model::{StoreFactory, StoreConfig, ReplicaId, ObjectId, Op, Value, ReturnValue};
//!
//! let config = StoreConfig::new(2, 1);
//! let mut a = DvvMvrStore.spawn(ReplicaId::new(0), config);
//! let mut b = DvvMvrStore.spawn(ReplicaId::new(1), config);
//! a.do_op(ObjectId::new(0), &Op::Write(Value::new(1)));
//! b.do_op(ObjectId::new(0), &Op::Write(Value::new(2)));
//! // Exchange messages: the concurrent writes become siblings.
//! let ma = a.pending_message().unwrap();
//! a.on_send();
//! b.on_receive(&ma);
//! let out = b.do_op(ObjectId::new(0), &Op::Read);
//! assert_eq!(out.rval, ReturnValue::values([Value::new(1), Value::new(2)]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffered;
mod causal_reg;
pub mod conformance;
mod counterexamples;
pub mod engine;
mod flag;
mod lww;
mod mixed;
mod mvr;
mod orset;
pub mod properties;
pub mod service;
pub mod vv;
pub mod wire;

pub use buffered::CopsStore;
pub use causal_reg::CausalRegisterStore;
pub use conformance::{conformance_matrix, Conformance};
pub use counterexamples::{ArbitrationStore, BoundedStore, KDelayedStore, SequencedStore};
pub use flag::EwFlagStore;
pub use lww::LwwStore;
pub use mixed::MixedStore;
pub use mvr::DvvMvrStore;
pub use orset::{CounterStore, OrSetStore};

use haec_model::StoreFactory;

/// All store factories, for sweeping tests and experiments.
pub fn all_factories() -> Vec<Box<dyn StoreFactory>> {
    vec![
        Box::new(DvvMvrStore),
        Box::new(CopsStore),
        Box::new(CausalRegisterStore),
        Box::new(OrSetStore),
        Box::new(CounterStore),
        Box::new(EwFlagStore),
        Box::new(LwwStore),
        Box::new(KDelayedStore::new(2)),
        Box::new(ArbitrationStore),
        Box::new(SequencedStore),
        Box::new(BoundedStore),
    ]
}

/// The factories expected to be *write-propagating* (invisible reads +
/// op-driven messages); the property tests assert this dynamically.
pub fn write_propagating_factories() -> Vec<Box<dyn StoreFactory>> {
    vec![
        Box::new(DvvMvrStore),
        Box::new(CopsStore),
        Box::new(CausalRegisterStore),
        Box::new(OrSetStore),
        Box::new(CounterStore),
        Box::new(EwFlagStore),
        Box::new(LwwStore),
        Box::new(ArbitrationStore),
        Box::new(BoundedStore),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_lists_are_nonempty_and_named() {
        let all = all_factories();
        assert!(all.len() >= 10);
        let names: Vec<&str> = all.iter().map(|f| f.name()).collect();
        assert!(names.contains(&"dvv-mvr"));
        assert!(names.contains(&"sequenced"));
        for f in &write_propagating_factories() {
            assert!(!f.name().is_empty());
        }
    }
}
