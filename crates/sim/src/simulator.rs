//! The deterministic replica-cluster simulator.
//!
//! A [`Simulator`] owns one [`ReplicaMachine`] per replica, the multiset of
//! in-flight message copies, and a faithful [`Execution`] record of every
//! `do`/`send`/`receive` event. All network behaviours the model permits —
//! dropping, duplicating, reordering, selective delivery — are explicit
//! simulator operations, so an execution is an exact transcript of the
//! scheduler's choices.

use crate::obs::{DoEvent, FaultEvent, Observer, Observers, ReceiveEvent, SendEvent};
use haec_core::witness::{
    abstract_from_witness, abstract_from_witness_ordered, DoWitness, WitnessError,
};
use haec_core::AbstractExecution;
use haec_model::{
    Dot, Execution, MsgId, ObjectId, Op, ReplicaId, ReplicaMachine, ReturnValue, StoreConfig,
    StoreFactory,
};

/// One deliverable copy of a broadcast message.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct InFlight {
    /// The message.
    pub msg: MsgId,
    /// The replica this copy is addressed to.
    pub to: ReplicaId,
}

/// A network fault or partition transition, positioned by the number of
/// execution events recorded before it happened. Faults are invisible in
/// the [`Execution`] itself (a dropped copy simply never produces a
/// `receive`), so the simulator records them on the side — this is what
/// lets [`trace`](crate::trace) round-trip full schedules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultRecord {
    /// Number of execution events recorded before the fault.
    pub at_event: usize,
    /// What happened.
    pub kind: FaultKind,
}

/// The kinds of recorded faults.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The in-flight copy of `msg` addressed to `to` was dropped.
    Drop {
        /// The message.
        msg: MsgId,
        /// The addressee of the dropped copy.
        to: ReplicaId,
    },
    /// The in-flight copy of `msg` addressed to `to` was duplicated.
    Duplicate {
        /// The message.
        msg: MsgId,
        /// The addressee of the duplicated copy.
        to: ReplicaId,
    },
    /// A partition separating `group` from the other replicas activated.
    PartitionStart {
        /// Replicas in the first group.
        group: Vec<usize>,
    },
    /// The active partition healed.
    PartitionHeal,
}

/// A saved copy of the complete dynamic state of a [`Simulator`]:
/// replica machines, execution transcript, witnesses, in-flight copies,
/// dot counters, and the fault record. Static parts (store configuration,
/// name) and attached observers are *not* captured — restoring rewinds the
/// run, not the instrumentation.
///
/// Created by [`Simulator::snapshot`]; applied by [`Simulator::restore`].
/// A snapshot can be restored any number of times.
pub struct SimSnapshot {
    machines: Vec<Box<dyn ReplicaMachine>>,
    execution: Execution,
    witnesses: Vec<DoWitness>,
    timestamps: Vec<Option<u64>>,
    inflight: Vec<InFlight>,
    update_seq: Vec<u32>,
    faults: Vec<FaultRecord>,
    peak_state_bits: usize,
}

impl std::fmt::Debug for SimSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSnapshot")
            .field("events", &self.execution.len())
            .field("inflight", &self.inflight.len())
            .finish()
    }
}

/// A lightweight checkpoint for *forward-only* rewinds: replica machines and
/// the (mutable) in-flight list are copied, while the append-only transcript
/// state — events, messages, witnesses, timestamps, faults — is recorded by
/// length alone and rewound by truncation.
///
/// This makes [`Simulator::rewind`] cost O(state + appended suffix) instead
/// of the O(entire history) of [`Simulator::restore`], which is what lets
/// the incremental explorer pop a search node in near-constant time. The
/// contract is narrower than [`SimSnapshot`]'s: a checkpoint may only be
/// rewound to from states reached by *advancing* the same simulator (the
/// transcript must still have the checkpointed prefix).
pub struct SimCheckpoint {
    machines: Vec<Box<dyn ReplicaMachine>>,
    events_len: usize,
    messages_len: usize,
    witnesses_len: usize,
    inflight: Vec<InFlight>,
    update_seq: Vec<u32>,
    faults_len: usize,
    peak_state_bits: usize,
}

impl std::fmt::Debug for SimCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCheckpoint")
            .field("events", &self.events_len)
            .field("inflight", &self.inflight.len())
            .finish()
    }
}

/// Undo record for a *single* simulator transition that touches one
/// replica's machine, captured by [`Simulator::begin_step`] and applied by
/// [`Simulator::undo_step`]. Strictly cheaper than [`SimCheckpoint`]: only
/// the affected machine is cloned up front, and undoing moves it back into
/// place without cloning at all. The in-flight list is copied only when the
/// caller declares the transition may mutate it.
pub struct StepUndo {
    replica: ReplicaId,
    machine: Box<dyn ReplicaMachine>,
    update_seq: u32,
    inflight: Option<Vec<InFlight>>,
    events_len: usize,
    messages_len: usize,
    witnesses_len: usize,
    faults_len: usize,
    peak_state_bits: usize,
}

impl std::fmt::Debug for StepUndo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepUndo")
            .field("replica", &self.replica)
            .field("events", &self.events_len)
            .finish()
    }
}

/// A cluster of replicas under simulation.
pub struct Simulator {
    config: StoreConfig,
    store_name: String,
    machines: Vec<Box<dyn ReplicaMachine>>,
    execution: Execution,
    witnesses: Vec<DoWitness>,
    /// Arbitration timestamps reported by the store, per do event.
    timestamps: Vec<Option<u64>>,
    inflight: Vec<InFlight>,
    /// 1-based update counts per replica, for assigning dots to updates.
    update_seq: Vec<u32>,
    faults: Vec<FaultRecord>,
    peak_state_bits: usize,
    obs: Observers,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("store", &self.store_name)
            .field("config", &self.config)
            .field("events", &self.execution.len())
            .field("inflight", &self.inflight.len())
            .field("faults", &self.faults.len())
            .field("observers", &self.obs.len())
            .finish()
    }
}

impl Simulator {
    /// Spawns a fresh cluster of `config.n_replicas` replicas of the store.
    pub fn new(factory: &dyn StoreFactory, config: StoreConfig) -> Self {
        let machines = (0..config.n_replicas)
            .map(|i| factory.spawn(ReplicaId::new(i as u32), config))
            .collect();
        Simulator {
            config,
            store_name: factory.name().to_owned(),
            machines,
            execution: Execution::new(config.n_replicas),
            witnesses: Vec::new(),
            timestamps: Vec::new(),
            inflight: Vec::new(),
            update_seq: vec![0; config.n_replicas],
            faults: Vec::new(),
            peak_state_bits: 0,
            obs: Observers::new(),
        }
    }

    /// Spawns a cluster and immediately rewinds it to `snap`. This is the
    /// clone-into-thread path used by the parallel explorer: a
    /// [`SimSnapshot`] is `Send` (machines are plain data behind
    /// [`ReplicaMachine::boxed_clone`]), so a worker can rebuild the shared
    /// prefix state locally without the originating [`Simulator`] — which
    /// owns non-`Send` observers — ever crossing a thread boundary.
    ///
    /// The snapshot must come from a simulator with the same store and
    /// configuration, as with [`restore`](Self::restore).
    pub fn from_snapshot(
        factory: &dyn StoreFactory,
        config: StoreConfig,
        snap: &SimSnapshot,
    ) -> Self {
        let mut sim = Simulator::new(factory, config);
        sim.restore(snap);
        sim
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Captures the complete dynamic state of the cluster: every replica
    /// machine (via [`ReplicaMachine::boxed_clone`]), the execution
    /// transcript, the visibility witnesses and arbitration timestamps, the
    /// in-flight message copies, the per-replica dot counters, and the
    /// fault record. Observers are not captured.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            machines: self.machines.iter().map(|m| m.boxed_clone()).collect(),
            execution: self.execution.clone(),
            witnesses: self.witnesses.clone(),
            timestamps: self.timestamps.clone(),
            inflight: self.inflight.clone(),
            update_seq: self.update_seq.clone(),
            faults: self.faults.clone(),
            peak_state_bits: self.peak_state_bits,
        }
    }

    /// Rewinds the cluster to a previously captured [`SimSnapshot`]. The
    /// snapshot is not consumed and can be restored again. Attached
    /// observers keep accumulating across restores (they witness the
    /// *search*, not a single linear run).
    ///
    /// The snapshot must come from this simulator (or one with the same
    /// store and configuration); restoring a foreign snapshot would splice
    /// unrelated state.
    pub fn restore(&mut self, snap: &SimSnapshot) {
        self.machines = snap.machines.iter().map(|m| m.boxed_clone()).collect();
        self.execution = snap.execution.clone();
        self.witnesses = snap.witnesses.clone();
        self.timestamps = snap.timestamps.clone();
        self.inflight = snap.inflight.clone();
        self.update_seq = snap.update_seq.clone();
        self.faults = snap.faults.clone();
        self.peak_state_bits = snap.peak_state_bits;
    }

    /// Captures a lightweight [`SimCheckpoint`]: machines and in-flight
    /// copies by value, the append-only transcript by length. See
    /// [`SimCheckpoint`] for the narrower rewind contract.
    pub fn checkpoint(&self) -> SimCheckpoint {
        debug_assert_eq!(self.witnesses.len(), self.timestamps.len());
        SimCheckpoint {
            machines: self.machines.iter().map(|m| m.boxed_clone()).collect(),
            events_len: self.execution.len(),
            messages_len: self.execution.messages().len(),
            witnesses_len: self.witnesses.len(),
            inflight: self.inflight.clone(),
            update_seq: self.update_seq.clone(),
            faults_len: self.faults.len(),
            peak_state_bits: self.peak_state_bits,
        }
    }

    /// Rewinds to a [`SimCheckpoint`] taken earlier on this simulator by
    /// truncating the append-only transcript and restoring machines and
    /// in-flight copies. The checkpoint is not consumed.
    ///
    /// # Panics
    ///
    /// Panics if the transcript is shorter than at checkpoint time — i.e.
    /// the simulator was not advanced (or already rewound past the
    /// checkpoint) since [`checkpoint`](Self::checkpoint).
    pub fn rewind(&mut self, cp: &SimCheckpoint) {
        self.machines = cp.machines.iter().map(|m| m.boxed_clone()).collect();
        self.execution.truncate(cp.events_len, cp.messages_len);
        self.witnesses.truncate(cp.witnesses_len);
        self.timestamps.truncate(cp.witnesses_len);
        self.inflight.clear();
        self.inflight.extend_from_slice(&cp.inflight);
        self.update_seq.copy_from_slice(&cp.update_seq);
        self.faults.truncate(cp.faults_len);
        self.peak_state_bits = cp.peak_state_bits;
    }

    /// Captures undo information for one upcoming transition that will
    /// touch only `replica`'s machine: a client operation there, a flush of
    /// its pending message, or a delivery addressed to it. Cheaper than
    /// [`checkpoint`](Self::checkpoint): only the one affected machine is
    /// cloned, and [`undo_step`](Self::undo_step) *moves* it back without
    /// cloning again. `save_inflight` must be `true` when the transition
    /// may alter the in-flight list (flush, deliver, faults).
    pub fn begin_step(&self, replica: ReplicaId, save_inflight: bool) -> StepUndo {
        debug_assert_eq!(self.witnesses.len(), self.timestamps.len());
        StepUndo {
            replica,
            machine: self.machines[replica.index()].boxed_clone(),
            update_seq: self.update_seq[replica.index()],
            inflight: if save_inflight {
                Some(self.inflight.clone())
            } else {
                None
            },
            events_len: self.execution.len(),
            messages_len: self.execution.messages().len(),
            witnesses_len: self.witnesses.len(),
            faults_len: self.faults.len(),
            peak_state_bits: self.peak_state_bits,
        }
    }

    /// Reverts the single transition recorded by
    /// [`begin_step`](Self::begin_step), consuming the undo record. The
    /// transition must have touched only the recorded replica's machine
    /// (and, if `save_inflight` was set, the in-flight list).
    ///
    /// # Panics
    ///
    /// Panics if the transcript is shorter than when the undo was captured.
    pub fn undo_step(&mut self, undo: StepUndo) {
        let r = undo.replica.index();
        self.machines[r] = undo.machine;
        self.update_seq[r] = undo.update_seq;
        if let Some(inflight) = undo.inflight {
            self.inflight = inflight;
        }
        self.execution.truncate(undo.events_len, undo.messages_len);
        self.witnesses.truncate(undo.witnesses_len);
        self.timestamps.truncate(undo.witnesses_len);
        self.faults.truncate(undo.faults_len);
        self.peak_state_bits = undo.peak_state_bits;
    }

    /// The store's name.
    pub fn store_name(&self) -> &str {
        &self.store_name
    }

    /// Attaches an [`Observer`] that will be notified of every subsequent
    /// simulator event. Observers are passive: they cannot influence the
    /// run, and the recorded execution is identical with or without them.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.obs.attach(observer);
    }

    /// The total encoded state size across all replicas, in bits.
    pub fn total_state_bits(&self) -> usize {
        self.machines.iter().map(|m| m.state_bits()).sum()
    }

    /// The largest [`total_state_bits`](Self::total_state_bits) sampled
    /// after any mutating event so far.
    pub fn peak_state_bits(&self) -> usize {
        self.peak_state_bits
    }

    /// The recorded network faults and partition transitions, in order.
    pub fn faults(&self) -> &[FaultRecord] {
        &self.faults
    }

    fn sample_state(&mut self) {
        let bits = self.total_state_bits();
        self.peak_state_bits = self.peak_state_bits.max(bits);
        if !self.obs.is_empty() {
            self.obs.on_state_sample(self.execution.len(), bits);
        }
    }

    /// Invokes a client operation at `replica`; returns the event index and
    /// the response.
    pub fn do_op(&mut self, replica: ReplicaId, obj: ObjectId, op: Op) -> (usize, ReturnValue) {
        let dot = op.is_update().then(|| {
            self.update_seq[replica.index()] += 1;
            Dot::new(replica, self.update_seq[replica.index()])
        });
        let outcome = self.machines[replica.index()].do_op(obj, &op);
        let ix = self
            .execution
            .push_do(replica, obj, op, outcome.rval.clone());
        self.witnesses.push(DoWitness {
            event: ix,
            visible: outcome.visible,
        });
        self.timestamps.push(outcome.timestamp);
        if !self.obs.is_empty() {
            let (eobj, op, rval) = self.execution.event(ix).as_do().expect("do event");
            self.obs.on_do(&DoEvent {
                step: ix,
                replica,
                obj: eobj,
                op,
                rval,
                dot,
                visible: &self.witnesses[self.witnesses.len() - 1].visible,
            });
        }
        self.sample_state();
        (ix, outcome.rval)
    }

    /// Convenience: a read at `replica`.
    pub fn read(&mut self, replica: ReplicaId, obj: ObjectId) -> ReturnValue {
        self.do_op(replica, obj, Op::Read).1
    }

    /// If `replica` has a message pending, records the `send` event and
    /// enqueues one in-flight copy per other replica. Returns the message
    /// id, or `None` if nothing was pending.
    pub fn flush(&mut self, replica: ReplicaId) -> Option<MsgId> {
        let payload = self.machines[replica.index()].pending_message()?;
        let bits = payload.bits();
        self.machines[replica.index()].on_send();
        let msg = self
            .execution
            .push_send(replica, payload)
            .expect("replica id is valid");
        for t in 0..self.config.n_replicas {
            if t != replica.index() {
                self.inflight.push(InFlight {
                    msg,
                    to: ReplicaId::new(t as u32),
                });
            }
        }
        if !self.obs.is_empty() {
            self.obs.on_send(&SendEvent {
                step: self.execution.message(msg).send_index,
                replica,
                msg,
                bits,
            });
        }
        self.sample_state();
        Some(msg)
    }

    /// The in-flight message copies, in enqueue order.
    pub fn inflight(&self) -> &[InFlight] {
        &self.inflight
    }

    /// Delivers the `i`-th in-flight copy; returns the receive event index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn deliver(&mut self, i: usize) -> usize {
        let InFlight { msg, to } = self.inflight.remove(i);
        let payload = self.execution.message(msg).payload.clone();
        self.machines[to.index()].on_receive(&payload);
        let ix = self
            .execution
            .push_receive(to, msg)
            .expect("in-flight copies are deliverable");
        if !self.obs.is_empty() {
            self.obs.on_receive(&ReceiveEvent {
                step: ix,
                replica: to,
                msg,
                bits: payload.bits(),
                send_step: self.execution.message(msg).send_index,
            });
        }
        self.sample_state();
        ix
    }

    /// Delivers the first in-flight copy addressed to `to` for message
    /// `msg`, if any; returns the receive event index.
    pub fn deliver_to(&mut self, msg: MsgId, to: ReplicaId) -> Option<usize> {
        let i = self
            .inflight
            .iter()
            .position(|f| f.msg == msg && f.to == to)?;
        Some(self.deliver(i))
    }

    /// Drops the `i`-th in-flight copy (it will never be delivered).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn drop_inflight(&mut self, i: usize) {
        let InFlight { msg, to } = self.inflight.remove(i);
        let at_event = self.execution.len();
        self.faults.push(FaultRecord {
            at_event,
            kind: FaultKind::Drop { msg, to },
        });
        if !self.obs.is_empty() {
            self.obs.on_drop(&FaultEvent {
                step: at_event,
                msg,
                to,
            });
        }
    }

    /// Duplicates the `i`-th in-flight copy.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn duplicate_inflight(&mut self, i: usize) {
        let copy = self.inflight[i];
        self.inflight.push(copy);
        let at_event = self.execution.len();
        self.faults.push(FaultRecord {
            at_event,
            kind: FaultKind::Duplicate {
                msg: copy.msg,
                to: copy.to,
            },
        });
        if !self.obs.is_empty() {
            self.obs.on_duplicate(&FaultEvent {
                step: at_event,
                msg: copy.msg,
                to: copy.to,
            });
        }
    }

    /// Records a partition activation (for the fault transcript) and
    /// notifies observers. The partition itself is enforced by the
    /// scheduler; the simulator only keeps the record.
    pub fn note_partition_start(&mut self, group: &[usize]) {
        self.faults.push(FaultRecord {
            at_event: self.execution.len(),
            kind: FaultKind::PartitionStart {
                group: group.to_vec(),
            },
        });
        if !self.obs.is_empty() {
            self.obs.on_partition_change(self.execution.len(), true);
        }
    }

    /// Records the active partition healing; see
    /// [`note_partition_start`](Self::note_partition_start).
    pub fn note_partition_heal(&mut self) {
        self.faults.push(FaultRecord {
            at_event: self.execution.len(),
            kind: FaultKind::PartitionHeal,
        });
        if !self.obs.is_empty() {
            self.obs.on_partition_change(self.execution.len(), false);
        }
    }

    /// Delivers everything currently in flight, in enqueue order.
    pub fn deliver_all(&mut self) {
        while !self.inflight.is_empty() {
            self.deliver(0);
        }
    }

    /// Drives the cluster to a *quiescent* execution (Definition 17): every
    /// pending message is flushed and every sent message is delivered to
    /// every other replica, repeating until no replica has a message pending
    /// and nothing is in flight.
    ///
    /// For op-driven stores one round suffices; stores that create pending
    /// messages on receive (e.g. the sequencer) need several. A round cap
    /// guards against stores that never quiesce.
    ///
    /// Returns `true` if quiescence was reached within the cap.
    pub fn quiesce(&mut self) -> bool {
        let mut rounds = 0;
        let mut reached = false;
        for _ in 0..64 {
            let mut progress = false;
            for r in 0..self.config.n_replicas {
                if self.flush(ReplicaId::new(r as u32)).is_some() {
                    progress = true;
                }
            }
            if !self.inflight.is_empty() {
                progress = true;
                self.deliver_all();
            }
            if !progress {
                reached = true;
                break;
            }
            rounds += 1;
        }
        if !reached {
            reached = (0..self.config.n_replicas)
                .all(|r| self.machines[r].pending_message().is_none())
                && self.inflight.is_empty();
        }
        if !self.obs.is_empty() {
            self.obs.on_quiesce(rounds, reached);
        }
        reached
    }

    /// The execution transcript so far.
    pub fn execution(&self) -> &Execution {
        &self.execution
    }

    /// The visibility witnesses reported by the store, one per `do` event.
    pub fn witnesses(&self) -> &[DoWitness] {
        &self.witnesses
    }

    /// Immutable access to a replica machine (for fingerprints, state
    /// size).
    pub fn machine(&self, replica: ReplicaId) -> &dyn ReplicaMachine {
        self.machines[replica.index()].as_ref()
    }

    /// Builds the candidate abstract execution from the store's witnesses,
    /// with `H` in execution order.
    ///
    /// # Errors
    ///
    /// Propagates witness resolution failures.
    pub fn abstract_execution(&self) -> Result<AbstractExecution, WitnessError> {
        abstract_from_witness(&self.execution, &self.witnesses)
    }

    /// Builds the candidate abstract execution with `H` ordered by the
    /// store-reported arbitration timestamps (writes before reads on ties,
    /// execution order last) — the appropriate order for last-writer-wins
    /// stores, whose specification resolves conflicts by `H` order.
    ///
    /// Events without a timestamp sort by execution order among themselves
    /// at timestamp 0.
    ///
    /// # Errors
    ///
    /// Propagates witness resolution failures.
    pub fn abstract_execution_arbitrated(&self) -> Result<AbstractExecution, WitnessError> {
        let do_events = self.execution.do_events();
        // Sort key mirrors the LWW arbitration rule `(ts, origin)`: writes
        // with equal timestamps are ordered by replica id (the store's
        // tie-break), reads come after writes with the same timestamp, and
        // execution order breaks the remaining ties.
        let mut keyed: Vec<((u64, u8, usize, usize), usize)> = do_events
            .iter()
            .enumerate()
            .map(|(pos, &ix)| {
                let ts = self.timestamps[pos].unwrap_or(0);
                let (_, op, _) = self.execution.event(ix).as_do().expect("do event");
                let is_read = u8::from(op.is_read());
                (
                    (ts, is_read, self.execution.event(ix).replica.index(), ix),
                    ix,
                )
            })
            .collect();
        keyed.sort();
        let order: Vec<usize> = keyed.into_iter().map(|(_, ix)| ix).collect();
        abstract_from_witness_ordered(&self.execution, &self.witnesses, &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_model::Value;
    use haec_stores::{DvvMvrStore, LwwStore};

    fn cfg() -> StoreConfig {
        StoreConfig::new(3, 2)
    }
    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }

    #[test]
    fn do_flush_deliver_roundtrip() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        let msg = sim.flush(r(0)).expect("pending after write");
        assert_eq!(sim.inflight().len(), 2);
        sim.deliver_to(msg, r(1)).expect("copy exists");
        assert_eq!(sim.read(r(1), x(0)), ReturnValue::values([v(1)]));
        assert_eq!(sim.read(r(2), x(0)), ReturnValue::empty());
    }

    #[test]
    fn flush_without_pending_is_none() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        assert!(sim.flush(r(0)).is_none());
    }

    #[test]
    fn quiesce_reaches_agreement() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.do_op(r(1), x(0), Op::Write(v(2)));
        sim.do_op(r(2), x(1), Op::Write(v(3)));
        assert!(sim.quiesce());
        let expect_x0 = ReturnValue::values([v(1), v(2)]);
        for i in 0..3 {
            assert_eq!(sim.read(r(i), x(0)), expect_x0);
            assert_eq!(sim.read(r(i), x(1)), ReturnValue::values([v(3)]));
        }
    }

    #[test]
    fn drop_and_duplicate() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.flush(r(0)).unwrap();
        sim.duplicate_inflight(0);
        assert_eq!(sim.inflight().len(), 3);
        sim.drop_inflight(0);
        assert_eq!(sim.inflight().len(), 2);
        sim.deliver_all();
        assert!(sim.execution().validate().is_ok());
    }

    #[test]
    fn execution_records_all_events() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.flush(r(0)).unwrap();
        sim.deliver_all();
        // 1 do + 1 send + 2 receives
        assert_eq!(sim.execution().len(), 4);
        assert_eq!(sim.witnesses().len(), 1);
    }

    #[test]
    fn abstract_execution_from_witnesses() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        let (w, _) = sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.flush(r(0)).unwrap();
        sim.deliver_all();
        let (rd, rv) = sim.do_op(r(1), x(0), Op::Read);
        assert_eq!(rv, ReturnValue::values([v(1)]));
        let a = sim.abstract_execution().unwrap();
        assert_eq!(a.len(), 2);
        // Both do events are in H; the write is visible to the read.
        let h_w = 0;
        let h_r = 1;
        assert!(a.sees(h_w, h_r));
        let _ = (w, rd);
    }

    #[test]
    fn arbitrated_order_respects_timestamps() {
        let mut sim = Simulator::new(&LwwStore, cfg());
        // Concurrent writes at ts 1; then r1's second write at ts 2.
        sim.do_op(r(0), x(0), Op::Write(v(10)));
        sim.do_op(r(1), x(0), Op::Write(v(20)));
        sim.do_op(r(1), x(0), Op::Write(v(30)));
        sim.quiesce();
        let rv = sim.read(r(2), x(0));
        assert_eq!(rv, ReturnValue::values([v(30)]));
        let a = sim.abstract_execution_arbitrated().unwrap();
        assert!(a.validate().is_ok());
        // H must order the ts-2 write after both ts-1 writes.
        let vals: Vec<_> = a
            .events()
            .iter()
            .filter_map(|e| match e.op {
                Op::Write(v) => Some(v.as_u64()),
                _ => None,
            })
            .collect();
        assert_eq!(*vals.last().unwrap(), 30);
    }

    #[test]
    fn snapshot_restore_rewinds_everything() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.flush(r(0)).unwrap();
        let snap = sim.snapshot();
        let fps: Vec<u64> = (0..3)
            .map(|i| sim.machine(r(i)).state_fingerprint())
            .collect();
        let events = sim.execution().events().to_vec();
        // Mutate: deliver, write, flush again.
        sim.deliver(0);
        sim.do_op(r(1), x(1), Op::Write(v(2)));
        sim.flush(r(1)).unwrap();
        assert_ne!(sim.execution().events().len(), events.len());
        sim.restore(&snap);
        let fps2: Vec<u64> = (0..3)
            .map(|i| sim.machine(r(i)).state_fingerprint())
            .collect();
        assert_eq!(fps, fps2);
        assert_eq!(sim.execution().events(), &events[..]);
        assert_eq!(sim.inflight().len(), 2);
        assert_eq!(sim.witnesses().len(), 1);
        // The snapshot survives a restore and can be applied again.
        sim.deliver_all();
        sim.restore(&snap);
        assert_eq!(sim.inflight().len(), 2);
        // The restored cluster behaves identically going forward.
        sim.deliver_to(MsgId::new(0), r(1)).expect("copy exists");
        assert_eq!(sim.read(r(1), x(0)), ReturnValue::values([v(1)]));
        assert_eq!(sim.read(r(2), x(0)), ReturnValue::empty());
    }

    /// Everything the explorer can observe about a cluster's state.
    fn observable(sim: &Simulator) -> (Vec<u64>, usize, usize, usize, usize) {
        (
            (0..sim.config().n_replicas)
                .map(|i| sim.machine(r(i as u32)).state_fingerprint())
                .collect(),
            sim.execution().len(),
            sim.execution().messages().len(),
            sim.inflight().len(),
            sim.witnesses().len(),
        )
    }

    #[test]
    fn checkpoint_rewind_truncates_forward_progress() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.flush(r(0)).unwrap();
        let cp = sim.checkpoint();
        let before = observable(&sim);
        let events = sim.execution().events().to_vec();
        sim.deliver(0);
        sim.do_op(r(1), x(1), Op::Write(v(2)));
        sim.flush(r(1)).unwrap();
        sim.rewind(&cp);
        assert_eq!(observable(&sim), before);
        assert_eq!(sim.execution().events(), &events[..]);
        // A checkpoint survives a rewind and can be rewound to again.
        sim.deliver_all();
        sim.rewind(&cp);
        assert_eq!(observable(&sim), before);
        // The rewound cluster behaves identically going forward.
        sim.deliver_to(MsgId::new(0), r(1)).expect("copy exists");
        assert_eq!(sim.read(r(1), x(0)), ReturnValue::values([v(1)]));
    }

    #[test]
    fn begin_undo_step_reverts_each_action_kind() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        sim.flush(r(0)).unwrap();

        // A client op touches only its replica's machine.
        let before = observable(&sim);
        let undo = sim.begin_step(r(1), false);
        sim.do_op(r(1), x(1), Op::Write(v(2)));
        assert_ne!(observable(&sim), before);
        sim.undo_step(undo);
        assert_eq!(observable(&sim), before);

        // A delivery touches the addressee's machine and the in-flight list.
        let to = sim.inflight()[0].to;
        let undo = sim.begin_step(to, true);
        sim.deliver(0);
        assert_ne!(observable(&sim), before);
        sim.undo_step(undo);
        assert_eq!(observable(&sim), before);

        // A flush touches the sender's machine and the in-flight list.
        sim.do_op(r(2), x(0), Op::Write(v(3)));
        let before = observable(&sim);
        let undo = sim.begin_step(r(2), true);
        sim.flush(r(2)).unwrap();
        assert_ne!(observable(&sim), before);
        sim.undo_step(undo);
        assert_eq!(observable(&sim), before);

        // The undone cluster behaves identically going forward: replica 2's
        // pending message is still flushable and delivers the same write.
        sim.flush(r(2)).unwrap();
        sim.deliver_all();
        assert_eq!(sim.read(r(0), x(0)), ReturnValue::values([v(1), v(3)]));
    }

    #[test]
    fn machine_access_for_fingerprints() {
        let mut sim = Simulator::new(&DvvMvrStore, cfg());
        let fp0 = sim.machine(r(0)).state_fingerprint();
        sim.do_op(r(0), x(0), Op::Write(v(1)));
        assert_ne!(sim.machine(r(0)).state_fingerprint(), fp0);
        assert_eq!(sim.store_name(), "dvv-mvr");
    }
}
