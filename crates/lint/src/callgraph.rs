//! Workspace symbol table, per-function source detection, and call-graph
//! construction for the interprocedural taint pass.
//!
//! [`Workspace::build`] runs over every file of a lint invocation (one
//! file for fixtures, the whole tree for `lint_workspace`): it tokenizes,
//! recovers items with [`crate::parse`], detects *taint sources* inside
//! each function body, extracts call sites, and resolves them against a
//! workspace-wide symbol table. Method calls resolve by a receiver-type
//! heuristic (`self`, `let x: T`, typed parameters, `let x = T::new()`);
//! a receiver whose type is unknown over-approximates to every workspace
//! method of that name that takes `self` — trait-object dispatch is thus
//! over-approximated, never missed. Calls that resolve to nothing in the
//! workspace (std, closures) contribute no edge: std functions are
//! modelled by the source patterns instead.
//!
//! A tiny *side-channel summary* registry overrides two functions whose
//! token-level bodies would mislead the analysis: `core::spans::timed`
//! wraps nearly every checker in the workspace but returns the wrapped
//! closure's value unchanged (the clock reading goes only to the
//! thread-local span collector), so it is forced taint-transparent; its
//! dual `core::spans::collect` *returns* the collected `SpanRecord`s with
//! their wall-clock `total_ns`, so it is forced to generate wall-clock
//! taint regardless of what its body looks like.

use crate::driver::unordered_iteration_sites;
use crate::lints::Lint;
use crate::parse::{parse_file, FnDef};
use crate::resolve::{collect_uses, Resolver};
use crate::tokenizer::{tokenize, Tok, TokKind};
use haec_core::det::DetMap;

/// The seven kinds of nondeterminism the taint lattice tracks. The
/// lattice is the powerset of these, represented as a bitset ([`bit`]);
/// join is bitwise or.
///
/// [`bit`]: SourceKind::bit
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SourceKind {
    /// `std::time::Instant` / `SystemTime` reads.
    WallClock,
    /// `std::env`, `RandomState` — ambient process state.
    AmbientEntropy,
    /// `std::thread::current()` — thread identity.
    ThreadId,
    /// Iteration over a raw hash collection.
    UnorderedIter,
    /// `sort_unstable_by`/`sort_unstable_by_key` — equal-under-comparator
    /// elements land in unspecified order.
    UnstableSort,
    /// Pointer/address observation: `.as_ptr()`, `as *const _`,
    /// `ptr::eq`/`addr_of` — addresses vary run to run.
    AddressCast,
    /// An `Ordering::Relaxed` atomic access — unsynchronized values may
    /// differ between runs and thread counts.
    RelaxedRead,
}

impl SourceKind {
    /// Every kind, in bit order.
    pub const ALL: [SourceKind; 7] = [
        SourceKind::WallClock,
        SourceKind::AmbientEntropy,
        SourceKind::ThreadId,
        SourceKind::UnorderedIter,
        SourceKind::UnstableSort,
        SourceKind::AddressCast,
        SourceKind::RelaxedRead,
    ];

    /// This kind's bit in the taint bitset.
    #[must_use]
    pub fn bit(self) -> u8 {
        1 << (self as u8)
    }

    /// The lint class a flow from this source raises at a sink.
    #[must_use]
    pub fn lint(self) -> Lint {
        match self {
            SourceKind::WallClock | SourceKind::AmbientEntropy | SourceKind::ThreadId => {
                Lint::TaintedFingerprint
            }
            SourceKind::UnorderedIter | SourceKind::UnstableSort => Lint::UnstableOrderSink,
            SourceKind::AddressCast => Lint::AddressAsIdentity,
            SourceKind::RelaxedRead => Lint::RelaxedOrderingDecision,
        }
    }

    /// Human description used in diagnostics.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            SourceKind::WallClock => "wall-clock time",
            SourceKind::AmbientEntropy => "ambient process state",
            SourceKind::ThreadId => "thread identity",
            SourceKind::UnorderedIter => "hash-order iteration",
            SourceKind::UnstableSort => "unstable-sort order",
            SourceKind::AddressCast => "a pointer address",
            SourceKind::RelaxedRead => "a `Relaxed` atomic value",
        }
    }
}

/// The four sink classes — functions whose *output is the product*: if a
/// nondeterministic value reaches one, runs stop being reproducible.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SinkKind {
    /// State fingerprints (`*fingerprint*`).
    Fingerprint,
    /// Canonical enumeration order (`iter_to_depth`, `*canonical*`).
    EnumOrder,
    /// Run-report serialization (`to_json*`, `json_tree`, `render_human`,
    /// `Report::collect`).
    Report,
    /// Counterexample selection (`explore*`, `shrink*`, `replay`,
    /// `*counterexample*`).
    CexSelection,
}

impl SinkKind {
    /// Human description used in diagnostics.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            SinkKind::Fingerprint => "a state fingerprint",
            SinkKind::EnumOrder => "canonical enumeration order",
            SinkKind::Report => "run-report serialization",
            SinkKind::CexSelection => "counterexample selection",
        }
    }
}

/// Classifies a function as a sink by name (and receiver-type) heuristic.
#[must_use]
pub fn classify_sink(name: &str, self_type: Option<&str>) -> Option<SinkKind> {
    if name.contains("fingerprint") {
        return Some(SinkKind::Fingerprint);
    }
    if name == "iter_to_depth" || name.contains("canonical") {
        return Some(SinkKind::EnumOrder);
    }
    if matches!(
        name,
        "to_json" | "to_json_string" | "to_json_normalized" | "json_tree" | "render_human"
    ) || (name == "collect" && self_type.is_some_and(|t| t.contains("Report")))
    {
        return Some(SinkKind::Report);
    }
    if name.starts_with("explore")
        || name.starts_with("shrink")
        || name == "replay"
        || name.contains("counterexample")
    {
        return Some(SinkKind::CexSelection);
    }
    None
}

/// One occurrence of a taint source inside a function body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceSite {
    /// What kind of nondeterminism it introduces.
    pub kind: SourceKind,
    /// 1-based line of the occurrence.
    pub line: u32,
    /// 1-based column of the occurrence.
    pub col: u32,
    /// The offending expression, for the diagnostic (`` `Instant::now` ``).
    pub what: String,
}

/// One resolved call edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CallEdge {
    /// Index of the callee in [`Workspace::fns`].
    pub callee: usize,
    /// 1-based line of the call site in the caller.
    pub line: u32,
    /// 1-based column of the call site in the caller.
    pub col: u32,
}

/// One function in the workspace call graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FnNode {
    /// Function name.
    pub name: String,
    /// `impl`/`trait` target, if a method or associated function.
    pub self_type: Option<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// 1-based column of the definition.
    pub col: u32,
    /// Defined inside a `mod tests` block (never a sink).
    pub in_tests: bool,
    /// Taint the body generates directly (bitset of [`SourceKind`]).
    pub gen: u8,
    /// The occurrences behind [`gen`](FnNode::gen), in scan order.
    pub gen_sites: Vec<SourceSite>,
    /// Resolved outgoing calls, in call-site order, deduped by callee.
    pub calls: Vec<CallEdge>,
    /// Sink classification, if any.
    pub sink: Option<SinkKind>,
}

impl FnNode {
    /// `Type::name` or bare `name`.
    #[must_use]
    pub fn qualified_name(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph: every parsed function with its taint
/// generation set and resolved call edges.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All functions, in (file, definition) order.
    pub fns: Vec<FnNode>,
}

const WALL_CLOCK_TYPES: [&str; 2] = ["std::time::Instant", "std::time::SystemTime"];
const RANDOM_STATE_TYPES: [&str; 2] = [
    "std::collections::hash_map::RandomState",
    "std::hash::RandomState",
];
const PTR_IDENTITY_FNS: [&str; 5] = [
    "std::ptr::eq",
    "std::ptr::hash",
    "std::ptr::addr_of",
    "std::ptr::addr_of_mut",
    "std::ptr::from_ref",
];
/// Bare names worth resolving through glob imports for source detection.
const NAMES_OF_INTEREST: [&str; 4] = ["Instant", "SystemTime", "RandomState", "HashMap"];

/// Keywords and control-flow words that look like bare calls but are not.
const NOT_A_CALL: [&str; 14] = [
    "if", "match", "while", "for", "loop", "return", "break", "continue", "move", "in", "as",
    "let", "else", "unsafe",
];

fn path_is(path: &str, targets: &[&str]) -> bool {
    targets
        .iter()
        .any(|t| path == *t || (path.starts_with(t) && path[t.len()..].starts_with("::")))
}

/// Maps a resolved path occurrence to the source kind it introduces.
fn classify_source_path(path: &str) -> Option<(SourceKind, String)> {
    let path = path.strip_prefix("::").unwrap_or(path);
    if path_is(path, &WALL_CLOCK_TYPES) {
        return Some((SourceKind::WallClock, format!("`{path}`")));
    }
    if path_is(path, &RANDOM_STATE_TYPES) || path_is(path, &["std::env"]) {
        return Some((SourceKind::AmbientEntropy, format!("`{path}`")));
    }
    if path == "std::thread::current" {
        return Some((SourceKind::ThreadId, format!("`{path}`")));
    }
    if PTR_IDENTITY_FNS.contains(&path) {
        return Some((SourceKind::AddressCast, format!("`{path}`")));
    }
    None
}

/// A call site before resolution.
enum RawCall {
    /// `seg::seg::name(…)` or aliased path call; `hints` are the resolved
    /// leading segments.
    Path { name: String, hints: Vec<String> },
    /// `.name(…)` with an optional receiver-type hint.
    Method { name: String, recv: Option<String> },
    /// `name(…)` with no path qualifier.
    Bare { name: String },
}

struct RawCallSite {
    call: RawCall,
    line: u32,
    col: u32,
}

/// Per-file intermediate state.
struct FileScan {
    rel_path: String,
    toks: Vec<Tok>,
    code: Vec<usize>,
    fns: Vec<FnDef>,
    resolver: Resolver,
    iter_sites: Vec<(u32, u32, String)>,
}

impl Workspace {
    /// Builds the call graph over `files` (`(rel_path, source)` pairs).
    #[must_use]
    pub fn build(files: &[(String, String)]) -> Workspace {
        let scans: Vec<FileScan> = files
            .iter()
            .map(|(rel_path, source)| {
                let toks = tokenize(source);
                let (resolver, _, _) = collect_uses(&toks);
                let parsed = parse_file(&toks);
                let iter_sites = unordered_iteration_sites(&toks, &resolver);
                FileScan {
                    rel_path: rel_path.clone(),
                    toks,
                    code: parsed.code,
                    fns: parsed.fns,
                    resolver,
                    iter_sites,
                }
            })
            .collect();

        // Global fn table, in (file, definition) order.
        let mut nodes: Vec<FnNode> = Vec::new();
        let mut raw_calls: Vec<Vec<RawCallSite>> = Vec::new();
        for scan in &scans {
            for (fi, f) in scan.fns.iter().enumerate() {
                let (gen_sites, calls) = scan_fn_body(scan, fi);
                let mut gen = 0u8;
                for s in &gen_sites {
                    gen |= s.kind.bit();
                }
                nodes.push(FnNode {
                    name: f.name.clone(),
                    self_type: f.self_type.clone(),
                    file: scan.rel_path.clone(),
                    line: f.line,
                    col: f.col,
                    in_tests: f.in_tests,
                    gen,
                    gen_sites,
                    calls: Vec::new(),
                    sink: if f.in_tests {
                        None
                    } else {
                        classify_sink(&f.name, f.self_type.as_deref())
                    },
                });
                raw_calls.push(calls);
            }
        }

        // Indices for resolution.
        let mut by_name: DetMap<String, Vec<usize>> = DetMap::new();
        let mut methods_by_name: DetMap<String, Vec<usize>> = DetMap::new();
        let mut free_by_name: DetMap<String, Vec<usize>> = DetMap::new();
        let mut by_file_name: DetMap<(String, String), Vec<usize>> = DetMap::new();
        let mut fn_has_self: Vec<bool> = Vec::new();
        {
            let mut id = 0usize;
            for scan in &scans {
                for f in &scan.fns {
                    by_name
                        .get_or_insert_with(f.name.clone(), Vec::new)
                        .push(id);
                    if f.has_self {
                        methods_by_name
                            .get_or_insert_with(f.name.clone(), Vec::new)
                            .push(id);
                    }
                    if f.self_type.is_none() {
                        free_by_name
                            .get_or_insert_with(f.name.clone(), Vec::new)
                            .push(id);
                    }
                    by_file_name
                        .get_or_insert_with((scan.rel_path.clone(), f.name.clone()), Vec::new)
                        .push(id);
                    fn_has_self.push(f.has_self);
                    id += 1;
                }
            }
        }

        // Resolve raw calls into edges.
        for (id, sites) in raw_calls.into_iter().enumerate() {
            let file = nodes[id].file.clone();
            let mut edges: Vec<CallEdge> = Vec::new();
            let mut have: Vec<usize> = Vec::new();
            for site in sites {
                let callees: Vec<usize> = match &site.call {
                    RawCall::Method { name, recv } => {
                        let all = methods_by_name.get(name.as_str());
                        match (all, recv) {
                            (None, _) => Vec::new(),
                            (Some(ids), Some(t)) => {
                                let exact: Vec<usize> = ids
                                    .iter()
                                    .copied()
                                    .filter(|&c| nodes[c].self_type.as_deref() == Some(t))
                                    .collect();
                                if exact.is_empty() {
                                    ids.clone()
                                } else {
                                    exact
                                }
                            }
                            (Some(ids), None) => ids.clone(),
                        }
                    }
                    RawCall::Path { name, hints } => match by_name.get(name.as_str()) {
                        None => Vec::new(),
                        Some(ids) => ids
                            .iter()
                            .copied()
                            .filter(|&c| hints.iter().any(|h| hint_matches(h, &nodes[c])))
                            .collect(),
                    },
                    RawCall::Bare { name } => {
                        if let Some(ids) = by_file_name.get(&(file.clone(), name.clone())) {
                            ids.clone()
                        } else if let Some(ids) = free_by_name.get(name.as_str()) {
                            ids.clone()
                        } else {
                            Vec::new()
                        }
                    }
                };
                for c in callees {
                    if c != id && !have.contains(&c) {
                        have.push(c);
                        edges.push(CallEdge {
                            callee: c,
                            line: site.line,
                            col: site.col,
                        });
                    }
                }
            }
            nodes[id].calls = edges;
        }

        // Side-channel summaries override the token-level view.
        for node in &mut nodes {
            match side_channel_override(&node.file, &node.name) {
                Some(Override::Transparent) => {
                    node.gen = 0;
                    node.gen_sites.clear();
                    node.calls.clear();
                }
                Some(Override::ForceGen(kind, what)) => {
                    node.gen = kind.bit();
                    node.gen_sites = vec![SourceSite {
                        kind,
                        line: node.line,
                        col: node.col,
                        what: what.to_owned(),
                    }];
                    node.calls.clear();
                }
                None => {}
            }
        }

        Workspace { fns: nodes }
    }
}

/// Does hint segment `h` plausibly name the item `c` belongs to? Matches
/// the `impl` type, the file stem (`obs::report::…` → `report.rs`), or
/// the crate name (`haec_core::…` → `crates/core`).
fn hint_matches(h: &str, c: &FnNode) -> bool {
    if h == "crate" || h == "super" || h == "self" {
        return true;
    }
    if c.self_type.as_deref() == Some(h) {
        return true;
    }
    let stem = file_stem(&c.file);
    if h == stem {
        return true;
    }
    let krate = crate_of(&c.file);
    h == krate || h.strip_prefix("haec_") == Some(krate)
}

/// `crates/sim/src/obs/report.rs` → `report`; `…/obs/mod.rs` → `obs`.
fn file_stem(file: &str) -> &str {
    let mut parts = file.rsplit('/');
    let last = parts.next().unwrap_or(file);
    let stem = last.strip_suffix(".rs").unwrap_or(last);
    if stem == "mod" || stem == "lib" || stem == "main" {
        parts.next().unwrap_or(stem)
    } else {
        stem
    }
}

/// `crates/sim/src/…` → `sim`; the facade `src/…` → `haec`.
fn crate_of(file: &str) -> &str {
    let mut it = file.split('/');
    match it.next() {
        Some("crates") => it.next().unwrap_or(""),
        _ => "haec",
    }
}

enum Override {
    /// Returns its argument unchanged; generates nothing.
    Transparent,
    /// Returns a value of this source kind regardless of its body.
    ForceGen(SourceKind, &'static str),
}

/// The side-channel summary registry (see module docs).
fn side_channel_override(file: &str, name: &str) -> Option<Override> {
    match (file, name) {
        ("crates/core/src/spans.rs", "timed") => Some(Override::Transparent),
        ("crates/core/src/spans.rs", "collect") => Some(Override::ForceGen(
            SourceKind::WallClock,
            "`spans::collect` (returns `SpanRecord`s carrying wall-clock `total_ns`)",
        )),
        _ => None,
    }
}

/// Scans one function body for source occurrences and call sites.
fn scan_fn_body(scan: &FileScan, fi: usize) -> (Vec<SourceSite>, Vec<RawCallSite>) {
    let f = &scan.fns[fi];
    let Some((bs, be)) = f.body else {
        return (Vec::new(), Vec::new());
    };
    // The fn's own tokens: its body minus any nested fn bodies.
    let nested: Vec<(usize, usize)> = scan
        .fns
        .iter()
        .enumerate()
        .filter(|&(gi, _)| gi != fi)
        .filter_map(|(_, g)| g.body)
        .filter(|&(s, e)| s >= bs && e <= be && (s, e) != (bs, be))
        .collect();
    let own: Vec<usize> = (bs..be)
        .filter(|&k| !nested.iter().any(|&(s, e)| k >= s && k < e))
        .collect();

    let toks = &scan.toks;
    let code = &scan.code;
    let tok = |p: usize| -> Option<&Tok> { own.get(p).map(|&k| &toks[code[k]]) };
    let ident = |p: usize| -> Option<&str> {
        tok(p).and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
    };
    let punct = |p: usize, c: char| -> bool { tok(p).is_some_and(|t| t.kind == TokKind::Punct(c)) };

    // Receiver types: parameters, then `let` bindings scanned below.
    let mut locals: DetMap<String, String> = DetMap::new();
    for (n, t) in &f.params {
        locals.insert(n.clone(), t.clone());
    }
    // First pass: `let [mut] x: T = …` / `let [mut] x = T::ctor(…)` /
    // `let [mut] x = T { … }`.
    let mut p = 0usize;
    while p < own.len() {
        if ident(p) == Some("let") {
            let mut v = p + 1;
            if ident(v) == Some("mut") {
                v += 1;
            }
            if let Some(name) = ident(v) {
                if punct(v + 1, ':') && !punct(v + 2, ':') {
                    // Ascribed type: take the path's outer segment.
                    let mut q = v + 2;
                    while punct(q, '&')
                        || ident(q) == Some("mut")
                        || tok(q).is_some_and(|t| t.kind == TokKind::Lifetime)
                    {
                        q += 1;
                    }
                    let mut last = None;
                    while let Some(seg) = ident(q) {
                        last = Some(seg.to_owned());
                        if punct(q + 1, ':') && punct(q + 2, ':') {
                            q += 3;
                        } else {
                            break;
                        }
                    }
                    if let Some(t) = last {
                        locals.insert(name.to_owned(), t);
                    }
                } else if punct(v + 1, '=') && !punct(v + 2, '=') {
                    // `= A::B::ctor(…)` → type B (segment before the fn
                    // name); `= A { …` → type A. Anything else still
                    // records the binding (type unknown, `?`) so bare
                    // calls through shadowing locals — closures, fn
                    // pointers — never resolve to workspace functions.
                    let mut q = v + 2;
                    let mut segs: Vec<&str> = Vec::new();
                    while let Some(seg) = ident(q) {
                        segs.push(seg);
                        if punct(q + 1, ':') && punct(q + 2, ':') {
                            q += 3;
                        } else {
                            break;
                        }
                    }
                    let mut ty = None;
                    if !segs.is_empty() {
                        if punct(q + 1, '{') && starts_upper(segs[segs.len() - 1]) {
                            ty = Some(segs[segs.len() - 1].to_owned());
                        } else if punct(q + 1, '(')
                            && segs.len() >= 2
                            && starts_upper(segs[segs.len() - 2])
                        {
                            ty = Some(segs[segs.len() - 2].to_owned());
                        }
                    }
                    locals.insert(name.to_owned(), ty.unwrap_or_else(|| "?".to_owned()));
                }
            }
        }
        p += 1;
    }

    let mut sites: Vec<SourceSite> = Vec::new();
    let mut calls: Vec<RawCallSite> = Vec::new();

    // UnorderedIter sites that land inside this fn's own lines.
    let own_lines: Vec<u32> = own.iter().map(|&k| toks[code[k]].line).collect();
    if let (Some(&lo), Some(&hi)) = (own_lines.iter().min(), own_lines.iter().max()) {
        for (line, col, _) in &scan.iter_sites {
            if *line >= lo && *line <= hi {
                sites.push(SourceSite {
                    kind: SourceKind::UnorderedIter,
                    line: *line,
                    col: *col,
                    what: "hash-collection iteration".to_owned(),
                });
            }
        }
    }

    let mut p = 0usize;
    while p < own.len() {
        let Some(t) = tok(p) else { break };
        if t.kind != TokKind::Ident {
            p += 1;
            continue;
        }
        let text = t.text.clone();
        let (line, col) = (t.line, t.col);

        // Skip nested-fn headers: `fn name` (the body itself is excluded
        // from `own`, but headers are not).
        if text == "fn" {
            p += 2;
            continue;
        }

        // `as *const T` / `as *mut T` — a pointer-producing cast.
        if text == "as" && punct(p + 1, '*') && matches!(ident(p + 2), Some("const") | Some("mut"))
        {
            sites.push(SourceSite {
                kind: SourceKind::AddressCast,
                line,
                col,
                what: "`as *const _` pointer cast".to_owned(),
            });
            p += 3;
            continue;
        }

        // Method or field position.
        if p > 0 && punct(p - 1, '.') {
            if matches!(text.as_str(), "sort_unstable_by" | "sort_unstable_by_key")
                && punct(p + 1, '(')
            {
                sites.push(SourceSite {
                    kind: SourceKind::UnstableSort,
                    line,
                    col,
                    what: format!("`.{text}()` (unstable under comparator ties)"),
                });
            } else if matches!(text.as_str(), "as_ptr" | "as_mut_ptr") && punct(p + 1, '(') {
                sites.push(SourceSite {
                    kind: SourceKind::AddressCast,
                    line,
                    col,
                    what: format!("`.{text}()` address observation"),
                });
            }
            // Method call edge (skip a `::<…>` turbofish if present).
            let mut q = p + 1;
            if punct(q, ':') && punct(q + 1, ':') && punct(q + 2, '<') {
                let mut depth = 0i32;
                q += 2;
                while let Some(tq) = tok(q) {
                    match tq.kind {
                        TokKind::Punct('<') => depth += 1,
                        TokKind::Punct('>') => {
                            depth -= 1;
                            if depth == 0 {
                                q += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    q += 1;
                }
            }
            if punct(q, '(') {
                let recv = if p >= 2 {
                    match ident(p - 2) {
                        Some("self") => f.self_type.clone(),
                        Some(v) => locals.get(v).filter(|t| *t != "?").cloned(),
                        None => None,
                    }
                } else {
                    None
                };
                calls.push(RawCallSite {
                    call: RawCall::Method { name: text, recv },
                    line,
                    col,
                });
            }
            p += 1;
            continue;
        }

        // Path occurrence: collect `seg::seg::…` segments.
        let mut segments = vec![text.clone()];
        let mut q = p + 1;
        while punct(q, ':') && punct(q + 1, ':') {
            let Some(seg) = ident(q + 2) else { break };
            segments.push(seg.to_owned());
            q += 3;
        }
        // `Self::helper()` — substitute the enclosing impl type.
        if segments[0] == "Self" {
            if let Some(st) = &f.self_type {
                segments[0] = st.clone();
            }
        }

        // `Ordering::Relaxed` as a value (atomic access argument).
        if segments.len() >= 2
            && segments[segments.len() - 1] == "Relaxed"
            && segments[segments.len() - 2] == "Ordering"
        {
            sites.push(SourceSite {
                kind: SourceKind::RelaxedRead,
                line,
                col,
                what: "`Ordering::Relaxed` atomic access".to_owned(),
            });
            p = q;
            continue;
        }

        let resolved = scan.resolver.resolve(&segments, &NAMES_OF_INTEREST);
        if segments[segments.len() - 1] == "Relaxed" && resolved.contains("::Ordering") {
            sites.push(SourceSite {
                kind: SourceKind::RelaxedRead,
                line,
                col,
                what: "`Ordering::Relaxed` atomic access".to_owned(),
            });
            p = q;
            continue;
        }
        if let Some((kind, what)) = classify_source_path(&resolved) {
            sites.push(SourceSite {
                kind,
                line,
                col,
                what,
            });
            p = q;
            continue;
        }

        // Call edge? Macros (`name!`) are not calls.
        let is_macro = punct(q, '!');
        if !is_macro && punct(q, '(') {
            let name = segments[segments.len() - 1].clone();
            if segments.len() == 1 {
                // A bare call through a local binding (closure or fn
                // pointer parameter, `let check = |…|`) is not a call to
                // any workspace item of that name.
                if !NOT_A_CALL.contains(&name.as_str())
                    && !starts_upper(&name)
                    && locals.get(name.as_str()).is_none()
                {
                    calls.push(RawCallSite {
                        call: RawCall::Bare { name },
                        line,
                        col,
                    });
                }
            } else {
                let external = resolved.starts_with("std::")
                    || resolved.starts_with("core::")
                    || resolved.starts_with("alloc::");
                if !external {
                    let hints: Vec<String> = resolved
                        .split("::")
                        .map(str::to_owned)
                        .collect::<Vec<_>>()
                        .split_last()
                        .map(|(_, h)| h.to_vec())
                        .unwrap_or_default();
                    calls.push(RawCallSite {
                        call: RawCall::Path { name, hints },
                        line,
                        col,
                    });
                }
            }
        }
        p = q.max(p + 1);
    }

    (sites, calls)
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::build(&[("crates/core/src/x.rs".to_owned(), src.to_owned())])
    }

    fn node<'a>(w: &'a Workspace, name: &str) -> &'a FnNode {
        w.fns.iter().find(|f| f.name == name).unwrap()
    }

    #[test]
    fn wall_clock_gen_is_detected() {
        let w = ws("use std::time::Instant;\nfn probe() -> u64 { let t = Instant::now(); 0 }");
        let n = node(&w, "probe");
        assert_eq!(n.gen, SourceKind::WallClock.bit());
        assert_eq!(n.gen_sites[0].kind, SourceKind::WallClock);
    }

    #[test]
    fn relaxed_ordering_gen_is_detected() {
        let w = ws("use std::sync::atomic::{AtomicU64, Ordering};\n\
             fn claim(next: &AtomicU64) -> u64 { next.fetch_add(1, Ordering::Relaxed) }");
        assert_eq!(node(&w, "claim").gen, SourceKind::RelaxedRead.bit());
        // SeqCst does not fire.
        let w = ws("use std::sync::atomic::{AtomicU64, Ordering};\n\
             fn claim(next: &AtomicU64) -> u64 { next.fetch_add(1, Ordering::SeqCst) }");
        assert_eq!(node(&w, "claim").gen, 0);
    }

    #[test]
    fn address_and_sort_gens_are_detected() {
        let w = ws("fn addr(xs: &[u8]) -> usize { xs.as_ptr() as usize }");
        assert_eq!(node(&w, "addr").gen, SourceKind::AddressCast.bit());
        let w = ws("fn c(x: &u32) -> usize { x as *const u32 as usize }");
        assert_eq!(node(&w, "c").gen, SourceKind::AddressCast.bit());
        let w = ws("fn s(v: &mut Vec<u32>) { v.sort_unstable_by(|a, b| a.cmp(b)); }");
        assert_eq!(node(&w, "s").gen, SourceKind::UnstableSort.bit());
        // Plain sort_unstable (total order, no comparator) is clean.
        let w = ws("fn s(v: &mut Vec<u32>) { v.sort_unstable(); }");
        assert_eq!(node(&w, "s").gen, 0);
    }

    #[test]
    fn bare_and_path_calls_resolve() {
        let w = ws("fn leaf() -> u64 { 0 }\n\
             fn mid() -> u64 { leaf() }\n\
             fn top() -> u64 { mid() }");
        let mid = node(&w, "mid");
        let leaf_id = w.fns.iter().position(|f| f.name == "leaf").unwrap();
        assert_eq!(mid.calls.len(), 1);
        assert_eq!(mid.calls[0].callee, leaf_id);
    }

    #[test]
    fn method_calls_resolve_by_receiver_type() {
        let w = ws("struct A; struct B;\n\
             impl A { fn go(&self) -> u64 { 1 } }\n\
             impl B { fn go(&self) -> u64 { 2 } }\n\
             fn f(a: &A) -> u64 { a.go() }");
        let f = node(&w, "f");
        assert_eq!(f.calls.len(), 1);
        assert_eq!(w.fns[f.calls[0].callee].self_type.as_deref(), Some("A"));
        // Unknown receiver over-approximates to both.
        let w = ws("struct A; struct B;\n\
             impl A { fn go(&self) -> u64 { 1 } }\n\
             impl B { fn go(&self) -> u64 { 2 } }\n\
             fn f(x: &Unknown) -> u64 { x.go() }");
        assert_eq!(node(&w, "f").calls.len(), 2);
    }

    #[test]
    fn self_calls_resolve_to_own_impl() {
        let w = ws("struct S;\n\
             impl S {\n\
                 fn helper(&self) -> u64 { 0 }\n\
                 fn entry(&self) -> u64 { self.helper() + Self::assoc() }\n\
                 fn assoc() -> u64 { 0 }\n\
             }");
        let entry = node(&w, "entry");
        let names: Vec<_> = entry
            .calls
            .iter()
            .map(|e| w.fns[e.callee].name.as_str())
            .collect();
        assert!(names.contains(&"helper"), "{names:?}");
        assert!(names.contains(&"assoc"), "{names:?}");
    }

    #[test]
    fn calls_through_local_bindings_produce_no_edges() {
        // `check` is a closure parameter shadowing a workspace free fn of
        // the same name — calling it is not a call to that fn.
        let w = ws("fn check() -> bool { true }\n\
             fn run(check: impl Fn() -> bool) -> bool { check() }\n\
             fn run2() -> bool { let probe = || true; probe() }\n\
             fn run3() -> bool { check() }");
        assert!(node(&w, "run").calls.is_empty());
        assert!(node(&w, "run2").calls.is_empty());
        assert_eq!(node(&w, "run3").calls.len(), 1, "direct call still links");
    }

    #[test]
    fn std_calls_produce_no_edges() {
        let w = ws("fn f(v: Vec<u32>) -> u64 { std::mem::size_of::<u32>() as u64 }");
        assert!(node(&w, "f").calls.is_empty());
    }

    #[test]
    fn macros_are_not_calls() {
        let w = ws("fn fmt_ns() -> String { String::new() }\nfn f() -> String { format!(\"x\") }");
        assert!(node(&w, "f").calls.is_empty());
    }

    #[test]
    fn sink_classification() {
        assert_eq!(
            classify_sink("state_fingerprint", Some("DvvStore")),
            Some(SinkKind::Fingerprint)
        );
        assert_eq!(
            classify_sink("iter_to_depth", None),
            Some(SinkKind::EnumOrder)
        );
        assert_eq!(
            classify_sink("collect", Some("RunReport")),
            Some(SinkKind::Report)
        );
        assert_eq!(classify_sink("collect", None), None);
        assert_eq!(
            classify_sink("explore_all_parallel", None),
            Some(SinkKind::CexSelection)
        );
        assert_eq!(classify_sink("apply", Some("DvvStore")), None);
    }

    #[test]
    fn test_module_fns_are_never_sinks() {
        let w = ws("mod tests { fn explore_everything() {} }");
        assert_eq!(node(&w, "explore_everything").sink, None);
        assert!(node(&w, "explore_everything").in_tests);
    }

    #[test]
    fn side_channel_overrides_apply() {
        let files = [(
            "crates/core/src/spans.rs".to_owned(),
            "use std::time::Instant;\n\
             pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> R {\n\
                 let t = Instant::now(); f()\n\
             }\n\
             pub fn collect<R>(f: impl FnOnce() -> R) -> R { f() }"
                .to_owned(),
        )];
        let w = Workspace::build(&files);
        let timed = node(&w, "timed");
        assert_eq!(timed.gen, 0, "timed is taint-transparent");
        let collect = node(&w, "collect");
        assert_eq!(collect.gen, SourceKind::WallClock.bit());
    }

    #[test]
    fn cross_file_path_calls_resolve_via_crate_hint() {
        let files = [
            (
                "crates/core/src/spans.rs".to_owned(),
                "pub fn span_util() -> u64 { 0 }".to_owned(),
            ),
            (
                "crates/sim/src/obs/report.rs".to_owned(),
                "use haec_core::spans;\nfn gather() -> u64 { spans::span_util() }".to_owned(),
            ),
        ];
        let w = Workspace::build(&files);
        let gather = node(&w, "gather");
        assert_eq!(gather.calls.len(), 1);
        assert_eq!(w.fns[gather.calls[0].callee].name, "span_util");
    }
}
