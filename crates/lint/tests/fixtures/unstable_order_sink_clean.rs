//! Non-firing: the same pipeline with a keyless `sort_unstable` on a
//! totally-ordered element type — instability cannot be observed, so
//! the canonical order really is canonical.

fn rank(xs: &mut Vec<u32>) {
    xs.sort_unstable();
}

pub fn canonical_order(mut xs: Vec<u32>) -> Vec<u32> {
    rank(&mut xs);
    xs
}
