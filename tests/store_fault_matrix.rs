//! Store × fault conformance matrix: every concrete store driven through
//! drop / duplicate / partition schedules from the testkit PRNG, with
//! convergence and spec compliance asserted after quiescence.
//!
//! Fault semantics follow the paper's model. Duplicates and partitions
//! are *delays* — Definition 3's sufficient connectivity still holds, so
//! quiescent runs must converge and comply. Drops genuinely lose
//! messages (outside Definition 3), so dropped-message runs assert only
//! safety of the witness (correctness/causality of what was actually
//! delivered), not convergence.

use haec::model::EventKind;
use haec::prelude::*;
use haec::stores::{CausalRegisterStore, CopsStore, EwFlagStore, MixedStore};
use haec_sim::check_quiescent_agreement;

/// Which checks a store's runs must pass.
#[derive(Copy, Clone, Debug)]
struct Conformance {
    spec: SpecKind,
    /// Check Definition 8 correctness of the witness (in execution order,
    /// or arbitration order for LWW). Off for the dot-arbitrated register
    /// stores, whose arbitration the execution-order LWW checker
    /// misjudges (see E13's notes); their causality is still asserted.
    correct: bool,
    /// Order the history by store arbitration timestamps (LWW-style).
    arbitrated: bool,
    /// Check Definition 12 causal consistency of the witness.
    causal: bool,
}

fn matrix() -> Vec<(Box<dyn StoreFactory>, Conformance)> {
    let causal_full = |spec| Conformance {
        spec,
        correct: true,
        arbitrated: false,
        causal: true,
    };
    vec![
        (
            Box::new(DvvMvrStore) as Box<dyn StoreFactory>,
            causal_full(SpecKind::Mvr),
        ),
        (Box::new(CopsStore), causal_full(SpecKind::Mvr)),
        (Box::new(OrSetStore), causal_full(SpecKind::OrSet)),
        (Box::new(EwFlagStore), causal_full(SpecKind::EwFlag)),
        (
            Box::new(LwwStore),
            Conformance {
                spec: SpecKind::LwwRegister,
                correct: true,
                arbitrated: true,
                causal: false, // eventually but not causally consistent
            },
        ),
        (
            Box::new(CausalRegisterStore),
            Conformance {
                spec: SpecKind::LwwRegister,
                correct: false, // dot arbitration vs execution-order checker
                arbitrated: false,
                causal: true,
            },
        ),
        (
            Box::new(MixedStore::new(1)), // object 0 MVR, object 1 register
            Conformance {
                spec: SpecKind::Mvr,
                correct: false, // register half arbitrates by dot
                arbitrated: false,
                causal: true,
            },
        ),
    ]
}

/// The three fault schedules; drops forfeit the convergence guarantee.
fn fault_schedules(steps: usize) -> Vec<(&'static str, ScheduleConfig, bool)> {
    let base = ScheduleConfig {
        steps,
        drop_prob: 0.0,
        dup_prob: 0.0,
        quiesce_at_end: false, // check_quiescent_agreement drives quiescence
        ..ScheduleConfig::default()
    };
    vec![
        (
            "drop",
            ScheduleConfig {
                drop_prob: 0.2,
                ..base.clone()
            },
            false,
        ),
        (
            "duplicate",
            ScheduleConfig {
                dup_prob: 0.5,
                ..base.clone()
            },
            true,
        ),
        (
            "partition",
            ScheduleConfig {
                partition: Some(Partition {
                    from_step: 0,
                    to_step: 2 * steps / 3,
                    group: vec![0],
                }),
                ..base
            },
            true,
        ),
    ]
}

fn check_compliance(sim: &Simulator, conf: &Conformance, label: &str) {
    let a = if conf.arbitrated {
        sim.abstract_execution_arbitrated()
    } else {
        sim.abstract_execution()
    };
    let a = a.unwrap_or_else(|e| panic!("{label}: witness failed to resolve: {e:?}"));
    if conf.correct {
        let specs = ObjectSpecs::uniform(conf.spec);
        assert!(
            check_correct(&a, &specs).is_ok(),
            "{label}: witness violates the {:?} spec: {}",
            conf.spec,
            a.display()
        );
    }
    if conf.causal {
        assert!(
            causal::check(&a).is_ok(),
            "{label}: witness violates causal consistency: {}",
            a.display()
        );
    }
}

#[test]
fn store_fault_conformance_matrix() {
    let steps = 180;
    for (factory, conf) in matrix() {
        for (fault, sched, expect_convergence) in fault_schedules(steps) {
            for seed in 0..3u64 {
                let label = format!("{} × {fault} (seed {seed})", factory.name());
                let mut sim = Simulator::new(factory.as_ref(), StoreConfig::new(3, 2));
                let mut wl = Workload::new(conf.spec, 3, 2, 0.3, KeyDistribution::Uniform);
                run_schedule(&mut sim, &mut wl, &sched, seed);
                if expect_convergence {
                    assert!(
                        check_quiescent_agreement(&mut sim).is_ok(),
                        "{label}: replicas disagree after quiescence"
                    );
                }
                check_compliance(&sim, &conf, &label);
            }
        }
    }
}

#[test]
fn duplicates_never_double_apply() {
    // Focused variant of the matrix: a counter under heavy duplication
    // must still count each increment exactly once everywhere.
    for seed in 0..5u64 {
        let mut sim = Simulator::new(&CounterStore, StoreConfig::new(3, 1));
        let mut wl = Workload::new(SpecKind::Counter, 3, 1, 0.0, KeyDistribution::Uniform);
        let sched = ScheduleConfig {
            steps: 120,
            drop_prob: 0.0,
            dup_prob: 0.8,
            ..ScheduleConfig::default()
        };
        run_schedule(&mut sim, &mut wl, &sched, seed);
        let incs = sim
            .execution()
            .do_events()
            .iter()
            .filter(|&&e| {
                matches!(
                    sim.execution().event(e).kind,
                    EventKind::Do { op: Op::Inc, .. }
                )
            })
            .count();
        let expected = ReturnValue::values([Value::new(incs as u64)]);
        let x = ObjectId::new(0);
        for r in 0..3 {
            assert_eq!(
                sim.read(ReplicaId::new(r), x),
                expected,
                "seed {seed}: replica {r} miscounted under duplication"
            );
        }
    }
}

#[test]
fn partition_heals_to_agreement_for_every_causal_store() {
    // Long partition, then healing: Definition 3's sufficient
    // connectivity is restored, so every causal store converges.
    for (factory, conf) in matrix() {
        let mut sim = Simulator::new(factory.as_ref(), StoreConfig::new(3, 2));
        let mut wl = Workload::new(conf.spec, 3, 2, 0.3, KeyDistribution::Uniform);
        let sched = ScheduleConfig {
            steps: 200,
            drop_prob: 0.0,
            quiesce_at_end: false,
            partition: Some(Partition {
                from_step: 0,
                to_step: 200,
                group: vec![0, 1],
            }),
            ..ScheduleConfig::default()
        };
        run_schedule(&mut sim, &mut wl, &sched, 13);
        assert!(
            check_quiescent_agreement(&mut sim).is_ok(),
            "{}: disagreement after partition heal",
            factory.name()
        );
    }
}
