//! Explorer-engine comparison: legacy replay-from-scratch enumeration vs
//! the incremental snapshot/restore DFS, with and without state-fingerprint
//! dedup. Each engine runs the same workload — every schedule of a
//! 4-replica, 1-object write/read cluster checked for correctness and
//! causal consistency — and reports schedules per second plus its speedup
//! over the replay baseline. Each engine is timed `--runs` times and the
//! fastest run is reported, to suppress scheduler noise.
//!
//! Usage:
//!
//! ```text
//! cargo bench --bench explore                  # human-readable, depth 6
//! cargo bench --bench explore -- --json        # JSON (for BENCH_explore.json)
//! cargo bench --bench explore -- --smoke       # depth 3 agreement check
//! cargo bench --bench explore -- --depth 5 --replicas 3 --runs 1
//! cargo bench --bench explore -- --threads 2 --threads 4   # add par-N rows
//! ```
//!
//! `--threads N` (repeatable) adds a `par-N` row for the deterministic
//! parallel engine; without the flag the default is 1, 2 and 4 (just 2 in
//! `--smoke` mode). Every engine, parallel included, must produce the
//! replay engine's exact schedule count before timings are printed.

use haec_core::{causal, check_correct, ObjectSpecs, SpecKind};
use haec_model::{Op, StoreConfig, Value};
use haec_sim::exhaustive::{
    explore_all, explore_all_parallel, explore_all_replay, ExhaustiveConfig, ExhaustiveReport,
    ParallelConfig,
};
use haec_sim::Simulator;
use haec_stores::DvvMvrStore;
use std::time::Instant;

fn causal_check(sim: &Simulator) -> bool {
    let Ok(a) = sim.abstract_execution() else {
        return false;
    };
    check_correct(&a, &ObjectSpecs::uniform(SpecKind::Mvr)).is_ok() && causal::check(&a).is_ok()
}

struct EngineRun {
    name: String,
    schedules: usize,
    dedup_hits: u64,
    dedup_misses: u64,
    seconds: f64,
}

impl EngineRun {
    fn per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.schedules as f64 / self.seconds
        } else {
            f64::INFINITY
        }
    }
}

fn run_engine(name: &str, runs: usize, mut f: impl FnMut() -> ExhaustiveReport) -> EngineRun {
    let mut best: Option<EngineRun> = None;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let report = f();
        let seconds = t.elapsed().as_secs_f64();
        assert!(
            report.all_passed(),
            "{name}: workload unexpectedly produced a counterexample"
        );
        let run = EngineRun {
            name: name.to_owned(),
            schedules: report.schedules,
            dedup_hits: report.dedup_hits,
            dedup_misses: report.dedup_misses,
            seconds,
        };
        if best.as_ref().is_none_or(|b| run.seconds < b.seconds) {
            best = Some(run);
        }
    }
    best.expect("at least one run")
}

fn main() {
    let mut json = false;
    let mut depth = 6usize;
    let mut replicas = 4usize;
    let mut runs = 3usize;
    let mut thread_counts: Vec<usize> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--smoke" => {
                depth = 3;
                replicas = 2;
                runs = 1;
            }
            "--depth" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    depth = n;
                }
            }
            "--replicas" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    replicas = n;
                }
            }
            "--runs" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    runs = n;
                }
            }
            "--threads" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    thread_counts.push(n);
                }
            }
            _ => {}
        }
    }

    let config = ExhaustiveConfig {
        store_config: StoreConfig::new(replicas, 1),
        ops: vec![Op::Write(Value::new(0)), Op::Read],
        depth,
        max_schedules: usize::MAX,
        dedup: false,
    };
    let dedup_config = ExhaustiveConfig {
        dedup: true,
        ..config.clone()
    };

    if thread_counts.is_empty() {
        thread_counts = if depth <= 3 { vec![2] } else { vec![1, 2, 4] };
    }

    let replay = run_engine("replay", runs, || {
        explore_all_replay(&DvvMvrStore, &config, &mut causal_check)
    });
    let dfs = run_engine("dfs", runs, || {
        explore_all(&DvvMvrStore, &config, &mut causal_check)
    });
    let dedup = run_engine("dfs-dedup", runs, || {
        explore_all(&DvvMvrStore, &dedup_config, &mut causal_check)
    });

    // The engines must agree before any timing claim means anything.
    assert_eq!(replay.schedules, dfs.schedules, "dfs diverges from replay");
    assert_eq!(
        replay.schedules, dedup.schedules,
        "dedup diverges from replay"
    );

    let mut engine_runs = vec![replay, dfs, dedup];
    for &t in &thread_counts {
        let par = run_engine(&format!("par-{t}"), runs, || {
            explore_all_parallel(
                &DvvMvrStore,
                &config,
                &ParallelConfig::with_threads(t),
                &causal_check,
            )
        });
        assert_eq!(
            engine_runs[0].schedules, par.schedules,
            "par-{t} diverges from replay"
        );
        engine_runs.push(par);
    }

    let runs = engine_runs;
    let base = runs[0].per_sec();
    if json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"suite\": \"explore\",\n");
        out.push_str("  \"store\": \"dvv-mvr\",\n");
        out.push_str(&format!("  \"depth\": {depth},\n"));
        out.push_str(&format!("  \"replicas\": {replicas},\n"));
        out.push_str(&format!("  \"schedules\": {},\n", runs[0].schedules));
        out.push_str("  \"engines\": [\n");
        for (i, r) in runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seconds\": {:.6}, \"schedules_per_sec\": {:.1}, \
                 \"speedup_vs_replay\": {:.2}, \"dedup_hits\": {}, \"dedup_misses\": {}}}{}\n",
                r.name,
                r.seconds,
                r.per_sec(),
                r.per_sec() / base,
                r.dedup_hits,
                r.dedup_misses,
                if i + 1 < runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        print!("{out}");
    } else {
        println!(
            "explore: {} schedules at depth {depth}, {replicas} replicas (dvv-mvr, causal check)",
            runs[0].schedules
        );
        for r in &runs {
            println!(
                "  {:<10} {:>9.3} s  {:>12.0} schedules/s  {:>6.2}x vs replay",
                r.name,
                r.seconds,
                r.per_sec(),
                r.per_sec() / base,
            );
        }
    }
}
