//! Driving a scenario member against a live simulator.

use super::Pat;
use crate::simulator::Simulator;
use haec_model::{Op, ReplicaId, Value};

/// Runs one hole-free member against `sim`, one pattern per step.
///
/// Semantics:
///
/// - `Op` patterns uniquify their payload by step position with the
///   **same** convention as the exhaustive engine's `apply` (writes get
///   `Value(1000 + step)`, set elements cycle through a pool of three),
///   so family members and exhaustive schedules that perform the same
///   steps produce identical executions.
/// - `DeliverOldest`/`DeliverNewest` deliver the first/last in-flight
///   copy whose sender→addressee edge does not cross the active
///   partition window; drops and duplications always target the oldest
///   copy. All four are no-ops when nothing qualifies, so filters — not
///   runtime panics — decide which members are meaningful.
/// - Partition windows are tracked here (the simulator only records
///   them): `PartitionStart` heals any open window first, and `Quiesce`
///   heals before driving rounds — quiescence assumes Definition 3's
///   sufficient connectivity, which an open window would violate.
///
/// # Panics
///
/// Panics on an unplugged [`Pat::Hole`].
pub fn run_member(sim: &mut Simulator, member: &[Pat]) {
    let mut active: Option<Vec<u32>> = None;
    for (step, pat) in member.iter().enumerate() {
        match pat {
            Pat::Hole(name) => panic!("run_member: unplugged hole `?{name}` at step {step}"),
            Pat::Op(replica, obj, op) => {
                let op = match op {
                    Op::Write(_) => Op::Write(Value::new(1000 + step as u64)),
                    Op::Add(_) => Op::Add(Value::new(1 + (step % 3) as u64)),
                    Op::Remove(_) => Op::Remove(Value::new(1 + (step % 3) as u64)),
                    other => other.clone(),
                };
                sim.do_op(*replica, *obj, op);
            }
            Pat::Flush(replica) => {
                sim.flush(*replica);
            }
            Pat::DeliverOldest => {
                if let Some(i) = deliverable(sim, active.as_deref(), false) {
                    sim.deliver(i);
                }
            }
            Pat::DeliverNewest => {
                if let Some(i) = deliverable(sim, active.as_deref(), true) {
                    sim.deliver(i);
                }
            }
            Pat::DropOldest => {
                if !sim.inflight().is_empty() {
                    sim.drop_inflight(0);
                }
            }
            Pat::DupOldest => {
                if !sim.inflight().is_empty() {
                    sim.duplicate_inflight(0);
                }
            }
            Pat::PartitionStart(group) => {
                if active.take().is_some() {
                    sim.note_partition_heal();
                }
                let indices: Vec<usize> = group.iter().map(|&g| g as usize).collect();
                sim.note_partition_start(&indices);
                active = Some(group.clone());
            }
            Pat::PartitionHeal => {
                if active.take().is_some() {
                    sim.note_partition_heal();
                }
            }
            Pat::Quiesce => {
                if active.take().is_some() {
                    sim.note_partition_heal();
                }
                sim.quiesce();
            }
        }
    }
}

/// Index of the oldest (or newest) in-flight copy deliverable under the
/// active partition window: the sender and the addressee must be on the
/// same side.
fn deliverable(sim: &Simulator, active: Option<&[u32]>, newest: bool) -> Option<usize> {
    let ok = |i: usize| {
        let copy = sim.inflight()[i];
        let Some(group) = active else { return true };
        let sender = sim.execution().message(copy.msg).sender;
        let side = |r: ReplicaId| group.contains(&(r.index() as u32));
        side(sender) == side(copy.to)
    };
    let n = sim.inflight().len();
    if newest {
        (0..n).rev().find(|&i| ok(i))
    } else {
        (0..n).find(|&i| ok(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_model::{ObjectId, StoreConfig};
    use haec_stores::DvvMvrStore;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn x() -> ObjectId {
        ObjectId::new(0)
    }

    fn w(i: u32) -> Pat {
        Pat::Op(r(i), x(), Op::Write(Value::new(0)))
    }

    #[test]
    fn ops_flush_deliver_converge() {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 1));
        run_member(
            &mut sim,
            &[
                w(0),
                Pat::Flush(r(0)),
                Pat::DeliverOldest,
                Pat::DeliverOldest,
            ],
        );
        // The uniquified write v1000 reached both peers.
        let expected = sim.read(r(0), x());
        assert_eq!(sim.read(r(1), x()), expected);
        assert_eq!(sim.read(r(2), x()), expected);
        assert!(sim.inflight().is_empty());
    }

    #[test]
    fn write_uniquification_matches_the_exhaustive_engine() {
        use crate::exhaustive::{replay, Action, ExhaustiveConfig};
        let config = ExhaustiveConfig {
            store_config: StoreConfig::new(2, 1),
            ..ExhaustiveConfig::default()
        };
        let via_actions = replay(
            &DvvMvrStore,
            &config,
            &[
                Action::Do(r(0), x(), Op::Write(Value::new(0))),
                Action::Flush(r(0)),
                Action::Deliver(0),
            ],
        );
        let mut via_member = Simulator::new(&DvvMvrStore, StoreConfig::new(2, 1));
        run_member(
            &mut via_member,
            &[w(0), Pat::Flush(r(0)), Pat::DeliverOldest],
        );
        assert_eq!(
            crate::trace::to_text(via_actions.execution()),
            crate::trace::to_text(via_member.execution())
        );
    }

    #[test]
    fn partition_blocks_delivery_until_heal() {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 1));
        // Replica 2 is isolated; the copy addressed to it must not move.
        run_member(
            &mut sim,
            &[
                Pat::PartitionStart(vec![2]),
                w(0),
                Pat::Flush(r(0)),
                Pat::DeliverOldest, // → replica 1 (copy to 2 is blocked)
                Pat::DeliverOldest, // no deliverable copy left: no-op
            ],
        );
        assert_eq!(sim.inflight().len(), 1);
        assert_eq!(sim.inflight()[0].to, r(2));
        run_member(&mut sim, &[Pat::PartitionHeal, Pat::DeliverOldest]);
        assert!(sim.inflight().is_empty());
    }

    #[test]
    fn deliver_newest_skips_blocked_copies() {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 1));
        run_member(
            &mut sim,
            &[
                w(0),
                Pat::Flush(r(0)), // copies to 1 and 2, in that order
                Pat::PartitionStart(vec![2]),
                Pat::DeliverNewest, // newest deliverable is the copy to 1
            ],
        );
        assert_eq!(sim.inflight().len(), 1);
        assert_eq!(sim.inflight()[0].to, r(2));
    }

    #[test]
    fn faults_target_the_oldest_copy() {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 1));
        run_member(&mut sim, &[w(0), Pat::Flush(r(0)), Pat::DupOldest]);
        assert_eq!(sim.inflight().len(), 3);
        run_member(&mut sim, &[Pat::DropOldest]);
        assert_eq!(sim.inflight().len(), 2);
        // Fault patterns on an empty network are no-ops.
        let mut idle = Simulator::new(&DvvMvrStore, StoreConfig::new(2, 1));
        run_member(
            &mut idle,
            &[Pat::DropOldest, Pat::DupOldest, Pat::DeliverOldest],
        );
        assert!(idle.inflight().is_empty());
    }

    #[test]
    fn quiesce_heals_and_converges() {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 1));
        run_member(
            &mut sim,
            &[
                Pat::PartitionStart(vec![0]),
                w(0),
                Pat::Flush(r(0)),
                Pat::Quiesce,
            ],
        );
        assert!(sim.inflight().is_empty());
        let expected = sim.read(r(0), x());
        assert_eq!(sim.read(r(1), x()), expected);
        assert_eq!(sim.read(r(2), x()), expected);
    }

    #[test]
    #[should_panic(expected = "unplugged hole")]
    fn unplugged_hole_panics() {
        let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(2, 1));
        run_member(&mut sim, &[Pat::Hole("a".into())]);
    }
}
