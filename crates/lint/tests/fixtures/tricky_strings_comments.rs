//! Non-firing: lint tokens inside strings and comments are text, not
//! code. `std::collections::HashMap`, `Instant::now()` and `println!` in
//! a doc comment are prose.

// std::collections::HashMap in a line comment
/* std::time::Instant::now() in a block comment
   /* nested: println!("x") and std::env::var("HOME") */
   still inside the outer comment: dbg!(1) */

fn texts() -> (String, &'static str, &'static str) {
    let s = "use std::collections::HashMap; println!(\"escaped\")".to_string();
    let r = r#"std::time::SystemTime::now() and "quoted" dbg!(1)"#;
    let b = "std::thread::spawn and RandomState and eprintln!";
    (s, r, b)
}
