//! A bounded, structured event log.
//!
//! [`EventLog`] keeps the most recent `capacity` simulator events in a ring
//! buffer, plus a count of everything it has seen. It is the cheap "flight
//! recorder" attachment: long runs keep memory bounded while the tail of
//! the transcript stays inspectable.

use super::{DoEvent, FaultEvent, Observer, ReceiveEvent, SendEvent};
use haec_model::{Dot, MsgId, ObjectId, Op, ReplicaId};
use std::collections::VecDeque;
use std::fmt;

/// One recorded simulator event, owned (no borrows into the simulator).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// A client operation.
    Do {
        /// Event index in the transcript.
        step: usize,
        /// Invoking replica.
        replica: ReplicaId,
        /// Target object.
        obj: ObjectId,
        /// The operation.
        op: Op,
        /// The update's dot, `None` for reads.
        dot: Option<Dot>,
    },
    /// A broadcast.
    Send {
        /// Event index in the transcript.
        step: usize,
        /// Broadcasting replica.
        replica: ReplicaId,
        /// The message.
        msg: MsgId,
        /// Payload size in bits.
        bits: usize,
    },
    /// A delivery.
    Receive {
        /// Event index in the transcript.
        step: usize,
        /// Receiving replica.
        replica: ReplicaId,
        /// The message.
        msg: MsgId,
        /// Payload size in bits.
        bits: usize,
    },
    /// A dropped in-flight copy.
    Drop {
        /// Events recorded when the drop happened.
        step: usize,
        /// The message.
        msg: MsgId,
        /// The addressee of the dropped copy.
        to: ReplicaId,
    },
    /// A duplicated in-flight copy.
    Duplicate {
        /// Events recorded when the duplication happened.
        step: usize,
        /// The message.
        msg: MsgId,
        /// The addressee of the duplicated copy.
        to: ReplicaId,
    },
    /// A partition transition.
    PartitionChange {
        /// Events recorded at the transition.
        step: usize,
        /// `true` when a partition became active, `false` when it healed.
        active: bool,
    },
    /// A quiescence drive finished.
    Quiesce {
        /// Flush-and-deliver rounds used.
        rounds: usize,
        /// Whether the cluster quiesced within the round cap.
        reached: bool,
    },
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogRecord::Do {
                step,
                replica,
                obj,
                op,
                dot,
            } => {
                write!(f, "[{step}] do {replica} {obj} {op}")?;
                if let Some(d) = dot {
                    write!(f, " dot={d}")?;
                }
                Ok(())
            }
            LogRecord::Send {
                step,
                replica,
                msg,
                bits,
            } => write!(f, "[{step}] send {replica} {msg} {bits}b"),
            LogRecord::Receive {
                step,
                replica,
                msg,
                bits,
            } => write!(f, "[{step}] recv {replica} {msg} {bits}b"),
            LogRecord::Drop { step, msg, to } => write!(f, "[{step}] drop {msg} -> {to}"),
            LogRecord::Duplicate { step, msg, to } => {
                write!(f, "[{step}] dup {msg} -> {to}")
            }
            LogRecord::PartitionChange { step, active } => {
                write!(
                    f,
                    "[{step}] partition {}",
                    if *active { "start" } else { "heal" }
                )
            }
            LogRecord::Quiesce { rounds, reached } => {
                write!(
                    f,
                    "quiesce rounds={rounds} {}",
                    if *reached { "reached" } else { "capped" }
                )
            }
        }
    }
}

/// A ring buffer of the most recent [`LogRecord`]s.
#[derive(Clone, Debug)]
pub struct EventLog {
    capacity: usize,
    buf: VecDeque<LogRecord>,
    seen: u64,
}

impl EventLog {
    /// A log retaining at most `capacity` records (0 records nothing).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(1024)),
            seen: 0,
        }
    }

    fn push(&mut self, rec: LogRecord) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(rec);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &LogRecord> {
        self.buf.iter()
    }

    /// Total number of events observed (including evicted ones).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Events observed but no longer retained — evicted by the drop-oldest
    /// ring policy (or never stored, with capacity 0).
    pub fn dropped(&self) -> u64 {
        self.seen - self.buf.len() as u64
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Observer for EventLog {
    fn on_do(&mut self, ev: &DoEvent<'_>) {
        self.push(LogRecord::Do {
            step: ev.step,
            replica: ev.replica,
            obj: ev.obj,
            op: ev.op.clone(),
            dot: ev.dot,
        });
    }
    fn on_send(&mut self, ev: &SendEvent) {
        self.push(LogRecord::Send {
            step: ev.step,
            replica: ev.replica,
            msg: ev.msg,
            bits: ev.bits,
        });
    }
    fn on_receive(&mut self, ev: &ReceiveEvent) {
        self.push(LogRecord::Receive {
            step: ev.step,
            replica: ev.replica,
            msg: ev.msg,
            bits: ev.bits,
        });
    }
    fn on_drop(&mut self, ev: &FaultEvent) {
        self.push(LogRecord::Drop {
            step: ev.step,
            msg: ev.msg,
            to: ev.to,
        });
    }
    fn on_duplicate(&mut self, ev: &FaultEvent) {
        self.push(LogRecord::Duplicate {
            step: ev.step,
            msg: ev.msg,
            to: ev.to,
        });
    }
    fn on_partition_change(&mut self, step: usize, active: bool) {
        self.push(LogRecord::PartitionChange { step, active });
    }
    fn on_quiesce(&mut self, rounds: usize, reached: bool) {
        self.push(LogRecord::Quiesce { rounds, reached });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_model::ReturnValue;

    fn do_ev(step: usize) -> LogRecord {
        LogRecord::Do {
            step,
            replica: ReplicaId::new(0),
            obj: ObjectId::new(0),
            op: Op::Read,
            dot: None,
        }
    }

    #[test]
    fn bounded_eviction_keeps_newest() {
        let mut log = EventLog::new(2);
        for step in 0..5 {
            log.push(do_ev(step));
        }
        assert_eq!(log.total_seen(), 5);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.capacity(), 2);
        let steps: Vec<usize> = log
            .records()
            .map(|r| match r {
                LogRecord::Do { step, .. } => *step,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(steps, vec![3, 4]);
    }

    #[test]
    fn zero_capacity_counts_without_storing() {
        let mut log = EventLog::new(0);
        log.push(do_ev(0));
        assert_eq!(log.total_seen(), 1);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.records().count(), 0);
    }

    #[test]
    fn observer_hooks_record_every_kind() {
        let mut log = EventLog::new(16);
        let rval = ReturnValue::empty();
        log.on_do(&DoEvent {
            step: 0,
            replica: ReplicaId::new(0),
            obj: ObjectId::new(1),
            op: &Op::Read,
            rval: &rval,
            dot: None,
            visible: &[],
        });
        log.on_send(&SendEvent {
            step: 1,
            replica: ReplicaId::new(0),
            msg: MsgId::new(0),
            bits: 16,
        });
        log.on_receive(&ReceiveEvent {
            step: 2,
            replica: ReplicaId::new(1),
            msg: MsgId::new(0),
            bits: 16,
            send_step: 1,
        });
        log.on_drop(&FaultEvent {
            step: 3,
            msg: MsgId::new(0),
            to: ReplicaId::new(2),
        });
        log.on_duplicate(&FaultEvent {
            step: 3,
            msg: MsgId::new(0),
            to: ReplicaId::new(2),
        });
        log.on_partition_change(3, true);
        log.on_quiesce(2, true);
        assert_eq!(log.total_seen(), 7);
        let rendered: Vec<String> = log.records().map(|r| r.to_string()).collect();
        assert!(rendered[0].contains("do"));
        assert!(rendered[1].contains("send"));
        assert!(rendered[2].contains("recv"));
        assert!(rendered[3].contains("drop"));
        assert!(rendered[4].contains("dup"));
        assert!(rendered[5].contains("partition start"));
        assert!(rendered[6].contains("quiesce"));
    }
}
