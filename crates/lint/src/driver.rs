//! The lint driver: per-file token pass, interprocedural taint pass,
//! allow-comment handling, policy application and workspace walking.
//!
//! Pipeline: per file, tokenize → collect `haec-lint:` control comments →
//! collect `use` declarations (each import is checked once, at the `use`
//! site) → scan call sites for qualified paths, print macros and
//! hash-collection iteration. Then one workspace-wide semantic pass
//! ([`crate::callgraph`] + [`crate::taint`]) adds source→sink flow
//! diagnostics, attributed to the file holding the sink. Finally, per
//! file: suppress diagnostics covered by a well-formed allow comment
//! (tracking which allow legs actually suppressed something — unused legs
//! raise `dead-allow`) → drop lints the crate's policy does not deny. The
//! result is deterministic: files are walked in sorted order and
//! diagnostics are sorted by position.

use crate::callgraph::Workspace;
use crate::diag::{Diagnostic, LintReport};
use crate::lints::{crate_key, thread_exempt, wall_clock_exempt, Lint, Policy};
use crate::resolve::{collect_uses, Resolver};
use crate::tokenizer::{tokenize, Tok, TokKind};
use haec_core::det::{DetMap, DetSet};
use std::io;
use std::path::{Path, PathBuf};

const HASH_MAP_TYPES: [&str; 2] = [
    "std::collections::HashMap",
    "std::collections::hash_map::HashMap",
];
const HASH_SET_TYPES: [&str; 2] = [
    "std::collections::HashSet",
    "std::collections::hash_set::HashSet",
];
const WALL_CLOCK_TYPES: [&str; 2] = ["std::time::Instant", "std::time::SystemTime"];
const RANDOM_STATE_TYPES: [&str; 2] = [
    "std::collections::hash_map::RandomState",
    "std::hash::RandomState",
];
const AMBIENT_MODULES: [&str; 2] = ["std::env", "std::thread"];

/// Bare names worth resolving through glob imports.
const NAMES_OF_INTEREST: [&str; 5] = ["HashMap", "HashSet", "Instant", "SystemTime", "RandomState"];

const PRINT_MACROS: [&str; 3] = ["println", "eprintln", "dbg"];

const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Is the path (or a parent of it) one of `targets`?
fn path_is(path: &str, targets: &[&str]) -> bool {
    targets
        .iter()
        .any(|t| path == *t || (path.starts_with(t) && path[t.len()..].starts_with("::")))
}

/// Does this fully-qualified path trigger any catalog lint? (Exposed for
/// the resolver's glob handling.)
#[must_use]
pub fn is_interesting_path(path: &str) -> bool {
    classify_path(path).is_some()
}

/// Maps a fully-qualified path occurrence to the lint it violates.
fn classify_path(path: &str) -> Option<(Lint, String)> {
    let path = path.strip_prefix("::").unwrap_or(path);
    if path_is(path, &RANDOM_STATE_TYPES) {
        return Some((
            Lint::AmbientEntropy,
            format!("`{path}` seeds hashing from ambient entropy"),
        ));
    }
    if path_is(path, &HASH_MAP_TYPES) {
        return Some((
            Lint::NondeterministicCollection,
            format!("`{path}` has nondeterministic iteration order; use `haec_core::det::DetMap`"),
        ));
    }
    if path_is(path, &HASH_SET_TYPES) {
        return Some((
            Lint::NondeterministicCollection,
            format!("`{path}` has nondeterministic iteration order; use `haec_core::det::DetSet`"),
        ));
    }
    if path_is(path, &WALL_CLOCK_TYPES) {
        return Some((
            Lint::WallClock,
            format!(
                "`{path}` reads the wall clock; timing is sanctioned only in \
                 `testkit::bench` and `core::spans`"
            ),
        ));
    }
    if path_is(path, &AMBIENT_MODULES) {
        return Some((
            Lint::AmbientEntropy,
            format!("`{path}` depends on ambient process state"),
        ));
    }
    None
}

/// Is the resolved path under `std::thread`? The worker-pool module
/// exemption ([`thread_exempt`]) lifts only this slice of the
/// ambient-entropy lint — `std::env` and `RandomState` stay denied there.
fn is_thread_path(path: &str) -> bool {
    path_is(path.strip_prefix("::").unwrap_or(path), &["std::thread"])
}

/// Is the resolved path a hash-collection *type* (for iteration
/// tracking)?
fn is_hash_collection_type(path: &str) -> bool {
    let path = path.strip_prefix("::").unwrap_or(path);
    HASH_MAP_TYPES.contains(&path) || HASH_SET_TYPES.contains(&path)
}

/// Parses a comment body as a `haec-lint:` control comment.
///
/// Returns `None` for ordinary comments, `Some(Ok(lints))` for a
/// well-formed `haec-lint: allow(<lint>[, <lint>]*): <reason>`, and
/// `Some(Err(why))` for anything that names the tool but does not parse.
fn parse_allow(comment: &str) -> Option<Result<Vec<Lint>, String>> {
    // Doc comments arrive as `/ text` or `! text`; strip the sigils.
    let t = comment.trim_start_matches(['/', '!']).trim();
    let rest = t.strip_prefix("haec-lint")?;
    // Prose that merely mentions the tool (docs, usage text) is not a
    // control comment: those start `haec-lint: …`. A missing colon with an
    // `allow(` present is a typo worth flagging, though.
    if rest.trim_start().strip_prefix(':').is_none() && !rest.contains("allow(") {
        return None;
    }
    let inner = || -> Result<Vec<Lint>, String> {
        let rest = rest
            .trim_start()
            .strip_prefix(':')
            .ok_or("expected `:` after `haec-lint`")?;
        let rest = rest
            .trim_start()
            .strip_prefix("allow")
            .ok_or("expected `allow(<lint>): <reason>`")?;
        let rest = rest
            .trim_start()
            .strip_prefix('(')
            .ok_or("expected `(` after `allow`")?;
        let close = rest.find(')').ok_or("unclosed `(`")?;
        let names = &rest[..close];
        let after = rest[close + 1..].trim_start();
        let reason = after
            .strip_prefix(':')
            .ok_or("missing `: <reason>` after `allow(…)`")?;
        if reason.trim().is_empty() {
            return Err("empty reason — justify the suppression".into());
        }
        let mut lints = Vec::new();
        for name in names.split(',') {
            let name = name.trim();
            let lint = Lint::from_name(name).ok_or(format!("unknown lint `{name}`"))?;
            if lint == Lint::MalformedAllow {
                return Err("`malformed-allow` cannot be suppressed".into());
            }
            lints.push(lint);
        }
        if lints.is_empty() {
            return Err("empty lint list".into());
        }
        Ok(lints)
    };
    Some(inner())
}

/// Lints one file under the policy its workspace-relative path implies.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    lint_source_with_policy(rel_path, source, Policy::for_crate(crate_key(rel_path)))
}

/// Lints one file under an explicit policy (fixtures use deny-all). The
/// taint pass runs file-locally here; `lint_workspace` runs it globally.
#[must_use]
pub fn lint_source_with_policy(rel_path: &str, source: &str, policy: Policy) -> Vec<Diagnostic> {
    let (mut diags, allows) = token_pass(rel_path, source);
    let ws = Workspace::build(&[(rel_path.to_owned(), source.to_owned())]);
    diags.extend(crate::taint::analyze(&ws));
    finish_file(rel_path, &policy, diags, &allows)
}

/// Lints one file with the token-level rules only — the PR 3 pass. Kept
/// callable so tests can prove which findings *require* the taint pass.
#[must_use]
pub fn lint_source_token_level(rel_path: &str, source: &str, policy: &Policy) -> Vec<Diagnostic> {
    let (diags, allows) = token_pass(rel_path, source);
    finish_file(rel_path, policy, diags, &allows)
}

/// A well-formed `haec-lint: allow(…): reason` comment.
pub(crate) struct AllowComment {
    line: u32,
    end_line: u32,
    col: u32,
    lints: Vec<Lint>,
}

/// The per-file token pass: control comments, import checks, call-site
/// and iteration scans. Returns raw (unsuppressed, unfiltered)
/// diagnostics plus the allow comments for [`finish_file`].
fn token_pass(rel_path: &str, source: &str) -> (Vec<Diagnostic>, Vec<AllowComment>) {
    let toks = tokenize(source);
    let mut diags: Vec<Diagnostic> = Vec::new();

    // Control comments: collect well-formed allows, flag malformed.
    let mut allows: Vec<AllowComment> = Vec::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        match parse_allow(&t.text) {
            None => {}
            Some(Err(why)) => diags.push(Diagnostic {
                file: rel_path.to_owned(),
                line: t.line,
                col: t.col,
                lint: Lint::MalformedAllow,
                message: format!("malformed haec-lint control comment: {why}"),
                suppressed: false,
            }),
            Some(Ok(lints)) => allows.push(AllowComment {
                line: t.line,
                end_line: t.end_line,
                col: t.col,
                lints,
            }),
        }
    }

    // Imports: each interesting import fires once, at the `use` site.
    let (resolver, imports, use_ranges) = collect_uses(&toks);
    for u in &imports {
        if thread_exempt(rel_path) && is_thread_path(&u.path) {
            continue;
        }
        if let Some((lint, message)) = classify_path(&u.path) {
            diags.push(Diagnostic {
                file: rel_path.to_owned(),
                line: u.line,
                col: u.col,
                lint,
                message,
                suppressed: false,
            });
        }
    }

    scan_call_sites(rel_path, &toks, &resolver, &use_ranges, &mut diags);
    scan_unordered_iteration(rel_path, &toks, &resolver, &mut diags);
    (diags, allows)
}

/// Suppression, the dead-allow meta-lint, policy filtering and sorting.
///
/// Order matters: exemptions and policy run *before* suppression so that
/// allow-leg usage is counted only against findings that would actually
/// be reported here — an allow for a lint the crate's policy never denies
/// (or that a module exemption already silences) suppresses nothing and
/// is flagged `dead-allow`.
fn finish_file(
    rel_path: &str,
    policy: &Policy,
    mut diags: Vec<Diagnostic>,
    allows: &[AllowComment],
) -> Vec<Diagnostic> {
    diags.retain(|d| {
        policy.denies(d.lint)
            && !(d.lint == Lint::WallClock && wall_clock_exempt(rel_path))
            && !(d.lint == Lint::TaintedFingerprint && wall_clock_exempt(rel_path))
    });

    // Suppression: an allow on line L covers diagnostics on L (trailing
    // comment) through L+1 (comment above the statement); block comments
    // extend through their end line. Track which legs fired.
    let mut used: Vec<Vec<bool>> = allows.iter().map(|a| vec![false; a.lints.len()]).collect();
    for d in &mut diags {
        if d.lint == Lint::MalformedAllow || d.lint == Lint::DeadAllow {
            continue;
        }
        for (ai, a) in allows.iter().enumerate() {
            if d.line >= a.line && d.line <= a.end_line + 1 {
                for (li, l) in a.lints.iter().enumerate() {
                    if *l == d.lint {
                        d.suppressed = true;
                        used[ai][li] = true;
                    }
                }
            }
        }
    }

    // Dead-allow: every leg must earn its keep.
    for (ai, a) in allows.iter().enumerate() {
        for (li, l) in a.lints.iter().enumerate() {
            if !used[ai][li] {
                diags.push(Diagnostic {
                    file: rel_path.to_owned(),
                    line: a.line,
                    col: a.col,
                    lint: Lint::DeadAllow,
                    message: format!(
                        "allow({}) suppresses nothing — remove the stale suppression \
                         so the inventory cannot rot",
                        l.name()
                    ),
                    suppressed: false,
                });
            }
        }
    }

    diags.sort_by(|a, b| {
        (a.line, a.col, a.lint, &a.message).cmp(&(b.line, b.col, b.lint, &b.message))
    });
    diags
}

/// Scans non-`use` code for qualified-path occurrences and print macros.
fn scan_call_sites(
    rel_path: &str,
    toks: &[Tok],
    resolver: &Resolver,
    use_ranges: &[(usize, usize)],
    diags: &mut Vec<Diagnostic>,
) {
    let in_use = |i: usize| use_ranges.iter().any(|&(s, e)| i >= s && i < e);
    let mut prev_code: Option<usize> = None;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Comment {
            i += 1;
            continue;
        }
        if in_use(i) || toks[i].kind != TokKind::Ident {
            prev_code = Some(i);
            i += 1;
            continue;
        }
        // A method or field name is not a path start.
        if prev_code.is_some_and(|p| toks[p].kind == TokKind::Punct('.')) {
            prev_code = Some(i);
            i += 1;
            continue;
        }
        let start = i;
        let mut segments = vec![toks[i].text.clone()];
        let mut j = i + 1;
        while j + 2 < toks.len()
            && toks[j].kind == TokKind::Punct(':')
            && toks[j + 1].kind == TokKind::Punct(':')
            && toks[j + 2].kind == TokKind::Ident
        {
            segments.push(toks[j + 2].text.clone());
            j += 3;
        }
        if segments.len() == 1
            && PRINT_MACROS.contains(&segments[0].as_str())
            && toks.get(j).is_some_and(|t| t.kind == TokKind::Punct('!'))
        {
            diags.push(Diagnostic {
                file: rel_path.to_owned(),
                line: toks[start].line,
                col: toks[start].col,
                lint: Lint::StrayPrint,
                message: format!(
                    "`{}!` prints from library code; route output through `obs` observers",
                    segments[0]
                ),
                suppressed: false,
            });
        } else {
            let full = resolver.resolve(&segments, &NAMES_OF_INTEREST);
            if let Some((lint, message)) = classify_path(&full) {
                if thread_exempt(rel_path) && is_thread_path(&full) {
                    prev_code = Some(j - 1);
                    i = j;
                    continue;
                }
                diags.push(Diagnostic {
                    file: rel_path.to_owned(),
                    line: toks[start].line,
                    col: toks[start].col,
                    lint,
                    message,
                    suppressed: false,
                });
            }
        }
        prev_code = Some(j - 1);
        i = j;
    }
}

/// Tracks bindings whose declared or constructed type is a raw hash
/// collection, then flags iteration over them. Flow-insensitive and
/// file-local by design: it catches collections that *escaped* the
/// wrappers (parameters, struct fields, std API returns) even where the
/// construction itself is out of view.
fn scan_unordered_iteration(
    rel_path: &str,
    toks: &[Tok],
    resolver: &Resolver,
    diags: &mut Vec<Diagnostic>,
) {
    for (line, col, message) in unordered_iteration_sites(toks, resolver) {
        diags.push(Diagnostic {
            file: rel_path.to_owned(),
            line,
            col,
            lint: Lint::UnorderedIteration,
            message,
            suppressed: false,
        });
    }
}

/// The positions (and messages) where hash-order iteration occurs; the
/// taint pass reuses these as `UnorderedIter` source sites.
pub(crate) fn unordered_iteration_sites(
    toks: &[Tok],
    resolver: &Resolver,
) -> Vec<(u32, u32, String)> {
    let mut sites = Vec::new();
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let ident = |k: usize| -> Option<&str> {
        code.get(k)
            .and_then(|&i| (toks[i].kind == TokKind::Ident).then_some(toks[i].text.as_str()))
    };
    let punct = |k: usize, c: char| -> bool {
        code.get(k)
            .is_some_and(|&i| toks[i].kind == TokKind::Punct(c))
    };

    // Reads the path at `k`, skipping leading `&`/`mut`/`::`; returns the
    // resolved path and the index just past it.
    let path_at = |mut k: usize| -> Option<(String, usize)> {
        while punct(k, '&') || ident(k) == Some("mut") || punct(k, ':') {
            k += 1;
        }
        let first = ident(k)?;
        let mut segments = vec![first.to_owned()];
        let mut j = k + 1;
        while punct(j, ':') && punct(j + 1, ':') {
            let Some(seg) = ident(j + 2) else { break };
            segments.push(seg.to_owned());
            j += 3;
        }
        Some((resolver.resolve(&segments, &NAMES_OF_INTEREST), j))
    };

    let mut hash_vars: DetSet<String> = DetSet::new();
    let mut k = 0;
    while k < code.len() {
        // `name: [&mut] HashMap<…>` — let ascriptions, params, fields.
        if let Some(name) = ident(k) {
            if punct(k + 1, ':') && !punct(k + 2, ':') && !punct(k.wrapping_sub(1), ':') {
                if let Some((path, _)) = path_at(k + 2) {
                    if is_hash_collection_type(&path) {
                        hash_vars.insert(name.to_owned());
                    }
                }
            }
            // `let [mut] name = HashMap::new()` and friends.
            if name == "let" {
                let mut v = k + 1;
                if ident(v) == Some("mut") {
                    v += 1;
                }
                if let Some(bound) = ident(v) {
                    if punct(v + 1, '=') && !punct(v + 2, '=') {
                        if let Some((path, _)) = path_at(v + 2) {
                            if is_hash_collection_type(&path) {
                                hash_vars.insert(bound.to_owned());
                            }
                        }
                    }
                }
            }
        }
        k += 1;
    }
    if hash_vars.is_empty() {
        return sites;
    }

    let mut k = 0;
    while k < code.len() {
        if let Some(name) = ident(k) {
            let marked = hash_vars.contains(name);
            let named_field = punct(k.wrapping_sub(1), '.');
            // `var.iter()` / `.keys()` / … on a marked binding.
            if marked && !named_field && punct(k + 1, '.') {
                if let Some(m) = ident(k + 2) {
                    if ITER_METHODS.contains(&m) && punct(k + 3, '(') {
                        let t = &toks[code[k + 2]];
                        sites.push((
                            t.line,
                            t.col,
                            format!(
                                "iterating hash collection `{name}` (`.{m}()`) has \
                                 nondeterministic order; use `haec_core::det` wrappers"
                            ),
                        ));
                    }
                }
            }
            // `for pat in [&mut] var {` over a marked binding.
            if name == "in" {
                let mut v = k + 1;
                while punct(v, '&') || ident(v) == Some("mut") {
                    v += 1;
                }
                if let Some(target) = ident(v) {
                    if hash_vars.contains(target) && punct(v + 1, '{') {
                        let t = &toks[code[v]];
                        sites.push((
                            t.line,
                            t.col,
                            format!(
                                "`for` over hash collection `{target}` has nondeterministic \
                                 order; use `haec_core::det` wrappers"
                            ),
                        ));
                    }
                }
            }
        }
        k += 1;
    }
    sites
}

/// Recursively collects `.rs` files under `dir`, sorted.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root`: the facade `src/` tree plus
/// every `crates/*/src` tree, each file under its crate's policy.
///
/// # Errors
///
/// Propagates I/O failures (unreadable directory or file).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let mut inputs: Vec<(String, String)> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&path)?;
        inputs.push((rel, source));
    }

    // One global call graph: taint flows across crate boundaries; each
    // finding is attributed to the file holding the sink.
    let ws = Workspace::build(&inputs);
    let mut taint_by_file: DetMap<String, Vec<Diagnostic>> = DetMap::new();
    for d in crate::taint::analyze(&ws) {
        taint_by_file
            .get_or_insert_with(d.file.clone(), Vec::new)
            .push(d);
    }

    let mut report = LintReport {
        files_scanned: 0,
        files: Vec::new(),
        diagnostics: Vec::new(),
    };
    for (rel, source) in &inputs {
        let (mut diags, allows) = token_pass(rel, source);
        if let Some(taint) = taint_by_file.get(rel.as_str()) {
            diags.extend(taint.iter().cloned());
        }
        let policy = Policy::for_crate(crate_key(rel));
        report
            .diagnostics
            .extend(finish_file(rel, &policy, diags, &allows));
        report.files_scanned += 1;
        report.files.push(rel.clone());
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire(src: &str) -> Vec<Diagnostic> {
        lint_source_with_policy("crates/core/src/x.rs", src, Policy::deny_all())
    }

    fn lints_of(src: &str) -> Vec<Lint> {
        fire(src)
            .into_iter()
            .filter(|d| !d.suppressed)
            .map(|d| d.lint)
            .collect()
    }

    #[test]
    fn hash_import_and_use_fire() {
        let got = fire(
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        );
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(got
            .iter()
            .all(|d| d.lint == Lint::NondeterministicCollection));
        assert_eq!((got[0].line, got[0].col), (1, 23));
    }

    #[test]
    fn fully_qualified_use_fires_without_import() {
        assert_eq!(
            lints_of("fn f() { let m = std::collections::HashMap::<u32, u32>::new(); }"),
            [Lint::NondeterministicCollection]
        );
    }

    #[test]
    fn aliased_import_fires_at_call_site() {
        let got =
            lints_of("use std::collections::HashSet as Seen;\nfn f() { let s = Seen::new(); }");
        assert_eq!(
            got,
            [
                Lint::NondeterministicCollection,
                Lint::NondeterministicCollection
            ]
        );
    }

    #[test]
    fn btree_collections_are_clean() {
        assert!(lints_of("use std::collections::{BTreeMap, BTreeSet};\nfn f() { let m = BTreeMap::<u32, u32>::new(); }").is_empty());
    }

    #[test]
    fn wall_clock_fires_and_exempt_files_do_not() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        assert_eq!(lints_of(src), [Lint::WallClock, Lint::WallClock]);
        let exempt = lint_source("crates/core/src/spans.rs", src);
        assert!(exempt.is_empty());
    }

    #[test]
    fn ambient_entropy_catalog() {
        assert_eq!(
            lints_of("fn f() { let v = std::env::var(\"X\"); }"),
            [Lint::AmbientEntropy]
        );
        assert_eq!(
            lints_of("fn f() { std::thread::spawn(|| {}); }"),
            [Lint::AmbientEntropy]
        );
        assert_eq!(
            lints_of("use std::collections::hash_map::RandomState;"),
            [Lint::AmbientEntropy]
        );
    }

    #[test]
    fn thread_use_is_exempt_only_in_the_worker_pool_module() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        // Everywhere else in `sim` (and the workspace) the gate fires...
        assert_eq!(
            lint_source("crates/sim/src/exhaustive/mod.rs", src)
                .iter()
                .filter(|d| !d.suppressed)
                .count(),
            1
        );
        // ...but the worker-pool module is sanctioned.
        assert!(lint_source("crates/sim/src/exhaustive/parallel.rs", src).is_empty());
        // The exemption covers imports too, and only the thread slice of
        // ambient-entropy: `std::env` still fires there.
        assert!(lint_source(
            "crates/sim/src/exhaustive/parallel.rs",
            "use std::thread;\nfn f() { thread::scope(|_| {}); }"
        )
        .is_empty());
        assert_eq!(
            lint_source(
                "crates/sim/src/exhaustive/parallel.rs",
                "fn f() { let v = std::env::var(\"X\"); }"
            )
            .len(),
            1
        );
    }

    #[test]
    fn stray_print_fires_only_on_macro_bang() {
        assert_eq!(lints_of("fn f() { println!(\"x\"); }"), [Lint::StrayPrint]);
        assert_eq!(lints_of("fn f() { dbg!(1); }"), [Lint::StrayPrint]);
        // An fn named println (no bang) is fine.
        assert!(lints_of("fn println() {}").is_empty());
        assert!(lints_of("fn f() { writeln!(w, \"x\").ok(); }").is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        assert!(fire(
            "// std::collections::HashMap and println! here\n\
             /* Instant::now() in a block comment */\n\
             fn f() { let s = \"std::env::var println!\"; let r = r#\"HashMap\"#; }"
        )
        .is_empty());
    }

    #[test]
    fn unordered_iteration_on_escaped_collections() {
        // Parameter-typed collection: construction is out of view.
        let got = lints_of(
            "use std::collections::HashMap;\n\
             fn f(m: &HashMap<u32, u32>) { for (k, v) in m { } }",
        );
        assert!(got.contains(&Lint::UnorderedIteration), "{got:?}");
        let got = lints_of(
            "use std::collections::HashMap;\n\
             fn f(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }",
        );
        assert!(got.contains(&Lint::UnorderedIteration), "{got:?}");
    }

    #[test]
    fn det_wrapper_iteration_is_clean() {
        assert!(lints_of(
            "use haec_core::det::DetMap;\n\
             fn f(m: &DetMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }"
        )
        .is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let src = "fn f() {\n\
                   // haec-lint: allow(stray-print): harness output\n\
                   println!(\"x\");\n\
                   println!(\"y\"); // haec-lint: allow(stray-print): also fine\n\
                   }";
        let got = fire(src);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|d| d.suppressed));
    }

    #[test]
    fn allow_does_not_leak_to_other_lints_or_lines() {
        let src = "// haec-lint: allow(stray-print): wrong lint\n\
                   fn f() { let t = std::time::Instant::now(); }\n\
                   fn g() { println!(\"far away\"); }";
        let got = fire(src);
        let unsuppressed: Vec<Lint> = got
            .iter()
            .filter(|d| !d.suppressed)
            .map(|d| d.lint)
            .collect();
        // Wall-clock and the far-away print stay unsuppressed, and the
        // allow that covered neither is itself flagged dead.
        assert_eq!(
            unsuppressed,
            [Lint::DeadAllow, Lint::WallClock, Lint::StrayPrint]
        );
    }

    #[test]
    fn malformed_allow_is_always_a_diagnostic() {
        for bad in [
            "// haec-lint: allow(no-such-lint): reason",
            "// haec-lint: allow(stray-print)",
            "// haec-lint: allow(stray-print):   ",
            "// haec-lint: allow(): reason",
            "// haec-lint: deny(stray-print): reason",
            "// haec-lint: allow(malformed-allow): nice try",
        ] {
            let got = fire(bad);
            assert_eq!(got.len(), 1, "{bad}");
            assert_eq!(got[0].lint, Lint::MalformedAllow, "{bad}");
            assert!(!got[0].suppressed);
        }
        // And an ordinary comment is not a control comment at all.
        assert!(fire("// just mentions haec lint tooling").is_empty());
    }

    #[test]
    fn multi_lint_allow_list() {
        let src = "// haec-lint: allow(wall-clock, ambient-entropy): sanctioned probe\n\
                   fn f() { let t = std::time::Instant::now(); let v = std::env::var(\"X\"); }";
        let got = fire(src);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|d| d.suppressed));
    }

    #[test]
    fn policy_drops_allowed_lints_entirely() {
        let got = lint_source("crates/bench/src/x.rs", "fn f() { println!(\"report\"); }");
        assert!(got.is_empty());
        let got = lint_source("crates/bench/src/x.rs", "use std::collections::HashMap;");
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn taint_flow_fires_through_the_driver_but_not_token_level() {
        // Cross-function address→fingerprint flow: invisible to the token
        // pass, caught by the taint pass.
        let src = "fn entropy() -> usize { let v = vec![1u8]; v.as_ptr() as usize }\n\
                   fn state_fingerprint() -> u64 { entropy() as u64 }";
        let got = lints_of(src);
        assert_eq!(got, [Lint::AddressAsIdentity]);
        let token_only = lint_source_token_level("crates/core/src/x.rs", src, &Policy::deny_all());
        assert!(token_only.is_empty(), "{token_only:?}");
    }

    #[test]
    fn allow_suppresses_taint_diagnostics_at_the_sink() {
        let src = "fn entropy() -> usize { let v = vec![1u8]; v.as_ptr() as usize }\n\
                   fn state_fingerprint() -> u64 {\n\
                   // haec-lint: allow(address-as-identity): demo suppression\n\
                   entropy() as u64\n\
                   }";
        let got = fire(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].suppressed);
    }

    #[test]
    fn dead_allow_fires_per_unused_leg() {
        // stray-print leg earns its keep; the wall-clock leg is dead.
        let src = "// haec-lint: allow(stray-print, wall-clock): half stale\n\
                   fn f() { println!(\"x\"); }";
        let got = fire(src);
        let dead: Vec<_> = got.iter().filter(|d| d.lint == Lint::DeadAllow).collect();
        assert_eq!(dead.len(), 1, "{got:?}");
        assert!(dead[0].message.contains("allow(wall-clock)"));
        assert!(!dead[0].suppressed);
        // With both legs live there is no dead-allow.
        let src = "// haec-lint: allow(stray-print, wall-clock): both live\n\
                   fn f() { let t = std::time::Instant::now(); println!(\"x\"); }";
        assert!(fire(src).iter().all(|d| d.lint != Lint::DeadAllow));
    }

    #[test]
    fn allow_for_a_lint_the_policy_never_denies_is_dead() {
        // bench is a CLI crate: stray-print is not denied there, so the
        // suppression is pointless and must be flagged.
        let got = lint_source(
            "crates/bench/src/x.rs",
            "// haec-lint: allow(stray-print): pointless here\n\
             fn f() { println!(\"report\"); }",
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lint, Lint::DeadAllow);
    }

    #[test]
    fn diagnostics_sorted_by_position() {
        let got = fire("fn f() { println!(\"b\"); }\nfn g() { println!(\"a\"); }");
        assert!(got.windows(2).all(|w| w[0].line <= w[1].line));
    }
}
