//! Bit-exact wire format.
//!
//! Theorem 12 lower-bounds *message size in bits*, so the stores encode
//! their messages with a hand-rolled bit-level format and report exact bit
//! counts. Unbounded integers (sequence numbers, values) use **Elias gamma
//! coding**, whose length is `2⌊lg v⌋ + 1` bits — so message sizes genuinely
//! grow logarithmically with operation counts, matching the `lg k` factor in
//! the bound.

use haec_model::Payload;
use std::fmt;

/// Writes a bit stream and finishes into a [`Payload`] with exact bit
/// length.
///
/// ```
/// use haec_stores::wire::{BitWriter, BitReader};
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_gamma(42);
/// let p = w.finish();
/// let mut r = BitReader::new(&p);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_gamma().unwrap(), 42);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    bits: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.bits
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        let byte = self.bits / 8;
        if byte == self.buf.len() {
            self.buf.push(0);
        }
        if bit {
            self.buf[byte] |= 1 << (self.bits % 8);
        }
        self.bits += 1;
    }

    /// Appends the low `width` bits of `value`, least-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width too large");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in 0..width {
            self.write_bit(value >> i & 1 == 1);
        }
    }

    /// Appends `value ≥ 1` in Elias gamma coding: `⌊lg v⌋` zeros, a one,
    /// then the `⌊lg v⌋` low-order bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0` (gamma codes positive integers; use
    /// [`write_gamma0`](Self::write_gamma0) for zero-based values).
    pub fn write_gamma(&mut self, value: u64) {
        assert!(value >= 1, "gamma coding requires value >= 1");
        let n = 63 - value.leading_zeros(); // ⌊lg value⌋
        for _ in 0..n {
            self.write_bit(false);
        }
        self.write_bit(true);
        self.write_bits(value & ((1u64 << n) - 1), n);
    }

    /// Gamma-codes `value + 1`, allowing zero.
    pub fn write_gamma0(&mut self, value: u64) {
        self.write_gamma(value + 1);
    }

    /// Finishes the stream.
    pub fn finish(self) -> Payload {
        Payload::from_bits(self.buf, self.bits)
    }
}

/// Error returned when a reader runs out of bits or sees a malformed code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// Bit offset at which decoding failed.
    pub at_bit: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed or truncated bit stream at bit {}",
            self.at_bit
        )
    }
}

impl std::error::Error for DecodeError {}

/// Reads a bit stream produced by [`BitWriter`].
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    payload: &'a Payload,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over a payload.
    pub fn new(payload: &'a Payload) -> Self {
        BitReader { payload, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.payload.bits().saturating_sub(self.pos)
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns an error at end of stream.
    pub fn read_bit(&mut self) -> Result<bool, DecodeError> {
        if self.pos >= self.payload.bits() {
            return Err(DecodeError { at_bit: self.pos });
        }
        let byte = self.payload.bytes()[self.pos / 8];
        let bit = byte >> (self.pos % 8) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `width` bits, least-significant first.
    ///
    /// # Errors
    ///
    /// Returns an error at end of stream.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, DecodeError> {
        let mut out = 0u64;
        for i in 0..width {
            if self.read_bit()? {
                out |= 1u64 << i;
            }
        }
        Ok(out)
    }

    /// Reads an Elias-gamma-coded positive integer.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or a run of more than 63 zeros.
    pub fn read_gamma(&mut self) -> Result<u64, DecodeError> {
        let mut n = 0u32;
        while !self.read_bit()? {
            n += 1;
            if n > 63 {
                return Err(DecodeError { at_bit: self.pos });
            }
        }
        let low = self.read_bits(n)?;
        Ok((1u64 << n) | low)
    }

    /// Reads a zero-based gamma code written by
    /// [`BitWriter::write_gamma0`].
    ///
    /// # Errors
    ///
    /// As for [`read_gamma`](Self::read_gamma).
    pub fn read_gamma0(&mut self) -> Result<u64, DecodeError> {
        Ok(self.read_gamma()? - 1)
    }
}

/// Number of bits needed to store values `0..n` (at least 1).
pub fn width_for(n: usize) -> u32 {
    let n = n.max(2) - 1;
    64 - (n as u64).leading_zeros()
}

/// The length in bits of the gamma code of `value ≥ 1`.
pub fn gamma_len(value: u64) -> usize {
    let n = 63 - value.leading_zeros() as usize;
    2 * n + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD, 16);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let p = w.finish();
        assert_eq!(p.bits(), 81);
        let mut r = BitReader::new(&p);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_gamma_small_values() {
        for v in 1..200u64 {
            let mut w = BitWriter::new();
            w.write_gamma(v);
            let p = w.finish();
            assert_eq!(p.bits(), gamma_len(v), "len for {v}");
            let mut r = BitReader::new(&p);
            assert_eq!(r.read_gamma().unwrap(), v);
        }
    }

    #[test]
    fn gamma_length_is_logarithmic() {
        assert_eq!(gamma_len(1), 1);
        assert_eq!(gamma_len(2), 3);
        assert_eq!(gamma_len(3), 3);
        assert_eq!(gamma_len(4), 5);
        assert_eq!(gamma_len(1 << 20), 41);
    }

    #[test]
    fn gamma0_allows_zero() {
        let mut w = BitWriter::new();
        w.write_gamma0(0);
        w.write_gamma0(7);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        assert_eq!(r.read_gamma0().unwrap(), 0);
        assert_eq!(r.read_gamma0().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "requires value >= 1")]
    fn gamma_zero_panics() {
        BitWriter::new().write_gamma(0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().write_bits(8, 3);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = BitWriter::new();
        w.write_bits(0b10, 2);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        assert!(r.read_bits(3).is_err());
    }

    #[test]
    fn truncated_gamma_errors() {
        let mut w = BitWriter::new();
        w.write_bit(false);
        w.write_bit(false);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        assert!(r.read_gamma().is_err());
    }

    #[test]
    fn width_for_domains() {
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 1);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(4), 2);
        assert_eq!(width_for(5), 3);
        assert_eq!(width_for(256), 8);
        assert_eq!(width_for(257), 9);
    }

    #[test]
    fn interleaved_mixed_codes() {
        let mut w = BitWriter::new();
        w.write_gamma(1000);
        w.write_bits(5, 3);
        w.write_gamma0(0);
        w.write_bit(true);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        assert_eq!(r.read_gamma().unwrap(), 1000);
        assert_eq!(r.read_bits(3).unwrap(), 5);
        assert_eq!(r.read_gamma0().unwrap(), 0);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_payload() {
        let p = BitWriter::new().finish();
        assert_eq!(p.bits(), 0);
        let mut r = BitReader::new(&p);
        assert!(r.read_bit().is_err());
    }
}
