//! Structured observability for the simulator.
//!
//! Every state transition the [`Simulator`](crate::Simulator) performs —
//! client operations, broadcasts, deliveries, faults, partition
//! transitions, quiescence — is announced to an [`Observer`]. Observers are
//! passive: they may record anything but cannot influence the run, and the
//! [observer-determinism property test](crate#determinism) pins down that a
//! run with observers attached produces a byte-identical execution
//! transcript to one without.
//!
//! The module ships batteries:
//!
//! - [`hist::Histogram`] — log2-bucketed value histograms;
//! - [`log::EventLog`] — a bounded structured event log (ring buffer);
//! - [`stats::StatsObserver`] — event counters, message-size and
//!   delivery-latency histograms, peak state size, search statistics;
//! - [`lag::LagObserver`] — per-update visibility lag and read staleness;
//! - [`stream::StreamObserver`] — online consistency checking (causal,
//!   eventual, session guarantees) with stability-driven event GC;
//! - [`json::Json`] — a tiny dependency-free JSON tree (serialise + parse);
//! - [`report::RunReport`] — everything above aggregated into one report
//!   with a stable JSON rendering.
//!
//! Observers are usually attached through [`shared`], which wraps them in
//! `Rc<RefCell<_>>` so the caller keeps a readable handle after the run:
//!
//! ```
//! use haec_sim::obs::{self, stats::StatsObserver};
//! use haec_sim::Simulator;
//! use haec_model::{ObjectId, Op, ReplicaId, StoreConfig, Value};
//! use haec_stores::DvvMvrStore;
//!
//! let stats = obs::shared(StatsObserver::new());
//! let mut sim = Simulator::new(&DvvMvrStore, StoreConfig::new(3, 2));
//! sim.attach_observer(Box::new(stats.clone()));
//! sim.do_op(ReplicaId::new(0), ObjectId::new(0), Op::Write(Value::new(7)));
//! sim.flush(ReplicaId::new(0));
//! sim.deliver_all();
//! assert_eq!(stats.borrow().sends(), 1);
//! assert_eq!(stats.borrow().receives(), 2);
//! ```

pub mod hist;
pub mod json;
pub mod lag;
pub mod log;
pub mod report;
pub mod stats;
pub mod stream;

use haec_model::{Dot, MsgId, ObjectId, Op, ReplicaId, ReturnValue};
use std::cell::RefCell;
use std::rc::Rc;

/// Context for a client operation (a `do` event).
#[derive(Clone, Debug)]
pub struct DoEvent<'a> {
    /// Index of the event in the execution transcript.
    pub step: usize,
    /// The invoking replica.
    pub replica: ReplicaId,
    /// The target object.
    pub obj: ObjectId,
    /// The operation.
    pub op: &'a Op,
    /// The response returned to the client.
    pub rval: &'a ReturnValue,
    /// The operation's dot if it was an update, `None` for reads.
    pub dot: Option<Dot>,
    /// Update dots the store reports as visible to this operation.
    pub visible: &'a [Dot],
}

/// Context for a broadcast (a `send` event).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SendEvent {
    /// Index of the event in the execution transcript.
    pub step: usize,
    /// The broadcasting replica.
    pub replica: ReplicaId,
    /// The message.
    pub msg: MsgId,
    /// Encoded payload size in bits.
    pub bits: usize,
}

/// Context for a delivery (a `receive` event).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ReceiveEvent {
    /// Index of the event in the execution transcript.
    pub step: usize,
    /// The receiving replica.
    pub replica: ReplicaId,
    /// The message.
    pub msg: MsgId,
    /// Encoded payload size in bits.
    pub bits: usize,
    /// Index of the corresponding `send` event.
    pub send_step: usize,
}

/// Context for a network fault (drop or duplication of an in-flight copy).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// Number of execution events recorded when the fault occurred.
    pub step: usize,
    /// The affected message.
    pub msg: MsgId,
    /// The replica the affected copy was addressed to.
    pub to: ReplicaId,
}

/// A passive listener for simulator events.
///
/// Every hook has a no-op default, so an observer implements only what it
/// cares about. Hooks must not assume any particular schedule: the
/// simulator invokes them in transcript order, after the event has been
/// recorded.
pub trait Observer {
    /// A client operation completed at a replica.
    fn on_do(&mut self, ev: &DoEvent<'_>) {
        let _ = ev;
    }

    /// A replica broadcast a message.
    fn on_send(&mut self, ev: &SendEvent) {
        let _ = ev;
    }

    /// An in-flight copy was delivered.
    fn on_receive(&mut self, ev: &ReceiveEvent) {
        let _ = ev;
    }

    /// An in-flight copy was dropped (it will never be delivered).
    fn on_drop(&mut self, ev: &FaultEvent) {
        let _ = ev;
    }

    /// An in-flight copy was duplicated.
    fn on_duplicate(&mut self, ev: &FaultEvent) {
        let _ = ev;
    }

    /// A network partition became active (`active == true`) or healed.
    fn on_partition_change(&mut self, step: usize, active: bool) {
        let _ = (step, active);
    }

    /// A quiescence drive finished after `rounds` flush-and-deliver rounds;
    /// `reached` tells whether the cluster actually quiesced.
    fn on_quiesce(&mut self, rounds: usize, reached: bool) {
        let _ = (rounds, reached);
    }

    /// The cluster's total encoded state size was sampled after a mutating
    /// event.
    fn on_state_sample(&mut self, step: usize, state_bits: usize) {
        let _ = (step, state_bits);
    }

    /// The exhaustive explorer expanded a schedule prefix of length `depth`
    /// with `frontier` prefixes left on its stack.
    fn on_search_node(&mut self, depth: usize, frontier: usize) {
        let _ = (depth, frontier);
    }

    /// The counterexample shrinker tried a candidate schedule of `len`
    /// actions.
    fn on_shrink_step(&mut self, len: usize) {
        let _ = len;
    }

    /// The exhaustive explorer probed its state-fingerprint cache;
    /// `hit == true` means the subtree was pruned as already explored.
    fn on_dedup_lookup(&mut self, hit: bool) {
        let _ = hit;
    }

    /// A scenario-family explorer ran one member (of `len` patterns) of
    /// the family named `family`; `passed` is the predicate's verdict.
    /// Members are announced in canonical enumeration order.
    fn on_family_member(&mut self, family: &str, len: usize, passed: bool) {
        let _ = (family, len, passed);
    }
}

/// An [`Observer`] that can be split across the parallel explorer's worker
/// threads and deterministically recombined.
///
/// [`explore_all_parallel_observed`](crate::exhaustive::explore_all_parallel_observed)
/// gives every work unit a fresh child created by [`fork`](Self::fork) and
/// folds the children back into the parent with [`join`](Self::join) in
/// **canonical subtree order** — the order the sequential DFS would have
/// produced the same events — never in thread-completion order. An
/// implementation is deterministic under parallelism iff its `join` makes
/// the parent state depend only on the multiset of events each child saw
/// and the canonical join order, not on wall-clock interleaving.
pub trait ForkJoinObserver: Observer + Sized {
    /// Creates an empty child observer that will record one work unit.
    fn fork(&self) -> Self;

    /// Folds a finished child back into `self`. Children are joined in
    /// canonical subtree order.
    fn join(&mut self, child: Self);
}

/// Fan-out to any number of boxed observers, itself an [`Observer`].
#[derive(Default)]
pub struct Observers {
    list: Vec<Box<dyn Observer>>,
}

impl std::fmt::Debug for Observers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observers")
            .field("len", &self.list.len())
            .finish()
    }
}

impl Observers {
    /// An empty multiplexer.
    pub fn new() -> Self {
        Observers::default()
    }

    /// Adds an observer to the fan-out.
    pub fn attach(&mut self, observer: Box<dyn Observer>) {
        self.list.push(observer);
    }

    /// Number of attached observers.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether no observer is attached.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

impl Observer for Observers {
    fn on_do(&mut self, ev: &DoEvent<'_>) {
        for o in &mut self.list {
            o.on_do(ev);
        }
    }
    fn on_send(&mut self, ev: &SendEvent) {
        for o in &mut self.list {
            o.on_send(ev);
        }
    }
    fn on_receive(&mut self, ev: &ReceiveEvent) {
        for o in &mut self.list {
            o.on_receive(ev);
        }
    }
    fn on_drop(&mut self, ev: &FaultEvent) {
        for o in &mut self.list {
            o.on_drop(ev);
        }
    }
    fn on_duplicate(&mut self, ev: &FaultEvent) {
        for o in &mut self.list {
            o.on_duplicate(ev);
        }
    }
    fn on_partition_change(&mut self, step: usize, active: bool) {
        for o in &mut self.list {
            o.on_partition_change(step, active);
        }
    }
    fn on_quiesce(&mut self, rounds: usize, reached: bool) {
        for o in &mut self.list {
            o.on_quiesce(rounds, reached);
        }
    }
    fn on_state_sample(&mut self, step: usize, state_bits: usize) {
        for o in &mut self.list {
            o.on_state_sample(step, state_bits);
        }
    }
    fn on_search_node(&mut self, depth: usize, frontier: usize) {
        for o in &mut self.list {
            o.on_search_node(depth, frontier);
        }
    }
    fn on_shrink_step(&mut self, len: usize) {
        for o in &mut self.list {
            o.on_shrink_step(len);
        }
    }
    fn on_dedup_lookup(&mut self, hit: bool) {
        for o in &mut self.list {
            o.on_dedup_lookup(hit);
        }
    }
    fn on_family_member(&mut self, family: &str, len: usize, passed: bool) {
        for o in &mut self.list {
            o.on_family_member(family, len, passed);
        }
    }
}

/// Borrows the wrapped observer for one hook dispatch, failing with a
/// message that names the hook instead of `RefCell`'s opaque
/// "already mutably borrowed".
fn borrow_for_hook<'a, O: Observer>(cell: &'a RefCell<O>, hook: &str) -> std::cell::RefMut<'a, O> {
    cell.try_borrow_mut().unwrap_or_else(|_| {
        panic!(
            "shared observer is still borrowed while dispatching `{hook}`: \
             drop the borrow()/borrow_mut() guard before driving the simulator"
        )
    })
}

/// A shared observer handle: the simulator holds one clone, the caller
/// keeps another to read results after the run.
///
/// Dispatch borrows the cell per hook via `try_borrow_mut`, so a caller
/// that still holds a `borrow()` guard while the simulator runs gets a
/// panic naming the offending hook rather than `RefCell`'s generic
/// "already mutably borrowed" at an unrelated line.
impl<O: Observer> Observer for Rc<RefCell<O>> {
    fn on_do(&mut self, ev: &DoEvent<'_>) {
        borrow_for_hook(self, "on_do").on_do(ev);
    }
    fn on_send(&mut self, ev: &SendEvent) {
        borrow_for_hook(self, "on_send").on_send(ev);
    }
    fn on_receive(&mut self, ev: &ReceiveEvent) {
        borrow_for_hook(self, "on_receive").on_receive(ev);
    }
    fn on_drop(&mut self, ev: &FaultEvent) {
        borrow_for_hook(self, "on_drop").on_drop(ev);
    }
    fn on_duplicate(&mut self, ev: &FaultEvent) {
        borrow_for_hook(self, "on_duplicate").on_duplicate(ev);
    }
    fn on_partition_change(&mut self, step: usize, active: bool) {
        borrow_for_hook(self, "on_partition_change").on_partition_change(step, active);
    }
    fn on_quiesce(&mut self, rounds: usize, reached: bool) {
        borrow_for_hook(self, "on_quiesce").on_quiesce(rounds, reached);
    }
    fn on_state_sample(&mut self, step: usize, state_bits: usize) {
        borrow_for_hook(self, "on_state_sample").on_state_sample(step, state_bits);
    }
    fn on_search_node(&mut self, depth: usize, frontier: usize) {
        borrow_for_hook(self, "on_search_node").on_search_node(depth, frontier);
    }
    fn on_shrink_step(&mut self, len: usize) {
        borrow_for_hook(self, "on_shrink_step").on_shrink_step(len);
    }
    fn on_dedup_lookup(&mut self, hit: bool) {
        borrow_for_hook(self, "on_dedup_lookup").on_dedup_lookup(hit);
    }
    fn on_family_member(&mut self, family: &str, len: usize, passed: bool) {
        borrow_for_hook(self, "on_family_member").on_family_member(family, len, passed);
    }
}

/// Wraps an observer in `Rc<RefCell<_>>` for shared ownership: attach one
/// clone to the simulator, keep the other to inspect afterwards.
pub fn shared<O: Observer>(observer: O) -> Rc<RefCell<O>> {
    Rc::new(RefCell::new(observer))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting {
        dos: usize,
        quiesces: usize,
    }

    impl Observer for Counting {
        fn on_do(&mut self, _ev: &DoEvent<'_>) {
            self.dos += 1;
        }
        fn on_quiesce(&mut self, _rounds: usize, _reached: bool) {
            self.quiesces += 1;
        }
    }

    #[test]
    fn multiplexer_fans_out() {
        let a = shared(Counting::default());
        let b = shared(Counting::default());
        let mut obs = Observers::new();
        obs.attach(Box::new(a.clone()));
        obs.attach(Box::new(b.clone()));
        assert_eq!(obs.len(), 2);
        assert!(!obs.is_empty());
        let ev = DoEvent {
            step: 0,
            replica: ReplicaId::new(0),
            obj: ObjectId::new(0),
            op: &Op::Read,
            rval: &ReturnValue::empty(),
            dot: None,
            visible: &[],
        };
        obs.on_do(&ev);
        obs.on_quiesce(3, true);
        assert_eq!(a.borrow().dos, 1);
        assert_eq!(b.borrow().dos, 1);
        assert_eq!(a.borrow().quiesces, 1);
    }

    #[test]
    #[should_panic(expected = "shared observer is still borrowed while dispatching `on_quiesce`")]
    fn shared_observer_borrow_panic_names_the_hook() {
        let handle = shared(Counting::default());
        let guard = handle.borrow();
        let mut attached = handle.clone();
        attached.on_quiesce(1, true);
        drop(guard);
    }

    #[test]
    fn fork_join_round_trips_through_the_multiplexer_contract() {
        // A minimal fork/join observer: counts events, joins by addition.
        #[derive(Default)]
        struct Sum(usize);
        impl Observer for Sum {
            fn on_search_node(&mut self, _depth: usize, _frontier: usize) {
                self.0 += 1;
            }
        }
        impl ForkJoinObserver for Sum {
            fn fork(&self) -> Self {
                Sum::default()
            }
            fn join(&mut self, child: Self) {
                self.0 += child.0;
            }
        }
        let mut parent = Sum::default();
        parent.on_search_node(0, 0);
        let mut child = parent.fork();
        assert_eq!(child.0, 0, "fork starts empty");
        child.on_search_node(1, 2);
        child.on_search_node(2, 1);
        parent.join(child);
        assert_eq!(parent.0, 3);
    }

    #[test]
    fn default_hooks_are_noops() {
        struct Nop;
        impl Observer for Nop {}
        let mut n = Nop;
        n.on_quiesce(1, true);
        n.on_partition_change(0, true);
        n.on_state_sample(0, 0);
        n.on_search_node(0, 0);
        n.on_shrink_step(0);
        n.on_dedup_lookup(true);
        n.on_family_member("f", 0, true);
    }
}
