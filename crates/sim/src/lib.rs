//! # haec-sim
//!
//! Deterministic simulation harness for haec stores: a replica-cluster
//! [`Simulator`] that records faithful executions, seeded random
//! [`scheduler`]s with drop/duplicate/reorder/partition fault injection,
//! [`workload`] generators, the operational eventual-consistency checks of
//! Lemma 3 / Corollary 4 ([`convergence`]), and an end-to-end
//! [`explorer`] pipeline that runs a store and checks correctness, causal
//! consistency and OCC on the witness abstract execution.
//!
//! Everything is deterministic in `(seed, config)`: an execution is exactly
//! replayable.
//!
//! ## Example
//!
//! ```
//! use haec_sim::{Simulator, explorer::{explore, ExplorationConfig}};
//! use haec_stores::DvvMvrStore;
//!
//! let report = explore(&DvvMvrStore, &ExplorationConfig::default(), 42);
//! assert!(report.is_causally_consistent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod convergence;
pub mod exhaustive;
pub mod explorer;
pub mod liveness;
pub mod metrics;
pub mod obs;
pub mod scenario;
pub mod scheduler;
pub mod service;
mod simulator;
pub mod trace;
pub mod workload;

pub use classify::{classify, grade, HIERARCHY};
pub use convergence::check_quiescent_agreement;
pub use exhaustive::{
    explore_all, explore_all_observed, explore_all_parallel, explore_all_parallel_observed, shrink,
    shrink_observed, Action, ExhaustiveConfig, ExhaustiveReport, ParallelConfig,
};
pub use explorer::{explore, explore_with, ConsistencyReport, ExplorationConfig};
pub use liveness::{fair_run, fair_run_with, FairRunConfig, LivenessReport};
pub use metrics::{measure, RunMetrics};
pub use obs::report::{ReportConfig, RunReport};
pub use obs::{Observer, Observers};
pub use scenario::{
    explore_family, explore_family_observed, run_member, FamilyConfig, FamilyReport, Pat, Scenario,
    ScenarioFilter,
};
pub use scheduler::{run_schedule, DeliveryPolicy, Partition, ScheduleConfig};
pub use service::{
    reports_json, run_service, run_service_sweep, ServicePartition, ServiceReport,
    ServiceRunConfig, ShardReport, StreamVerdicts,
};
pub use simulator::{FaultKind, FaultRecord, InFlight, Simulator};
pub use workload::{ClientOp, KeyDistribution, OpenLoop, Workload};
