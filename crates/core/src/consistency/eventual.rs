//! Eventual consistency (Definitions 13/14), checked on finite prefixes.
//!
//! Eventual consistency is a liveness property of *infinite* abstract
//! executions: for every event `e` there are only finitely many same-object
//! events that do not see `e`. No finite execution can violate it outright,
//! so this module provides the two standard finite proxies:
//!
//! * [`check_prefix`] — a *windowed* check: every same-object event occurring
//!   at least `window` positions after `e` must see `e`. An execution
//!   produced by a fair scheduler that keeps failing this check for a fixed
//!   window as it grows is, in the limit, not eventually consistent.
//! * [`staleness`] — for each event, how many later same-object events do
//!   not see it (the "debt" a liveness violation would keep growing).
//!
//! The operational route the paper itself takes for write-propagating
//! stores — quiesce and compare replicas (Lemma 3 / Corollary 4) — lives in
//! `haec-sim::convergence`.

use crate::abstract_execution::AbstractExecution;
use std::fmt;

/// A same-object event beyond the window that still does not see `event`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventualViolation {
    /// The event that should have become visible.
    pub event: usize,
    /// The later same-object event that does not see it.
    pub blind_event: usize,
    /// The window used.
    pub window: usize,
}

impl fmt::Display for EventualViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event {} still invisible to same-object event {} (window {})",
            self.event, self.blind_event, self.window
        )
    }
}

impl std::error::Error for EventualViolation {}

/// Windowed prefix check of Definition 13: every event `e'` on `obj(e)`
/// occurring at position `≥ index(e) + window` must have `e vis e'`.
///
/// # Errors
///
/// Returns the first blind event found.
pub fn check_prefix(a: &AbstractExecution, window: usize) -> Result<(), EventualViolation> {
    for e in 0..a.len() {
        let obj = a.event(e).obj;
        for e2 in (e + window).max(e + 1)..a.len() {
            if a.event(e2).obj == obj && !a.sees(e, e2) {
                return Err(EventualViolation {
                    event: e,
                    blind_event: e2,
                    window,
                });
            }
        }
    }
    Ok(())
}

/// For every event, the number of *later* same-object events that do not
/// see it. In an eventually consistent infinite execution each entry stays
/// bounded; a monotonically growing entry across prefixes signals a
/// violation.
pub fn staleness(a: &AbstractExecution) -> Vec<usize> {
    (0..a.len())
        .map(|e| {
            let obj = a.event(e).obj;
            ((e + 1)..a.len())
                .filter(|&e2| a.event(e2).obj == obj && !a.sees(e, e2))
                .count()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_execution::AbstractExecutionBuilder;
    use haec_model::{ObjectId, Op, ReplicaId, ReturnValue, Value};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }

    #[test]
    fn fully_visible_execution_passes_any_window() {
        let mut b = AbstractExecutionBuilder::new();
        let w = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let rd = b.push(r(1), x(0), Op::Read, ReturnValue::values([v(1)]));
        b.vis(w, rd);
        let a = b.build().unwrap();
        assert!(check_prefix(&a, 0).is_ok());
        assert!(check_prefix(&a, 1).is_ok());
        assert_eq!(staleness(&a), vec![0, 0]);
    }

    #[test]
    fn permanently_hidden_write_fails_window() {
        let mut b = AbstractExecutionBuilder::new();
        let w = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        // Five later reads at another replica, none seeing w.
        for _ in 0..5 {
            b.push(r(1), x(0), Op::Read, ReturnValue::empty());
        }
        let a = b.build().unwrap();
        let viol = check_prefix(&a, 3).unwrap_err();
        assert_eq!(viol.event, w);
        assert!(viol.blind_event >= w + 3);
        assert_eq!(staleness(&a)[w], 5);
    }

    #[test]
    fn window_tolerates_recent_invisibility() {
        let mut b = AbstractExecutionBuilder::new();
        let w = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let rd1 = b.push(r(1), x(0), Op::Read, ReturnValue::empty()); // blind but recent
        let rd2 = b.push(r(1), x(0), Op::Read, ReturnValue::values([v(1)]));
        b.vis(w, rd2);
        let a = b.build().unwrap();
        assert!(check_prefix(&a, 2).is_ok());
        assert!(check_prefix(&a, 1).is_err());
        let _ = rd1;
    }

    #[test]
    fn other_object_events_ignored() {
        let mut b = AbstractExecutionBuilder::new();
        b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        for _ in 0..5 {
            b.push(r(1), x(1), Op::Read, ReturnValue::empty());
        }
        let a = b.build().unwrap();
        assert!(check_prefix(&a, 1).is_ok());
        assert_eq!(staleness(&a)[0], 0);
    }

    #[test]
    fn violation_display() {
        let viol = EventualViolation {
            event: 0,
            blind_event: 4,
            window: 3,
        };
        assert!(viol.to_string().contains("invisible"));
    }
}
