//! Firing: printing from library code.

fn report(x: u32) -> u32 {
    println!("x = {x}");
    eprintln!("warn");
    dbg!(x)
}
