//! Service-layer throughput: the sharded, batched store service under an
//! open-loop workload, swept over shard counts {1, 2, 4, 8}.
//!
//! Each row drives [`haec_sim::run_service`] — consistent-hash sharding,
//! envelope-batched wire traffic, write-repair reconciliation, a faulty
//! delivery schedule — with thousands of open-loop clients, and reports
//! ops/sec (wall clock, this binary's only nondeterminism), p50/p99 read
//! staleness and visibility lag (virtual-time ticks, from the merged
//! per-shard histograms), and exact bytes/op from the bit-exact wire
//! accounting (`message_bits == Σ shard payload bits + envelope
//! overhead`), which every row re-asserts.
//!
//! Usage:
//!
//! ```text
//! cargo bench --bench service                 # human-readable sweep
//! cargo bench --bench service -- --json       # JSON (for BENCH_service.json)
//! cargo bench --bench service -- --smoke      # small run, wall times zeroed
//! cargo bench --bench service -- --ops 50000  # override ops per row
//! ```
//!
//! `--smoke` zeroes the timing fields, so two smoke runs emit
//! byte-identical JSON — ci.sh compares them to pin the whole pipeline's
//! determinism end to end.

use haec_sim::service::{run_service, ServiceRunConfig};
use haec_stores::service::{Reconciliation, ServiceConfig};
use haec_stores::DvvMvrStore;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 0xBEEF_CAFE;

struct Row {
    shards: usize,
    ops: u64,
    seconds: f64,
    messages: u64,
    message_bits: u64,
    overhead_bits: u64,
    staleness_p50: u64,
    staleness_p99: u64,
    lag_p50: u64,
    lag_p99: u64,
    converged: bool,
}

impl Row {
    fn ops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.ops as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn bytes_per_op(&self) -> f64 {
        self.message_bits as f64 / 8.0 / self.ops as f64
    }
}

fn run_row(n_shards: usize, ops: usize, clients: u32, smoke: bool) -> Row {
    let cfg = ServiceRunConfig {
        service: ServiceConfig {
            n_replicas: 3,
            n_shards,
            n_objects: 256,
            vnodes: 32,
            reconciliation: Reconciliation::WriteRepair,
        },
        ops,
        n_clients: clients,
        seed: SEED,
        ..ServiceRunConfig::default()
    };
    let t0 = Instant::now();
    let report = run_service(&DvvMvrStore, &cfg);
    let seconds = if smoke {
        0.0
    } else {
        t0.elapsed().as_secs_f64()
    };

    // Exact accounting, re-pinned at benchmark scale.
    let shard_bits: u64 = report.per_shard.iter().map(|s| s.payload_bits).sum();
    assert_eq!(
        report.message_bits,
        shard_bits + report.envelope_overhead_bits,
        "wire accounting must be exact at {n_shards} shards"
    );
    let shard_ops: u64 = report.per_shard.iter().map(|s| s.ops).sum();
    assert_eq!(
        shard_ops, report.ops,
        "every op routed to exactly one shard"
    );
    assert!(report.converged, "fault-free service run must converge");

    let q = |h: &haec_sim::obs::hist::Histogram, p: f64| h.quantile(p).unwrap_or(0);
    Row {
        shards: n_shards,
        ops: report.ops,
        seconds,
        messages: report.messages,
        message_bits: report.message_bits,
        overhead_bits: report.envelope_overhead_bits,
        staleness_p50: q(&report.read_staleness, 0.5),
        staleness_p99: q(&report.read_staleness, 0.99),
        lag_p50: q(&report.visibility_lag, 0.5),
        lag_p99: q(&report.visibility_lag, 0.99),
        converged: report.converged,
    }
}

fn main() {
    let mut json = false;
    let mut smoke = false;
    let mut ops_override: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--ops" => ops_override = args.next().and_then(|v| v.parse().ok()),
            _ => {}
        }
    }
    let (ops, clients) = if smoke {
        (2_000, 100)
    } else {
        (250_000, 2_000)
    };
    let ops = ops_override.unwrap_or(ops);

    let rows: Vec<Row> = SHARD_COUNTS
        .iter()
        .map(|&s| run_row(s, ops, clients, smoke))
        .collect();

    if json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"suite\": \"service\",\n");
        out.push_str("  \"store\": \"dvv-mvr\",\n");
        out.push_str("  \"reconciliation\": \"write-repair\",\n");
        out.push_str("  \"batched\": true,\n");
        out.push_str("  \"replicas\": 3,\n");
        out.push_str("  \"objects\": 256,\n");
        out.push_str(&format!("  \"clients\": {clients},\n"));
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shards\": {}, \"ops\": {}, \"seconds\": {:.6}, \
                 \"ops_per_sec\": {:.1}, \"messages\": {}, \"message_bits\": {}, \
                 \"envelope_overhead_bits\": {}, \"bytes_per_op\": {:.2}, \
                 \"staleness_p50\": {}, \"staleness_p99\": {}, \
                 \"visibility_lag_p50\": {}, \"visibility_lag_p99\": {}, \
                 \"converged\": {}}}{}\n",
                r.shards,
                r.ops,
                r.seconds,
                r.ops_per_sec(),
                r.messages,
                r.message_bits,
                r.overhead_bits,
                r.bytes_per_op(),
                r.staleness_p50,
                r.staleness_p99,
                r.lag_p50,
                r.lag_p99,
                r.converged,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        print!("{out}");
    } else {
        println!(
            "service: dvv-mvr, write-repair, batched, 3 replicas, {clients} clients{}",
            if smoke { " (smoke)" } else { "" }
        );
        for r in &rows {
            println!(
                "  {:>2} shards  {:>8} ops  {:>8.3} s  {:>10.0} ops/s  \
                 {:>7.1} B/op  staleness p50/p99 {:>3}/{:<4}  lag p50/p99 {:>3}/{:<4}",
                r.shards,
                r.ops,
                r.seconds,
                r.ops_per_sec(),
                r.bytes_per_op(),
                r.staleness_p50,
                r.staleness_p99,
                r.lag_p50,
                r.lag_p99,
            );
        }
    }
}
