//! Replica-space lower bounds by distinguishability (the full-version
//! extension the paper's §7 points to).
//!
//! Burckhardt et al. prove space lower bounds for replicas implementing
//! MVRs and ORsets; the paper's full version strengthens them to networks
//! that only delay or drop messages. The executable core of all such
//! arguments is *distinguishability*: if two delivery histories must lead
//! to different responses for some future read, the replica must be in
//! different states after them — so a family of `N` pairwise
//! distinguishable histories forces `≥ lg N` bits of replica state.
//!
//! This module builds the canonical families and counts distinct states
//! via fingerprints (64-bit hashes; collisions would *under*-count, so a
//! full-rank result is conservative evidence):
//!
//! * [`mvr_sibling_family`] — `m` concurrent writers to one MVR; each
//!   subset of their messages delivered to the observer is a different
//!   history, and a read distinguishes them all: `2^m` states, `≥ m` bits.
//! * [`orset_family`] — `m` adds of distinct elements; subsets delivered:
//!   `2^m` states.
//!
//! Importantly, the families use **no message redelivery or reordering** —
//! each message is delivered at most once, in order — matching the
//! full-version claim that the bounds survive well-behaved networks.

use haec_model::{ObjectId, Op, ReplicaId, StoreConfig, StoreFactory, Value};
use std::collections::BTreeMap;

/// Outcome of a distinguishability experiment.
#[derive(Clone, Debug)]
pub struct SpaceReport {
    /// Size of the history family.
    pub histories: usize,
    /// Number of distinct replica states observed (by fingerprint).
    pub distinct_states: usize,
    /// The implied lower bound in bits: `lg(distinct_states)`.
    pub bound_bits: f64,
    /// Measured canonical state size (bits) of the largest state.
    pub max_state_bits: usize,
    /// Pairs of histories with equal fingerprints but different read
    /// responses — a correctness bug if non-empty.
    pub confusions: usize,
}

impl SpaceReport {
    /// Did every history land in its own state?
    pub fn full_rank(&self) -> bool {
        self.distinct_states == self.histories && self.confusions == 0
    }
}

fn subset_experiment(
    factory: &dyn StoreFactory,
    config: StoreConfig,
    messages: &[haec_model::Payload],
    obj: ObjectId,
) -> SpaceReport {
    let m = messages.len();
    assert!(m <= 16, "subset family of at most 2^16 histories");
    let observer_id = ReplicaId::new((config.n_replicas - 1) as u32);
    let mut states: BTreeMap<u64, haec_model::ReturnValue> = BTreeMap::new();
    let mut confusions = 0;
    let mut max_state_bits = 0;
    for mask in 0..(1u32 << m) {
        let mut observer = factory.spawn(observer_id, config);
        for (i, msg) in messages.iter().enumerate() {
            if mask & (1 << i) != 0 {
                observer.on_receive(msg);
            }
        }
        max_state_bits = max_state_bits.max(observer.state_bits());
        let fp = observer.state_fingerprint();
        let response = observer.do_op(obj, &Op::Read).rval;
        if let Some(prev) = states.get(&fp) {
            if *prev != response {
                confusions += 1;
            }
        } else {
            states.insert(fp, response);
        }
    }
    let distinct = states.len();
    SpaceReport {
        histories: 1usize << m,
        distinct_states: distinct,
        bound_bits: (distinct as f64).log2(),
        max_state_bits,
        confusions,
    }
}

/// The MVR sibling family: `m` writers write concurrently to one object;
/// the observer receives an arbitrary subset of their messages. A read
/// returns exactly the received siblings, so all `2^m` histories are
/// pairwise distinguishable and the replica needs `≥ m` bits.
pub fn mvr_sibling_family(factory: &dyn StoreFactory, m: usize) -> SpaceReport {
    let config = StoreConfig::new(m + 1, 1);
    let obj = ObjectId::new(0);
    let messages: Vec<_> = (0..m)
        .map(|i| {
            let mut writer = factory.spawn(ReplicaId::new(i as u32), config);
            writer.do_op(obj, &Op::Write(Value::new(i as u64 + 1)));
            let msg = writer.pending_message().expect("write broadcasts");
            writer.on_send();
            msg
        })
        .collect();
    subset_experiment(factory, config, &messages, obj)
}

/// The ORset family: `m` adds of distinct elements from distinct replicas;
/// subsets delivered to the observer. All `2^m` histories distinguishable.
pub fn orset_family(factory: &dyn StoreFactory, m: usize) -> SpaceReport {
    let config = StoreConfig::new(m + 1, 1);
    let obj = ObjectId::new(0);
    let messages: Vec<_> = (0..m)
        .map(|i| {
            let mut adder = factory.spawn(ReplicaId::new(i as u32), config);
            adder.do_op(obj, &Op::Add(Value::new(i as u64 + 1)));
            let msg = adder.pending_message().expect("add broadcasts");
            adder.on_send();
            msg
        })
        .collect();
    subset_experiment(factory, config, &messages, obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_stores::{BoundedStore, CopsStore, DvvMvrStore, OrSetStore};

    #[test]
    fn mvr_states_distinguish_all_sibling_subsets() {
        for m in [2usize, 4, 6] {
            let report = mvr_sibling_family(&DvvMvrStore, m);
            assert!(report.full_rank(), "m={m}: {report:?}");
            assert_eq!(report.histories, 1 << m);
            assert!(
                report.max_state_bits as f64 >= report.bound_bits,
                "m={m}: measured state smaller than the bound: {report:?}"
            );
        }
    }

    #[test]
    fn cops_store_also_full_rank() {
        let report = mvr_sibling_family(&CopsStore, 5);
        assert!(report.full_rank(), "{report:?}");
    }

    #[test]
    fn orset_states_distinguish_all_subsets() {
        for m in [2usize, 5] {
            let report = orset_family(&OrSetStore, m);
            assert!(report.full_rank(), "m={m}: {report:?}");
        }
    }

    #[test]
    fn bound_grows_linearly_with_m() {
        let small = mvr_sibling_family(&DvvMvrStore, 2);
        let large = mvr_sibling_family(&DvvMvrStore, 8);
        assert_eq!(small.bound_bits, 2.0);
        assert_eq!(large.bound_bits, 8.0);
        assert!(large.max_state_bits > small.max_state_bits);
    }

    #[test]
    fn no_confusions_for_correct_stores() {
        // Confusions (same fingerprint, different response) would be a
        // fingerprinting or store bug.
        let report = mvr_sibling_family(&DvvMvrStore, 7);
        assert_eq!(report.confusions, 0);
    }

    #[test]
    fn bounded_store_still_distinguishes_subsets() {
        // The bounded store skimps on *messages*, not state: sibling
        // subsets remain distinguishable (its failure mode is propagation,
        // not storage).
        let report = mvr_sibling_family(&BoundedStore, 4);
        assert!(report.full_rank(), "{report:?}");
    }
}
