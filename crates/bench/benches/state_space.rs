//! E9 / §7: replica state-size accounting cost and growth as operation
//! history lengthens (the space side of the paper's closing remarks).

use haec_core::SpecKind;
use haec_model::{ReplicaId, StoreConfig, StoreFactory};
use haec_sim::{run_schedule, KeyDistribution, ScheduleConfig, Simulator, Workload};
use haec_stores::{DvvMvrStore, OrSetStore};
use haec_testkit::Bench;
use std::hint::black_box;

fn main() {
    let mut bench = Bench::from_args("state_space");
    let stores: Vec<(Box<dyn StoreFactory>, SpecKind)> = vec![
        (Box::new(DvvMvrStore), SpecKind::Mvr),
        (Box::new(OrSetStore), SpecKind::OrSet),
    ];
    for (factory, spec) in &stores {
        for &steps in &[100usize, 400] {
            bench.bench(&format!("{}/{steps}", factory.name()), || {
                let mut sim = Simulator::new(factory.as_ref(), StoreConfig::new(3, 2));
                let mut wl = Workload::new(*spec, 3, 2, 0.2, KeyDistribution::Uniform);
                let sched = ScheduleConfig {
                    steps,
                    drop_prob: 0.0,
                    ..ScheduleConfig::default()
                };
                run_schedule(&mut sim, &mut wl, &sched, 11);
                black_box(sim.machine(ReplicaId::new(0)).state_bits())
            });
        }
    }
    bench.finish();
}
