//! Causal consistency (Definition 12): `vis` is transitive.

use crate::abstract_execution::AbstractExecution;
use std::fmt;

/// A missing transitivity edge: `e1 vis e2` and `e2 vis e3` but not
/// `e1 vis e3`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CausalityViolation {
    /// The source event `e1`.
    pub e1: usize,
    /// The intermediate event `e2`.
    pub e2: usize,
    /// The event `e3` that fails to see `e1`.
    pub e3: usize,
}

impl fmt::Display for CausalityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vis not transitive: {} vis {} vis {} but not {} vis {}",
            self.e1, self.e2, self.e3, self.e1, self.e3
        )
    }
}

impl std::error::Error for CausalityViolation {}

/// Checks that an abstract execution is causally consistent
/// (Definition 12): effects are visible only after their causes, i.e. `vis`
/// is transitive.
///
/// Correctness (Definition 8) is checked separately by
/// [`check_correct`](crate::check_correct); the paper's definition of a
/// causally consistent execution presumes correctness.
///
/// # Errors
///
/// Returns a witness of the first missing transitive edge.
pub fn check(a: &AbstractExecution) -> Result<(), CausalityViolation> {
    crate::spans::timed("check.causal", || {
        let vis = a.vis();
        for (e1, e2) in vis.iter_pairs() {
            // Transitivity at (e1, e2) means successors(e2) ⊆ successors(e1).
            // The first failing e3 is the lowest set bit of
            // row(e2) & !row(e1), found 64 events per word.
            if let Some(e3) = crate::bits::first_in_diff(vis.row_words(e2), vis.row_words(e1)) {
                return Err(CausalityViolation { e1, e2, e3 });
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_execution::AbstractExecutionBuilder;
    use haec_model::{ObjectId, Op, ReplicaId, ReturnValue, Value};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }

    #[test]
    fn transitive_vis_passes() {
        let mut b = AbstractExecutionBuilder::new();
        let a0 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let a1 = b.push(r(1), x(1), Op::Write(v(2)), ReturnValue::Ok);
        let a2 = b.push(r(2), x(2), Op::Write(v(3)), ReturnValue::Ok);
        b.vis(a0, a1).vis(a1, a2).vis(a0, a2);
        let a = b.build().unwrap();
        assert!(check(&a).is_ok());
    }

    #[test]
    fn missing_transitive_edge_caught() {
        let mut b = AbstractExecutionBuilder::new();
        let a0 = b.push(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let a1 = b.push(r(1), x(1), Op::Write(v(2)), ReturnValue::Ok);
        let a2 = b.push(r(2), x(2), Op::Write(v(3)), ReturnValue::Ok);
        b.vis(a0, a1).vis(a1, a2);
        let a = b.build().unwrap();
        let viol = check(&a).unwrap_err();
        assert_eq!((viol.e1, viol.e2, viol.e3), (0, 1, 2));
        assert!(viol.to_string().contains("not transitive"));
    }

    #[test]
    fn empty_execution_is_causal() {
        let a = AbstractExecutionBuilder::new().build().unwrap();
        assert!(check(&a).is_ok());
    }

    #[test]
    fn single_replica_program_order_is_causal() {
        let mut b = AbstractExecutionBuilder::new();
        for i in 0..5 {
            b.push(r(0), x(0), Op::Write(v(i)), ReturnValue::Ok);
        }
        let a = b.build().unwrap();
        assert!(check(&a).is_ok());
    }
}
