//! Consistency-checker scaling: correctness (Def. 8), causal (Def. 12) and
//! OCC (Def. 18) verification cost as histories grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use haec_core::{causal, check_correct, occ, ObjectSpecs, SpecKind};
use haec_theory::generate::{random_causal, GeneratorConfig};
use std::hint::black_box;

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkers");
    for &events in &[16usize, 48, 96] {
        let config = GeneratorConfig {
            events,
            n_replicas: 4,
            n_objects: 3,
            read_ratio: 0.4,
            visibility_prob: 0.35,
        };
        let a = random_causal(&config, 7);
        let specs = ObjectSpecs::uniform(SpecKind::Mvr);
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::new("correct", events), &events, |b, _| {
            b.iter(|| black_box(check_correct(black_box(&a), &specs).is_ok()))
        });
        group.bench_with_input(BenchmarkId::new("causal", events), &events, |b, _| {
            b.iter(|| black_box(causal::check(black_box(&a)).is_ok()))
        });
        group.bench_with_input(BenchmarkId::new("occ", events), &events, |b, _| {
            b.iter(|| black_box(occ::check(black_box(&a)).is_ok()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_checkers
}
criterion_main!(benches);
