//! Consistency-checker scaling: correctness (Def. 8), causal (Def. 12) and
//! OCC (Def. 18) verification cost as histories grow.

use haec_core::{causal, check_correct, occ, ObjectSpecs, SpecKind};
use haec_testkit::Bench;
use haec_theory::generate::{random_causal, GeneratorConfig};
use std::hint::black_box;

fn main() {
    let mut bench = Bench::from_args("checkers");
    for &events in &[16usize, 48, 96] {
        let config = GeneratorConfig {
            events,
            n_replicas: 4,
            n_objects: 3,
            read_ratio: 0.4,
            visibility_prob: 0.35,
        };
        let a = random_causal(&config, 7);
        let specs = ObjectSpecs::uniform(SpecKind::Mvr);
        bench.bench(&format!("correct/{events}"), || {
            black_box(check_correct(black_box(&a), &specs).is_ok())
        });
        bench.bench(&format!("causal/{events}"), || {
            black_box(causal::check(black_box(&a)).is_ok())
        });
        bench.bench(&format!("occ/{events}"), || {
            black_box(occ::check(black_box(&a)).is_ok())
        });
    }
    bench.finish();
}
