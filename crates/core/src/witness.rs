//! Building a candidate abstract execution from a concrete execution plus
//! the visibility witnesses an instrumented store reports.
//!
//! A concrete execution records *what happened on the wire*; compliance
//! (Definition 9) asks whether some abstract execution in a consistency
//! model explains the client-visible part. Searching all abstract executions
//! is exponential, so instrumented stores report, with each `do`, the
//! [`Dot`]s of the update operations that were visible at the replica. This
//! module turns those reports into an [`AbstractExecution`] candidate, which
//! the independent checkers (`check_correct`, `causal::check`, `occ::check`)
//! then validate — a buggy witness cannot make a broken store pass, it can
//! only make a correct store fail.

use crate::abstract_execution::{
    AbstractExecution, AbstractExecutionBuilder, AbstractExecutionError,
};
use crate::det::DetMap;
use haec_model::{Dot, Execution};
use std::fmt;

/// The visibility witness reported for one `do` event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DoWitness {
    /// Index of the `do` event in the concrete execution.
    pub event: usize,
    /// Dots of all update operations visible at the replica at that point
    /// (the operation's own dot, if any, is ignored).
    pub visible: Vec<Dot>,
}

/// Errors raised while assembling the candidate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WitnessError {
    /// A witness refers to an event index that is not a `do` event.
    NotADoEvent {
        /// The offending index.
        event: usize,
    },
    /// A witness dot does not correspond to any update operation in the
    /// execution.
    UnknownDot {
        /// The do event whose witness is broken.
        event: usize,
        /// The dangling dot.
        dot: Dot,
    },
    /// A witness dot refers to an update that occurs *later* in the
    /// execution — visibility cannot point forward in time.
    FutureDot {
        /// The do event whose witness is broken.
        event: usize,
        /// The offending dot.
        dot: Dot,
    },
    /// The assembled relation violated Definition 4.
    Structural(AbstractExecutionError),
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::NotADoEvent { event } => {
                write!(f, "witness for event {event} which is not a do event")
            }
            WitnessError::UnknownDot { event, dot } => {
                write!(f, "witness of event {event} names unknown update {dot}")
            }
            WitnessError::FutureDot { event, dot } => {
                write!(f, "witness of event {event} names future update {dot}")
            }
            WitnessError::Structural(e) => write!(f, "structural violation: {e}"),
        }
    }
}

impl std::error::Error for WitnessError {}

impl From<AbstractExecutionError> for WitnessError {
    fn from(e: AbstractExecutionError) -> Self {
        WitnessError::Structural(e)
    }
}

/// Assembles the candidate abstract execution for a concrete execution:
/// `H` is the subsequence of `do` events in execution order; `vis` contains
/// per-replica program order, the witness edges (update `u` visible to event
/// `e` whenever `dot(u)` appears in `e`'s witness), and the session-closure
/// edges Definition 4 requires.
///
/// Dots are resolved by replaying the execution: the `q`-th update `do`
/// event at replica `r` has dot `(r, q)` — the same convention
/// [`ReplicaMachine`](haec_model::ReplicaMachine) implementations follow.
///
/// # Errors
///
/// Returns an error if a witness is dangling, refers forward in time, or the
/// assembled relation violates Definition 4.
pub fn abstract_from_witness(
    ex: &Execution,
    witnesses: &[DoWitness],
) -> Result<AbstractExecution, WitnessError> {
    abstract_from_witness_ordered(ex, witnesses, &ex.do_events())
}

/// Like [`abstract_from_witness`], but with an explicit order for `H`.
///
/// `order` must be a permutation of the execution's `do` event indices; it
/// becomes the order of `H`. This matters for stores whose specification
/// resolves conflicts by `H` order — e.g. the LWW register store orders `H`
/// by its Lamport arbitration timestamps, which is an equivalent abstract
/// execution (per-replica projections are unchanged) in which the LWW
/// specification's "last write in `H'`" matches the store's winner.
///
/// # Errors
///
/// As for [`abstract_from_witness`]; additionally fails structurally if
/// `order` breaks per-replica program order.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the `do` event indices.
pub fn abstract_from_witness_ordered(
    ex: &Execution,
    witnesses: &[DoWitness],
    order: &[usize],
) -> Result<AbstractExecution, WitnessError> {
    crate::spans::timed("witness.extract", || {
        abstract_from_witness_ordered_inner(ex, witnesses, order)
    })
}

fn abstract_from_witness_ordered_inner(
    ex: &Execution,
    witnesses: &[DoWitness],
    order: &[usize],
) -> Result<AbstractExecution, WitnessError> {
    let do_events = order.to_vec();
    {
        let mut sorted = do_events.clone();
        sorted.sort_unstable();
        let mut canonical = ex.do_events();
        canonical.sort_unstable();
        assert_eq!(
            sorted, canonical,
            "order must be a permutation of the do events"
        );
    }
    // Position of each do event within H.
    let mut h_pos: DetMap<usize, usize> = DetMap::new();
    let mut builder = AbstractExecutionBuilder::new();
    for (h, &ix) in do_events.iter().enumerate() {
        let ev = ex.event(ix);
        let (obj, op, rval) = ev.as_do().expect("order contains do events");
        builder.push(ev.replica, obj, op.clone(), rval.clone());
        h_pos.insert(ix, h);
    }
    // Dots are assigned by *execution* order (the machine convention), then
    // mapped to H positions.
    let mut dot_pos: DetMap<Dot, usize> = DetMap::new();
    let mut update_counts = vec![0u32; ex.n_replicas()];
    for &ix in &ex.do_events() {
        let ev = ex.event(ix);
        let (_, op, _) = ev.as_do().expect("do_events yields do events");
        if op.is_update() {
            let r = ev.replica.index();
            update_counts[r] += 1;
            dot_pos.insert(Dot::new(ev.replica, update_counts[r]), h_pos[&ix]);
        }
    }
    // Replica and read-ness of each H position, for the read-prefix rule
    // below.
    let h_replica: Vec<_> = do_events.iter().map(|&ix| ex.event(ix).replica).collect();
    let h_reads: Vec<bool> = do_events
        .iter()
        .map(|&ix| {
            ex.event(ix)
                .as_do()
                .map(|(_, op, _)| op.is_read())
                .unwrap_or(false)
        })
        .collect();
    for w in witnesses {
        let Some(&target) = h_pos.get(&w.event) else {
            return Err(WitnessError::NotADoEvent { event: w.event });
        };
        for &dot in &w.visible {
            let Some(&source) = dot_pos.get(&dot) else {
                return Err(WitnessError::UnknownDot {
                    event: w.event,
                    dot,
                });
            };
            if source == target {
                continue; // the operation's own dot
            }
            if source > target {
                return Err(WitnessError::FutureDot {
                    event: w.event,
                    dot,
                });
            }
            builder.vis(source, target);
            // Reads that precede the update at its replica are in the
            // update's causal past, so they must be visible wherever the
            // update is — otherwise `vis` could never be transitive
            // (Definition 12). Update-update dependencies are already
            // covered by the dots, and only update events influence spec
            // return values, so this adds exactly the read sources. (For a
            // non-causal store the induced transitivity demands then fail
            // the causal checker — which is the correct verdict.)
            for f in 0..source {
                if h_replica[f] == h_replica[source] && f != target && h_reads[f] {
                    builder.vis(f, target);
                }
            }
        }
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::causal;
    use crate::correctness::check_correct;
    use crate::specs::{ObjectSpecs, SpecKind};
    use haec_model::{ObjectId, Op, Payload, ReplicaId, ReturnValue, Value};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }

    /// R0 writes, sends; R1 receives, reads (witnessing R0's write).
    fn concrete_with_witness() -> (Execution, Vec<DoWitness>) {
        let mut ex = Execution::new(2);
        let w = ex.push_do(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![1])).unwrap();
        ex.push_receive(r(1), m).unwrap();
        let rd = ex.push_do(r(1), x(0), Op::Read, ReturnValue::values([v(1)]));
        let witnesses = vec![
            DoWitness {
                event: w,
                visible: vec![],
            },
            DoWitness {
                event: rd,
                visible: vec![Dot::new(r(0), 1)],
            },
        ];
        (ex, witnesses)
    }

    #[test]
    fn witness_edges_become_vis() {
        let (ex, ws) = concrete_with_witness();
        let a = abstract_from_witness(&ex, &ws).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.sees(0, 1));
        assert!(check_correct(&a, &ObjectSpecs::uniform(SpecKind::Mvr)).is_ok());
        assert!(causal::check(&a).is_ok());
    }

    #[test]
    fn own_dot_ignored() {
        let mut ex = Execution::new(1);
        let w = ex.push_do(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let ws = vec![DoWitness {
            event: w,
            visible: vec![Dot::new(r(0), 1)], // its own dot
        }];
        let a = abstract_from_witness(&ex, &ws).unwrap();
        assert_eq!(a.len(), 1);
        assert!(!a.sees(0, 0));
    }

    #[test]
    fn unknown_dot_rejected() {
        let (ex, mut ws) = concrete_with_witness();
        ws[1].visible = vec![Dot::new(r(0), 9)];
        let err = abstract_from_witness(&ex, &ws).unwrap_err();
        assert!(matches!(err, WitnessError::UnknownDot { .. }));
    }

    #[test]
    fn future_dot_rejected() {
        let mut ex = Execution::new(2);
        let rd = ex.push_do(r(1), x(0), Op::Read, ReturnValue::empty());
        ex.push_do(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let ws = vec![DoWitness {
            event: rd,
            visible: vec![Dot::new(r(0), 1)],
        }];
        let err = abstract_from_witness(&ex, &ws).unwrap_err();
        assert!(matches!(err, WitnessError::FutureDot { .. }));
    }

    #[test]
    fn witness_for_non_do_event_rejected() {
        let mut ex = Execution::new(2);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![])).unwrap();
        let _ = m;
        let ws = vec![DoWitness {
            event: 0, // the send event
            visible: vec![],
        }];
        let err = abstract_from_witness(&ex, &ws).unwrap_err();
        assert!(matches!(err, WitnessError::NotADoEvent { event: 0 }));
    }

    #[test]
    fn candidate_complies_with_concrete() {
        let (ex, ws) = concrete_with_witness();
        let a = abstract_from_witness(&ex, &ws).unwrap();
        assert!(crate::compliance::complies(&ex, &a).is_ok());
    }

    #[test]
    fn per_replica_dot_counting() {
        // Two updates at R0, one at R1; dots must resolve by per-replica
        // counters, not global order.
        let mut ex = Execution::new(2);
        ex.push_do(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok); // R0:1
        ex.push_do(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok); // R1:1
        ex.push_do(r(0), x(0), Op::Write(v(3)), ReturnValue::Ok); // R0:2
        let rd = ex.push_do(r(1), x(0), Op::Read, ReturnValue::values([v(2), v(3)]));
        let ws = vec![DoWitness {
            event: rd,
            visible: vec![Dot::new(r(0), 2), Dot::new(r(1), 1), Dot::new(r(0), 1)],
        }];
        let a = abstract_from_witness(&ex, &ws).unwrap();
        assert!(a.sees(0, 3));
        assert!(a.sees(1, 3));
        assert!(a.sees(2, 3));
    }

    #[test]
    fn ordered_variant_reorders_history() {
        // Two concurrent writes recorded in one order; the ordered variant
        // flips them in H while preserving per-replica projections.
        let mut ex = Execution::new(2);
        let w0 = ex.push_do(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let w1 = ex.push_do(r(1), x(0), Op::Write(v(2)), ReturnValue::Ok);
        let ws = vec![
            DoWitness {
                event: w0,
                visible: vec![],
            },
            DoWitness {
                event: w1,
                visible: vec![],
            },
        ];
        let a = crate::witness::abstract_from_witness_ordered(&ex, &ws, &[w1, w0]).unwrap();
        assert_eq!(a.event(0).op, Op::Write(v(2)));
        assert_eq!(a.event(1).op, Op::Write(v(1)));
        assert!(crate::compliance::complies(&ex, &a).is_ok());
    }

    #[test]
    fn ordered_variant_rejects_backward_visibility() {
        // If the chosen H order puts a visible update after its observer,
        // the builder reports the structural violation.
        let mut ex = Execution::new(2);
        let w = ex.push_do(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let m = ex.push_send(r(0), Payload::from_bytes(vec![1])).unwrap();
        ex.push_receive(r(1), m).unwrap();
        let rd = ex.push_do(r(1), x(0), Op::Read, ReturnValue::values([v(1)]));
        let ws = vec![
            DoWitness {
                event: w,
                visible: vec![],
            },
            DoWitness {
                event: rd,
                visible: vec![Dot::new(r(0), 1)],
            },
        ];
        let err = crate::witness::abstract_from_witness_ordered(&ex, &ws, &[rd, w]).unwrap_err();
        assert!(
            matches!(err, WitnessError::FutureDot { .. }),
            "visibility pointing forward in H is rejected: {err}"
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn ordered_variant_requires_permutation() {
        let mut ex = Execution::new(1);
        ex.push_do(r(0), x(0), Op::Write(v(1)), ReturnValue::Ok);
        let _ = crate::witness::abstract_from_witness_ordered(&ex, &[], &[0, 0]);
    }

    #[test]
    fn error_display() {
        let e = WitnessError::UnknownDot {
            event: 1,
            dot: Dot::new(r(0), 4),
        };
        assert!(e.to_string().contains("unknown update R0:4"));
    }
}
