//! COPS-style causal MVR store with *message-level* dependency metadata.
//!
//! The reference [`DvvMvrStore`](crate::DvvMvrStore) attaches a full
//! dependency vector to **every update** — simple, but the dominant cost
//! in its messages. Real causally consistent stores (COPS, Eiger, Orbe —
//! the systems the paper cites in §3.1) compress dependencies: updates
//! issued back-to-back with no intervening remote delivery share the same
//! causal past, so one vector can cover a whole run of updates.
//!
//! [`CopsStore`] implements that compression: a message is a sequence of
//! *sub-batches*, each carrying one dependency vector followed by the
//! updates that share it. A receiver buffers sub-batches until their
//! dependencies are satisfied (the buffering technique §3.1 discusses) and
//! applies them atomically — the store remains causally and eventually
//! consistent with invisible reads and op-driven messages, while its
//! messages are strictly smaller than the per-update-vector store's
//! whenever batches form. Theorem 12 still applies: the vectors are
//! compressed, not eliminated, and the sweep shows the same `Ω(n′·lg k)`
//! growth.

use crate::vv::VersionVector;
use crate::wire::{gamma_len, width_for, BitReader, BitWriter};
use haec_model::{
    DoOutcome, Dot, ObjectId, Op, Payload, ReplicaId, ReplicaMachine, ReturnValue, StoreConfig,
    StoreFactory, Value,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Factory for the COPS-style compressed-dependency MVR store.
///
/// ```
/// use haec_stores::CopsStore;
/// use haec_model::{StoreFactory, StoreConfig, ReplicaId, ObjectId, Op, Value};
///
/// let mut a = CopsStore.spawn(ReplicaId::new(0), StoreConfig::new(2, 1));
/// a.do_op(ObjectId::new(0), &Op::Write(Value::new(1)));
/// a.do_op(ObjectId::new(0), &Op::Write(Value::new(2)));
/// // Two writes, one shared dependency vector in the message.
/// assert!(a.pending_message().is_some());
/// ```
#[derive(Copy, Clone, Default, Debug)]
pub struct CopsStore;

impl StoreFactory for CopsStore {
    fn spawn(&self, replica: ReplicaId, config: StoreConfig) -> Box<dyn ReplicaMachine> {
        Box::new(CopsReplica {
            replica,
            config,
            vv: VersionVector::new(config.n_replicas),
            outbox: Vec::new(),
            fresh_context: false,
            buffer: Vec::new(),
            objects: BTreeMap::new(),
        })
    }

    fn name(&self) -> &str {
        "cops-mvr"
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct SubBatch {
    /// Shared causal dependencies of every update in the sub-batch
    /// (everything applied at the origin before the first update,
    /// excluding the origin's own in-batch updates).
    deps: VersionVector,
    /// `(dot, obj, value)` writes, contiguous in the origin's dot order.
    writes: Vec<(Dot, ObjectId, Value)>,
}

/// One replica of the COPS-style store.
#[derive(Clone, Debug)]
pub struct CopsReplica {
    replica: ReplicaId,
    config: StoreConfig,
    vv: VersionVector,
    outbox: Vec<SubBatch>,
    /// Set when a remote update was applied since the last local update:
    /// the next local update starts a new sub-batch.
    fresh_context: bool,
    buffer: Vec<SubBatch>,
    objects: BTreeMap<ObjectId, Vec<(Dot, Value)>>,
}

impl CopsReplica {
    fn apply_write(&mut self, dot: Dot, obj: ObjectId, value: Value, deps: &VersionVector) {
        let siblings = self.objects.entry(obj).or_default();
        siblings.retain(|(d, _)| {
            // Superseded if covered by the shared deps, or an earlier write
            // of the same sub-batch/origin (in-batch program order).
            !(deps.contains(*d) || (d.replica == dot.replica && d.seq < dot.seq))
        });
        siblings.push((dot, value));
        siblings.sort_unstable();
    }

    fn drain_buffer(&mut self) {
        loop {
            let idx = self.buffer.iter().position(|sb| {
                let first = sb.writes.first().expect("sub-batches are non-empty");
                first.0.seq == self.vv.get(first.0.replica) + 1 && self.vv.dominates(&sb.deps)
            });
            let Some(i) = idx else { break };
            let sb = self.buffer.swap_remove(i);
            for &(dot, obj, value) in &sb.writes {
                if self.vv.contains(dot) {
                    continue; // duplicate
                }
                self.vv.advance(dot.replica);
                self.apply_write(dot, obj, value, &sb.deps);
            }
        }
    }
}

impl ReplicaMachine for CopsReplica {
    fn boxed_clone(&self) -> Box<dyn ReplicaMachine> {
        Box::new(self.clone())
    }

    /// # Panics
    ///
    /// Panics if the operation is not a register operation (write/read).
    fn do_op(&mut self, obj: ObjectId, op: &Op) -> DoOutcome {
        match op {
            Op::Read => DoOutcome::new(
                ReturnValue::values(
                    self.objects
                        .get(&obj)
                        .into_iter()
                        .flatten()
                        .map(|&(_, v)| v),
                ),
                self.vv.dots().collect(),
            ),
            Op::Write(v) => {
                let visible: Vec<Dot> = self.vv.dots().collect();
                let mut deps = self.vv.clone();
                let seq = self.vv.advance(self.replica);
                deps.set(self.replica, seq - 1);
                let dot = Dot::new(self.replica, seq);
                let start_new = self.fresh_context || self.outbox.is_empty();
                if start_new {
                    self.outbox.push(SubBatch {
                        deps: deps.clone(),
                        writes: vec![(dot, obj, *v)],
                    });
                    self.fresh_context = false;
                } else {
                    self.outbox
                        .last_mut()
                        .expect("outbox non-empty")
                        .writes
                        .push((dot, obj, *v));
                }
                // Local application uses the *sub-batch* deps, matching
                // what remote replicas will compute.
                let batch_deps = self.outbox.last().expect("just pushed").deps.clone();
                self.apply_write(dot, obj, *v, &batch_deps);
                DoOutcome::new(ReturnValue::Ok, visible)
            }
            other => panic!("COPS store does not support {other}"),
        }
    }

    fn pending_message(&self) -> Option<Payload> {
        if self.outbox.is_empty() {
            return None;
        }
        let mut w = BitWriter::new();
        w.write_gamma0(self.outbox.len() as u64);
        for sb in &self.outbox {
            for &e in sb.deps.entries() {
                w.write_gamma0(u64::from(e));
            }
            w.write_gamma(sb.writes.len() as u64);
            for &(dot, obj, value) in &sb.writes {
                w.write_bits(
                    u64::from(dot.replica.as_u32()),
                    width_for(self.config.n_replicas),
                );
                w.write_gamma(u64::from(dot.seq));
                w.write_bits(u64::from(obj.as_u32()), width_for(self.config.n_objects));
                w.write_gamma0(value.as_u64());
            }
        }
        Some(w.finish())
    }

    fn on_send(&mut self) {
        assert!(
            !self.outbox.is_empty(),
            "send scheduled with no pending message"
        );
        self.outbox.clear();
        self.fresh_context = false;
    }

    fn on_receive(&mut self, payload: &Payload) {
        let mut r = BitReader::new(payload);
        let Ok(n_batches) = r.read_gamma0() else {
            return;
        };
        for _ in 0..n_batches {
            let mut deps = VersionVector::new(self.config.n_replicas);
            for i in 0..self.config.n_replicas {
                let Ok(e) = r.read_gamma0() else { return };
                deps.set(ReplicaId::new(i as u32), e as u32);
            }
            let Ok(count) = r.read_gamma() else { return };
            let mut writes = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (Ok(origin), Ok(seq), Ok(obj), Ok(value)) = (
                    r.read_bits(width_for(self.config.n_replicas)),
                    r.read_gamma(),
                    r.read_bits(width_for(self.config.n_objects)),
                    r.read_gamma0(),
                ) else {
                    return;
                };
                writes.push((
                    Dot::new(ReplicaId::new(origin as u32), seq as u32),
                    ObjectId::new(obj as u32),
                    Value::new(value),
                ));
            }
            if writes.is_empty() {
                continue;
            }
            let dup = writes.iter().all(|&(d, _, _)| self.vv.contains(d))
                || self
                    .buffer
                    .iter()
                    .any(|b| b.writes.first().map(|w| w.0) == writes.first().map(|w| w.0));
            if !dup {
                self.buffer.push(SubBatch { deps, writes });
            }
        }
        let before = self.vv.total();
        self.drain_buffer();
        if self.vv.total() > before {
            self.fresh_context = true;
        }
    }

    fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.vv.hash(&mut h);
        self.outbox.hash(&mut h);
        self.objects.hash(&mut h);
        // `fresh_context` is only consulted when the outbox is non-empty
        // (an empty outbox forces a new sub-batch regardless), so two
        // states differing only in this flag are observationally
        // equivalent once the outbox drains. Hash the canonical form, or
        // quiescent replicas that agree on every object would still
        // fingerprint apart (and the explorer would treat bisimilar
        // states as distinct).
        (self.fresh_context && !self.outbox.is_empty()).hash(&mut h);
        let mut buf = self.buffer.clone();
        buf.sort_by_key(|b| b.writes.first().map(|w| w.0));
        buf.hash(&mut h);
        h.finish()
    }

    fn state_bits(&self) -> usize {
        let vv_bits: usize = self
            .vv
            .entries()
            .iter()
            .map(|&e| gamma_len(u64::from(e) + 1))
            .sum();
        let sibling_bits: usize = self
            .objects
            .values()
            .flatten()
            .map(|(d, v)| {
                width_for(self.config.n_replicas) as usize
                    + gamma_len(u64::from(d.seq))
                    + gamma_len(v.as_u64() + 1)
            })
            .sum();
        vv_bits + sibling_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvr::DvvMvrStore;

    fn cfg() -> StoreConfig {
        StoreConfig::new(3, 2)
    }
    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn v(i: u64) -> Value {
        Value::new(i)
    }
    fn spawn(i: u32) -> Box<dyn ReplicaMachine> {
        CopsStore.spawn(r(i), cfg())
    }
    fn relay(from: &mut Box<dyn ReplicaMachine>, to: &mut Box<dyn ReplicaMachine>) {
        let msg = from.pending_message().expect("message pending");
        from.on_send();
        to.on_receive(&msg);
    }

    #[test]
    fn read_own_and_remote_writes() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        assert_eq!(a.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
        relay(&mut a, &mut b);
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(1)]));
    }

    #[test]
    fn concurrent_writes_become_siblings() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        b.do_op(x(0), &Op::Write(v(2)));
        relay(&mut a, &mut b);
        assert_eq!(
            b.do_op(x(0), &Op::Read).rval,
            ReturnValue::values([v(1), v(2)])
        );
    }

    #[test]
    fn in_batch_overwrite_supersedes() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        a.do_op(x(0), &Op::Write(v(2))); // same sub-batch, supersedes v1
        relay(&mut a, &mut b);
        assert_eq!(b.do_op(x(0), &Op::Read).rval, ReturnValue::values([v(2)]));
    }

    #[test]
    fn causal_buffering_across_replicas() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        let mut c = spawn(2);
        a.do_op(x(0), &Op::Write(v(1)));
        let ma = a.pending_message().unwrap();
        a.on_send();
        b.on_receive(&ma);
        b.do_op(x(1), &Op::Write(v(2)));
        let mb = b.pending_message().unwrap();
        b.on_send();
        c.on_receive(&mb);
        assert_eq!(c.do_op(x(1), &Op::Read).rval, ReturnValue::empty());
        c.on_receive(&ma);
        assert_eq!(c.do_op(x(1), &Op::Read).rval, ReturnValue::values([v(2)]));
    }

    #[test]
    fn mid_batch_delivery_splits_subbatches() {
        // a writes, receives from b, writes again: the second write's
        // causal past includes b's write, so it must supersede b's sibling
        // remotely — which requires a fresh sub-batch vector.
        let mut a = spawn(0);
        let mut b = spawn(1);
        let mut c = spawn(2);
        b.do_op(x(0), &Op::Write(v(9)));
        let mb = b.pending_message().unwrap();
        b.on_send();

        a.do_op(x(0), &Op::Write(v(1)));
        a.on_receive(&mb); // arrives mid-batch
        a.do_op(x(0), &Op::Write(v(2))); // supersedes both v1 and v9
        let ma = a.pending_message().unwrap();
        a.on_send();

        c.on_receive(&mb);
        c.on_receive(&ma);
        assert_eq!(
            c.do_op(x(0), &Op::Read).rval,
            ReturnValue::values([v(2)]),
            "v9 must be superseded via the split sub-batch deps"
        );
    }

    #[test]
    fn batched_message_smaller_than_per_update_vectors() {
        // 16 back-to-back writes: COPS ships one vector, DVV ships 16.
        let cfg = StoreConfig::new(8, 2);
        let mut cops = CopsStore.spawn(r(0), cfg);
        let mut dvv = DvvMvrStore.spawn(r(0), cfg);
        for i in 0..16u64 {
            cops.do_op(x(0), &Op::Write(v(i + 1)));
            dvv.do_op(x(0), &Op::Write(v(i + 1)));
        }
        let cops_bits = cops.pending_message().unwrap().bits();
        let dvv_bits = dvv.pending_message().unwrap().bits();
        assert!(
            cops_bits < dvv_bits,
            "compression must help: cops {cops_bits} vs dvv {dvv_bits}"
        );
    }

    #[test]
    fn duplicate_delivery_idempotent() {
        let mut a = spawn(0);
        let mut b = spawn(1);
        a.do_op(x(0), &Op::Write(v(1)));
        let m = a.pending_message().unwrap();
        a.on_send();
        b.on_receive(&m);
        let fp = b.state_fingerprint();
        b.on_receive(&m);
        assert_eq!(b.state_fingerprint(), fp);
    }

    #[test]
    fn reads_invisible_and_op_driven() {
        let mut a = spawn(0);
        a.do_op(x(0), &Op::Write(v(1)));
        let fp = a.state_fingerprint();
        a.do_op(x(1), &Op::Read);
        assert_eq!(a.state_fingerprint(), fp);
        let mut fresh = spawn(1);
        assert!(fresh.pending_message().is_none());
        let m = a.pending_message().unwrap();
        a.on_send();
        fresh.on_receive(&m);
        assert!(fresh.pending_message().is_none());
    }

    #[test]
    fn factory_name() {
        assert_eq!(CopsStore.name(), "cops-mvr");
    }
}
