//! Bit-exact wire format.
//!
//! Theorem 12 lower-bounds *message size in bits*, so the stores encode
//! their messages with a hand-rolled bit-level format and report exact bit
//! counts. Unbounded integers (sequence numbers, values) use **Elias gamma
//! coding**, whose length is `2⌊lg v⌋ + 1` bits — so message sizes genuinely
//! grow logarithmically with operation counts, matching the `lg k` factor in
//! the bound.

use haec_model::Payload;
use std::fmt;

/// Writes a bit stream and finishes into a [`Payload`] with exact bit
/// length.
///
/// ```
/// use haec_stores::wire::{BitWriter, BitReader};
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_gamma(42);
/// let p = w.finish();
/// let mut r = BitReader::new(&p);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_gamma().unwrap(), 42);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    bits: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.bits
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        let byte = self.bits / 8;
        if byte == self.buf.len() {
            self.buf.push(0);
        }
        if bit {
            self.buf[byte] |= 1 << (self.bits % 8);
        }
        self.bits += 1;
    }

    /// Appends the low `width` bits of `value`, least-significant first.
    ///
    /// The full closed width range `0..=64` is supported: `width == 0`
    /// writes nothing (and requires `value == 0`), `width == 64` writes the
    /// whole word. No shift ever reaches the word size, so the edge widths
    /// cannot trip the debug-mode shift-overflow checks.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width too large");
        assert!(
            width == 64 || value >> width == 0,
            "value {value} does not fit in {width} bits"
        );
        // Byte-at-a-time: fill the partial tail byte, then whole bytes.
        let mut v = value;
        let mut remaining = width as usize;
        while remaining > 0 {
            let off = self.bits % 8;
            if off == 0 {
                self.buf.push(0);
            }
            let take = (8 - off).min(remaining);
            let chunk = (v & ((1u64 << take) - 1)) as u8;
            self.buf[self.bits / 8] |= chunk << off;
            v >>= take;
            self.bits += take;
            remaining -= take;
        }
    }

    /// Appends `value ≥ 1` in Elias gamma coding: `⌊lg v⌋` zeros, a one,
    /// then the `⌊lg v⌋` low-order bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0` (gamma codes positive integers; use
    /// [`write_gamma0`](Self::write_gamma0) for zero-based values).
    pub fn write_gamma(&mut self, value: u64) {
        assert!(value >= 1, "gamma coding requires value >= 1");
        let n = 63 - value.leading_zeros(); // ⌊lg value⌋
        for _ in 0..n {
            self.write_bit(false);
        }
        self.write_bit(true);
        self.write_bits(value & ((1u64 << n) - 1), n);
    }

    /// Gamma-codes `value + 1`, allowing zero.
    pub fn write_gamma0(&mut self, value: u64) {
        self.write_gamma(value + 1);
    }

    /// Appends every bit of `p`, preserving its exact bit length. This is
    /// how envelope formats embed opaque sub-payloads without rounding
    /// them up to byte boundaries.
    pub fn append_payload(&mut self, p: &Payload) {
        let mut r = BitReader::new(p);
        let mut left = p.bits();
        while left > 0 {
            let take = left.min(64) as u32;
            let chunk = r.read_bits(take).expect("append_payload stays in bounds");
            self.write_bits(chunk, take);
            left -= take as usize;
        }
    }

    /// Finishes the stream.
    pub fn finish(self) -> Payload {
        Payload::from_bits(self.buf, self.bits)
    }
}

/// Error returned when a reader runs out of bits or sees a malformed code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// Bit offset at which decoding failed.
    pub at_bit: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed or truncated bit stream at bit {}",
            self.at_bit
        )
    }
}

impl std::error::Error for DecodeError {}

/// Reads a bit stream produced by [`BitWriter`].
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    payload: &'a Payload,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over a payload.
    pub fn new(payload: &'a Payload) -> Self {
        BitReader { payload, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.payload.bits().saturating_sub(self.pos)
    }

    /// Current bit offset from the start of the stream.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns an error at end of stream.
    pub fn read_bit(&mut self) -> Result<bool, DecodeError> {
        if self.pos >= self.payload.bits() {
            return Err(DecodeError { at_bit: self.pos });
        }
        let byte = self.payload.bytes()[self.pos / 8];
        let bit = byte >> (self.pos % 8) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `width` bits, least-significant first. Like the writer, the
    /// full closed range `0..=64` is supported without any full-word
    /// shift.
    ///
    /// # Errors
    ///
    /// Returns an error at end of stream (the stream position is left at
    /// the end; decode errors are terminal).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, DecodeError> {
        assert!(width <= 64, "width too large");
        if self.remaining() < width as usize {
            self.pos = self.payload.bits();
            return Err(DecodeError { at_bit: self.pos });
        }
        let mut out = 0u64;
        let mut got = 0usize;
        while got < width as usize {
            let off = self.pos % 8;
            let take = (8 - off).min(width as usize - got);
            let byte = self.payload.bytes()[self.pos / 8];
            let chunk = u64::from(byte >> off) & ((1u64 << take) - 1);
            out |= chunk << got;
            self.pos += take;
            got += take;
        }
        Ok(out)
    }

    /// Extracts the next `bits` bits as a standalone [`Payload`] — the
    /// inverse of [`BitWriter::append_payload`].
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than `bits` bits remain.
    pub fn read_payload(&mut self, bits: usize) -> Result<Payload, DecodeError> {
        if self.remaining() < bits {
            self.pos = self.payload.bits();
            return Err(DecodeError { at_bit: self.pos });
        }
        let mut w = BitWriter::new();
        let mut left = bits;
        while left > 0 {
            let take = left.min(64) as u32;
            w.write_bits(self.read_bits(take)?, take);
            left -= take as usize;
        }
        Ok(w.finish())
    }

    /// Reads an Elias-gamma-coded positive integer.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or a run of more than 63 zeros.
    pub fn read_gamma(&mut self) -> Result<u64, DecodeError> {
        let mut n = 0u32;
        while !self.read_bit()? {
            n += 1;
            if n > 63 {
                return Err(DecodeError { at_bit: self.pos });
            }
        }
        let low = self.read_bits(n)?;
        Ok((1u64 << n) | low)
    }

    /// Reads a zero-based gamma code written by
    /// [`BitWriter::write_gamma0`].
    ///
    /// # Errors
    ///
    /// As for [`read_gamma`](Self::read_gamma).
    pub fn read_gamma0(&mut self) -> Result<u64, DecodeError> {
        Ok(self.read_gamma()? - 1)
    }
}

/// Number of bits needed to store values `0..n` (at least 1).
///
/// The function is exactly `max(1, ⌈lg n⌉)`, so it is consistent at
/// power-of-two boundaries: `width_for(2^k) == k` (values `0..2^k` fit in
/// `k` bits) and `width_for(2^k + 1) == k + 1` for every `k ≥ 1`, with the
/// floor `width_for(0) == width_for(1) == width_for(2) == 1` (a domain of
/// at most two values still occupies one bit on the wire).
pub fn width_for(n: usize) -> u32 {
    let n = n.max(2) - 1;
    64 - (n as u64).leading_zeros()
}

/// The length in bits of the gamma code of `value ≥ 1`.
///
/// # Panics
///
/// Panics if `value == 0` (mirroring [`BitWriter::write_gamma`], instead
/// of the debug-mode arithmetic underflow the unguarded formula hits).
pub fn gamma_len(value: u64) -> usize {
    assert!(value >= 1, "gamma coding requires value >= 1");
    let n = 63 - value.leading_zeros() as usize;
    2 * n + 1
}

/// The length in bits of the zero-based gamma code written by
/// [`BitWriter::write_gamma0`].
pub fn gamma0_len(value: u64) -> usize {
    gamma_len(value + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD, 16);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let p = w.finish();
        assert_eq!(p.bits(), 81);
        let mut r = BitReader::new(&p);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_gamma_small_values() {
        for v in 1..200u64 {
            let mut w = BitWriter::new();
            w.write_gamma(v);
            let p = w.finish();
            assert_eq!(p.bits(), gamma_len(v), "len for {v}");
            let mut r = BitReader::new(&p);
            assert_eq!(r.read_gamma().unwrap(), v);
        }
    }

    #[test]
    fn gamma_length_is_logarithmic() {
        assert_eq!(gamma_len(1), 1);
        assert_eq!(gamma_len(2), 3);
        assert_eq!(gamma_len(3), 3);
        assert_eq!(gamma_len(4), 5);
        assert_eq!(gamma_len(1 << 20), 41);
    }

    #[test]
    fn gamma0_allows_zero() {
        let mut w = BitWriter::new();
        w.write_gamma0(0);
        w.write_gamma0(7);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        assert_eq!(r.read_gamma0().unwrap(), 0);
        assert_eq!(r.read_gamma0().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "requires value >= 1")]
    fn gamma_zero_panics() {
        BitWriter::new().write_gamma(0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().write_bits(8, 3);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = BitWriter::new();
        w.write_bits(0b10, 2);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        assert!(r.read_bits(3).is_err());
    }

    #[test]
    fn truncated_gamma_errors() {
        let mut w = BitWriter::new();
        w.write_bit(false);
        w.write_bit(false);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        assert!(r.read_gamma().is_err());
    }

    #[test]
    fn width_for_domains() {
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 1);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(4), 2);
        assert_eq!(width_for(5), 3);
        assert_eq!(width_for(256), 8);
        assert_eq!(width_for(257), 9);
    }

    #[test]
    fn interleaved_mixed_codes() {
        let mut w = BitWriter::new();
        w.write_gamma(1000);
        w.write_bits(5, 3);
        w.write_gamma0(0);
        w.write_bit(true);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        assert_eq!(r.read_gamma().unwrap(), 1000);
        assert_eq!(r.read_bits(3).unwrap(), 5);
        assert_eq!(r.read_gamma0().unwrap(), 0);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_payload() {
        let p = BitWriter::new().finish();
        assert_eq!(p.bits(), 0);
        let mut r = BitReader::new(&p);
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn width_zero_and_sixty_four_edges() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0); // width 0 is a no-op, not a panic
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 0);
        w.write_bits(0, 64);
        let p = w.finish();
        assert_eq!(p.bits(), 128);
        let mut r = BitReader::new(&p);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn width_zero_rejects_nonzero_value() {
        BitWriter::new().write_bits(1, 0);
    }

    #[test]
    #[should_panic(expected = "width too large")]
    fn read_width_over_64_panics() {
        let p = Payload::from_bytes(vec![0; 16]);
        let _ = BitReader::new(&p).read_bits(65);
    }

    #[test]
    #[should_panic(expected = "requires value >= 1")]
    fn gamma_len_zero_panics() {
        let _ = gamma_len(0);
    }

    #[test]
    fn width_for_power_of_two_boundaries() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(1), 1);
        for k in 1..=32u32 {
            let n = 1usize << k;
            assert_eq!(width_for(n), k, "width_for(2^{k})");
            assert_eq!(width_for(n + 1), k + 1, "width_for(2^{k}+1)");
            assert_eq!(width_for(n - 1), k.max(1), "width_for(2^{k}-1)");
        }
    }

    #[test]
    fn payload_append_extract_roundtrip() {
        let mut inner = BitWriter::new();
        inner.write_gamma(12345);
        inner.write_bits(0b1011, 4);
        let inner = inner.finish();
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.append_payload(&inner);
        w.write_gamma0(9);
        let outer = w.finish();
        assert_eq!(outer.bits(), 3 + inner.bits() + gamma0_len(9));
        let mut r = BitReader::new(&outer);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        let extracted = r.read_payload(inner.bits()).unwrap();
        assert_eq!(extracted, inner);
        assert_eq!(r.read_gamma0().unwrap(), 9);
        assert_eq!(r.remaining(), 0);
        // Extracting past the end fails closed.
        assert!(BitReader::new(&inner)
            .read_payload(inner.bits() + 1)
            .is_err());
    }

    /// Exhaustive width sweep: every width 0..=64 round-trips randomly
    /// drawn values (masked to the width), interleaved in one stream, with
    /// exact bit accounting.
    #[test]
    fn prop_roundtrip_every_width() {
        use haec_testkit::prop::{self, u64s, vecs};
        prop::check(
            "bits roundtrip widths 0..=64",
            &vecs(u64s(0..u64::MAX), 1..8),
            |raw| {
                let mut w = BitWriter::new();
                let mut expect = Vec::new();
                let mut bits = 0usize;
                for (i, &v) in raw.iter().enumerate() {
                    for width in 0..=64u32 {
                        let masked = if width == 64 {
                            v
                        } else {
                            v.rotate_left(i as u32) & ((1u64 << width) - 1)
                        };
                        w.write_bits(masked, width);
                        bits += width as usize;
                        expect.push((masked, width));
                    }
                }
                let p = w.finish();
                haec_testkit::prop_assert_eq!(p.bits(), bits);
                let mut r = BitReader::new(&p);
                for &(masked, width) in &expect {
                    haec_testkit::prop_assert_eq!(r.read_bits(width).unwrap(), masked);
                }
                haec_testkit::prop_assert_eq!(r.remaining(), 0);
                Ok(())
            },
        );
    }

    /// Gamma and gamma0 codes round-trip across the full u64 range with
    /// lengths matching `gamma_len`/`gamma0_len`.
    #[test]
    fn prop_roundtrip_gamma_codes() {
        use haec_testkit::prop::{self, u64s, vecs};
        prop::check("gamma roundtrip", &vecs(u64s(0..u64::MAX), 1..12), |raw| {
            let mut w = BitWriter::new();
            let mut bits = 0usize;
            for &v in raw {
                let g = v | 1; // gamma needs >= 1
                w.write_gamma(g);
                bits += gamma_len(g);
                w.write_gamma0(v >> 1);
                bits += gamma0_len(v >> 1);
            }
            let p = w.finish();
            haec_testkit::prop_assert_eq!(p.bits(), bits);
            let mut r = BitReader::new(&p);
            for &v in raw {
                haec_testkit::prop_assert_eq!(r.read_gamma().unwrap(), v | 1);
                haec_testkit::prop_assert_eq!(r.read_gamma0().unwrap(), v >> 1);
            }
            Ok(())
        });
    }

    #[test]
    fn gamma_extremes_roundtrip() {
        // The largest encodable values at both conventions.
        for v in [1, 2, u64::MAX - 1, u64::MAX] {
            let mut w = BitWriter::new();
            w.write_gamma(v);
            let p = w.finish();
            assert_eq!(p.bits(), gamma_len(v));
            assert_eq!(BitReader::new(&p).read_gamma().unwrap(), v);
        }
        let mut w = BitWriter::new();
        w.write_gamma0(u64::MAX - 1);
        let p = w.finish();
        assert_eq!(BitReader::new(&p).read_gamma0().unwrap(), u64::MAX - 1);
    }
}
