//! Firing: iterating hash collections that escaped the wrappers — the
//! parameter types mean the construction happened elsewhere.

use std::collections::{HashMap, HashSet};

fn scan(index: &HashMap<u32, u32>, seen: HashSet<u32>) -> u32 {
    let mut total = 0;
    for (k, v) in index {
        total += k + v;
    }
    total + seen.iter().sum::<u32>()
}
